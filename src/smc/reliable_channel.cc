#include "smc/reliable_channel.h"

namespace tripriv {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void MixByte(uint64_t* h, uint8_t b) {
  *h ^= b;
  *h *= kFnvPrime;
}

void MixU64(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) MixByte(h, static_cast<uint8_t>(v >> (8 * i)));
}

void MixString(uint64_t* h, const std::string& s) {
  for (char c : s) MixByte(h, static_cast<uint8_t>(c));
  MixByte(h, 0xFF);  // length delimiter
}

/// FNV-1a over route, tag, header, and payload: detects in-flight payload
/// corruption (and header corruption, since the header is mixed in too).
uint64_t WireChecksum(size_t from, size_t to, const std::string& tag,
                      uint64_t session, uint64_t seq,
                      const std::vector<BigInt>& payload) {
  uint64_t h = kFnvOffset;
  MixU64(&h, from);
  MixU64(&h, to);
  MixString(&h, tag);
  MixU64(&h, session);
  MixU64(&h, seq);
  for (const BigInt& v : payload) {
    MixByte(&h, v.IsNegative() ? 1 : 0);
    MixString(&h, v.ToHex());
  }
  return h;
}

}  // namespace

ReliableChannel::ReliableChannel(PartyNetwork* net, RetryPolicy policy)
    : Channel(net), policy_(policy), session_(net->NextChannelSession()) {}

Status ReliableChannel::Send(size_t from, size_t to, std::string tag,
                             std::vector<BigInt> payload) {
  if (from >= net_->num_parties() || to >= net_->num_parties()) {
    return Status::OutOfRange("invalid party index");
  }
  RouteState& route = routes_[{from, to}];
  const uint64_t seq = route.next_send_seq++;

  std::vector<BigInt> wire;
  wire.reserve(payload.size() + kReliableHeaderElems);
  wire.push_back(BigInt::FromU64(session_));
  wire.push_back(BigInt::FromU64(seq));
  wire.push_back(
      BigInt::FromU64(WireChecksum(from, to, tag, session_, seq, payload)));
  for (BigInt& v : payload) wire.push_back(std::move(v));

  PendingSend pending{from, to, tag, wire, net_->now(), 1};
  TRIPRIV_RETURN_IF_ERROR(net_->Send(from, to, std::move(tag), std::move(wire)));
  unacked_.emplace(std::make_pair(Route{from, to}, seq), std::move(pending));
  return Status::OK();
}

bool ReliableChannel::TakeBuffered(size_t to, PartyMessage* out) {
  for (auto& [route, state] : routes_) {
    if (route.second != to) continue;
    auto it = state.reorder_buffer.find(state.next_recv_seq);
    if (it == state.reorder_buffer.end()) continue;
    *out = std::move(it->second);
    state.reorder_buffer.erase(it);
    ++state.next_recv_seq;
    return true;
  }
  return false;
}

Status ReliableChannel::SendAck(size_t receiver, size_t sender, uint64_t seq) {
  std::vector<BigInt> payload;
  payload.reserve(kReliableHeaderElems);
  payload.push_back(BigInt::FromU64(session_));
  payload.push_back(BigInt::FromU64(seq));
  payload.push_back(BigInt::FromU64(
      WireChecksum(receiver, sender, kAckTag, session_, seq, {})));
  ++acks_sent_;
  return net_->Send(receiver, sender, kAckTag, std::move(payload));
}

void ReliableChannel::ProcessAck(const PartyMessage& raw) {
  if (raw.payload.size() != kReliableHeaderElems) {
    ++checksum_failures_;
    return;
  }
  const uint64_t session = raw.payload[0].ToU64();
  const uint64_t seq = raw.payload[1].ToU64();
  if (raw.payload[2] !=
      BigInt::FromU64(
          WireChecksum(raw.from, raw.to, kAckTag, session, seq, {}))) {
    ++checksum_failures_;  // corrupted ack; the data retransmit will re-ack
    return;
  }
  if (session != session_) {
    ++stale_dropped_;  // ack for a message of an earlier protocol run
    return;
  }
  // raw.from is the data receiver, raw.to the original data sender.
  unacked_.erase(std::make_pair(Route{raw.to, raw.from}, seq));
}

Status ReliableChannel::HandleRaw(PartyMessage raw, size_t to,
                                  PartyMessage* out, bool* delivered) {
  if (IsReliableControlMessage(raw)) {
    ProcessAck(raw);
    return Status::OK();
  }
  if (raw.payload.size() < kReliableHeaderElems) {
    ++checksum_failures_;  // malformed; drop and await retransmission
    return Status::OK();
  }
  const uint64_t session = raw.payload[0].ToU64();
  const uint64_t seq = raw.payload[1].ToU64();
  std::vector<BigInt> data(raw.payload.begin() + kReliableHeaderElems,
                           raw.payload.end());
  if (raw.payload[2] !=
      BigInt::FromU64(
          WireChecksum(raw.from, to, raw.tag, session, seq, data))) {
    ++checksum_failures_;  // corrupted in flight; drop, sender retransmits
    return Status::OK();
  }
  if (session != session_) {
    ++stale_dropped_;  // left over from an earlier protocol run
    return Status::OK();
  }
  // Ack every intact arrival, duplicates included: a duplicate means our
  // previous ack was lost.
  TRIPRIV_RETURN_IF_ERROR(SendAck(to, raw.from, seq));

  RouteState& route = routes_[{raw.from, to}];
  if (seq < route.next_recv_seq) {
    ++duplicates_suppressed_;
    return Status::OK();
  }
  PartyMessage logical{raw.from, to, std::move(raw.tag), std::move(data)};
  if (seq > route.next_recv_seq) {
    // Arrived ahead of order: park until predecessors land. emplace keeps
    // the first copy if a duplicate of a parked message shows up.
    if (!route.reorder_buffer.emplace(seq, std::move(logical)).second) {
      ++duplicates_suppressed_;
    }
    return Status::OK();
  }
  ++route.next_recv_seq;
  *out = std::move(logical);
  *delivered = true;
  return Status::OK();
}

Status ReliableChannel::RetransmitPendingTo(size_t to) {
  for (auto& [key, pending] : unacked_) {
    if (pending.to != to) continue;
    if (pending.attempts >= policy_.max_attempts) continue;
    const uint64_t backoff = policy_.BackoffTicks(pending.attempts - 1);
    if (net_->now() - pending.last_send_tick < backoff) continue;
    TRIPRIV_RETURN_IF_ERROR(
        net_->Send(pending.from, pending.to, pending.tag,
                   pending.wire_payload));
    pending.last_send_tick = net_->now();
    ++pending.attempts;
    ++retransmissions_;
  }
  return Status::OK();
}

Result<PartyMessage> ReliableChannel::Receive(size_t to) {
  if (to >= net_->num_parties()) {
    return Status::OutOfRange("invalid party index");
  }
  if (policy_.deadline_ticks == 0) {
    // A zero-tick budget buys no network polls (each poll advances the
    // clock): deliver only what is already buffered locally, then fail
    // typed immediately instead of attempting one blocking receive.
    PartyMessage buffered;
    if (TakeBuffered(to, &buffered)) return buffered;
    ++receive_timeouts_;
    return Status::DeadlineExceeded("no message for party " +
                                    std::to_string(to) +
                                    " within 0 ticks");
  }
  const uint64_t deadline = net_->now() + policy_.deadline_ticks;
  size_t poll = 0;
  for (;;) {
    PartyMessage buffered;
    if (TakeBuffered(to, &buffered)) return buffered;

    auto raw = net_->Receive(to);
    if (raw.ok()) {
      PartyMessage out;
      bool delivered = false;
      TRIPRIV_RETURN_IF_ERROR(
          HandleRaw(std::move(*raw), to, &out, &delivered));
      if (delivered) return out;
      continue;  // ack / duplicate / stale / corrupt / parked out-of-order
    }
    if (!IsTransient(raw.status())) return raw.status();
    if (net_->crashed(to)) return raw.status();  // the receiver itself died

    if (net_->now() >= deadline) {
      if (net_->any_crashed()) {
        return Status::Unavailable(
            "peer crashed: no message for party " + std::to_string(to) +
            " within " + std::to_string(policy_.deadline_ticks) + " ticks");
      }
      ++receive_timeouts_;
      return Status::DeadlineExceeded(
          "no message for party " + std::to_string(to) + " within " +
          std::to_string(policy_.deadline_ticks) + " ticks");
    }
    net_->AdvanceTicks(policy_.BackoffTicks(poll));
    ++poll;
    TRIPRIV_RETURN_IF_ERROR(RetransmitPendingTo(to));
  }
}

std::unique_ptr<Channel> MakeChannel(PartyNetwork* net) {
  TRIPRIV_CHECK(net != nullptr);
  if (!net->fault_injection_enabled()) {
    return std::make_unique<RawChannel>(net);
  }
  return std::make_unique<ReliableChannel>(net, net->retry_policy());
}

}  // namespace tripriv
