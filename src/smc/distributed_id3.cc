#include "smc/distributed_id3.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "smc/secure_sum.h"

namespace tripriv {
namespace {

double EntropyOfCounts(const std::vector<uint64_t>& counts) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (uint64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

/// Helper owning the training state; friend of DistributedId3Tree.
struct Id3Builder {
  const std::vector<DataTable>* partitions;
  const DistributedId3Config* config;
  PartyNetwork* net;
  DistributedId3Tree* tree;
  size_t label_col = 0;

  using Constraint = std::vector<std::pair<size_t, size_t>>;  // (attr, value)

  /// Value id of row `r` of partition `p` for attribute meta index `a`.
  Result<size_t> RowValueId(size_t p, size_t r, size_t a) const {
    const auto& meta = tree->attrs_[a];
    const auto& table = (*partitions)[p];
    TRIPRIV_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(meta.name));
    return tree->ValueId(meta, table.at(r, col));
  }

  Result<bool> RowMatches(size_t p, size_t r, const Constraint& constraint) const {
    for (const auto& [attr, value] : constraint) {
      TRIPRIV_ASSIGN_OR_RETURN(size_t id, RowValueId(p, r, attr));
      if (id != value) return false;
    }
    return true;
  }

  Result<size_t> RowLabelId(size_t p, size_t r) const {
    const Value& v = (*partitions)[p].at(r, label_col);
    if (!v.is_string()) return Status::InvalidArgument("null label");
    for (size_t i = 0; i < tree->label_domain_.size(); ++i) {
      if (tree->label_domain_[i] == v.AsString()) return i;
    }
    return Status::Internal("label outside collected domain");
  }

  /// Securely aggregates, per party, the flattened count tensor
  /// [attr value x label class] for attribute `attr` restricted to rows
  /// matching `constraint`.
  Result<std::vector<uint64_t>> SecureCounts(size_t attr,
                                             const Constraint& constraint) const {
    const size_t arity = tree->attrs_[attr].arity();
    const size_t classes = tree->label_domain_.size();
    std::vector<std::vector<uint64_t>> local(
        partitions->size(), std::vector<uint64_t>(arity * classes, 0));
    for (size_t p = 0; p < partitions->size(); ++p) {
      const auto& table = (*partitions)[p];
      for (size_t r = 0; r < table.num_rows(); ++r) {
        TRIPRIV_ASSIGN_OR_RETURN(bool match, RowMatches(p, r, constraint));
        if (!match) continue;
        TRIPRIV_ASSIGN_OR_RETURN(size_t vid, RowValueId(p, r, attr));
        TRIPRIV_ASSIGN_OR_RETURN(size_t lid, RowLabelId(p, r));
        local[p][vid * classes + lid]++;
      }
    }
    return SecureSumCounts(net, local);
  }

  /// Securely aggregates label counts under `constraint`.
  Result<std::vector<uint64_t>> SecureLabelCounts(
      const Constraint& constraint) const {
    const size_t classes = tree->label_domain_.size();
    std::vector<std::vector<uint64_t>> local(
        partitions->size(), std::vector<uint64_t>(classes, 0));
    for (size_t p = 0; p < partitions->size(); ++p) {
      const auto& table = (*partitions)[p];
      for (size_t r = 0; r < table.num_rows(); ++r) {
        TRIPRIV_ASSIGN_OR_RETURN(bool match, RowMatches(p, r, constraint));
        if (!match) continue;
        TRIPRIV_ASSIGN_OR_RETURN(size_t lid, RowLabelId(p, r));
        local[p][lid]++;
      }
    }
    return SecureSumCounts(net, local);
  }

  Result<size_t> Build(const Constraint& constraint,
                       std::vector<bool> used_attrs, size_t depth) {
    TRIPRIV_ASSIGN_OR_RETURN(auto label_counts, SecureLabelCounts(constraint));
    uint64_t total = 0;
    size_t majority = 0;
    for (size_t i = 0; i < label_counts.size(); ++i) {
      total += label_counts[i];
      if (label_counts[i] > label_counts[majority]) majority = i;
    }
    const double node_entropy = EntropyOfCounts(label_counts);

    auto make_leaf = [&]() {
      DistributedId3Tree::Node leaf;
      leaf.is_leaf = true;
      leaf.label = tree->label_domain_[majority];
      tree->nodes_.push_back(std::move(leaf));
      return tree->nodes_.size() - 1;
    };
    if (depth >= config->max_depth || total < config->min_records ||
        node_entropy <= 0.0) {
      return make_leaf();
    }

    // Pick the unused attribute with the highest information gain, all
    // counts obtained through secure aggregation.
    double best_gain = 1e-9;
    size_t best_attr = tree->attrs_.size();
    std::vector<uint64_t> best_counts;
    const size_t classes = tree->label_domain_.size();
    for (size_t a = 0; a < tree->attrs_.size(); ++a) {
      if (used_attrs[a]) continue;
      TRIPRIV_ASSIGN_OR_RETURN(auto counts, SecureCounts(a, constraint));
      double conditional = 0.0;
      for (size_t v = 0; v < tree->attrs_[a].arity(); ++v) {
        std::vector<uint64_t> slice(counts.begin() + v * classes,
                                    counts.begin() + (v + 1) * classes);
        uint64_t slice_total = 0;
        for (uint64_t c : slice) slice_total += c;
        conditional += static_cast<double>(slice_total) /
                       static_cast<double>(total) * EntropyOfCounts(slice);
      }
      const double gain = node_entropy - conditional;
      if (gain > best_gain) {
        best_gain = gain;
        best_attr = a;
        best_counts = counts;
      }
    }
    if (best_attr == tree->attrs_.size()) return make_leaf();

    DistributedId3Tree::Node node;
    node.is_leaf = false;
    node.attr = tree->attrs_[best_attr].name;
    node.attr_index = best_attr;
    node.fallback_label = tree->label_domain_[majority];
    used_attrs[best_attr] = true;

    std::vector<std::pair<size_t, size_t>> children;  // (value id, node)
    for (size_t v = 0; v < tree->attrs_[best_attr].arity(); ++v) {
      uint64_t slice_total = 0;
      for (size_t c = 0; c < classes; ++c) {
        slice_total += best_counts[v * classes + c];
      }
      if (slice_total == 0) continue;  // unseen value -> fallback at predict
      Constraint child_constraint = constraint;
      child_constraint.emplace_back(best_attr, v);
      TRIPRIV_ASSIGN_OR_RETURN(
          size_t child, Build(child_constraint, used_attrs, depth + 1));
      children.emplace_back(v, child);
    }
    for (const auto& [v, child] : children) node.children[v] = child;
    tree->nodes_.push_back(std::move(node));
    return tree->nodes_.size() - 1;
  }
};

Result<size_t> DistributedId3Tree::ValueId(const AttrMeta& meta,
                                           const Value& v) const {
  if (meta.numeric) {
    if (!v.is_numeric()) {
      // NOLINTNEXTLINE(taint-flow-to-sink): attribute names are public
      return Status::InvalidArgument("expected numeric value for attribute " +
                                     meta.name);
    }
    const double x = v.ToDouble();
    size_t bin = 0;
    while (bin < meta.bin_edges.size() && x >= meta.bin_edges[bin]) ++bin;
    return bin;
  }
  if (!v.is_string()) {
    // NOLINTNEXTLINE(taint-flow-to-sink): attribute names are public
    return Status::InvalidArgument("expected categorical value for attribute " +
                                   meta.name);
  }
  for (size_t i = 0; i < meta.categories.size(); ++i) {
    if (meta.categories[i] == v.AsString()) return i;
  }
  // `v` is a cell value (record-level); the public attribute name is
  // enough to locate the bad column.
  // NOLINTNEXTLINE(taint-flow-to-sink): attribute names are public schema
  return Status::NotFound("categorical value outside the domain of " +
                          meta.name);
}

Result<DistributedId3Tree> DistributedId3Tree::Train(
    const std::vector<DataTable>& partitions, std::string_view label_attr,
    const DistributedId3Config& config, PartyNetwork* net) {
  TRIPRIV_CHECK(net != nullptr);
  if (partitions.size() < 2) {
    return Status::FailedPrecondition("need >= 2 partitions (owners)");
  }
  if (net->num_parties() != partitions.size()) {
    return Status::InvalidArgument("one network party per partition required");
  }
  for (const auto& p : partitions) {
    if (p.num_rows() == 0) {
      return Status::InvalidArgument("every partition must be non-empty");
    }
    if (!(p.schema() == partitions[0].schema())) {
      return Status::InvalidArgument("partitions must share one schema");
    }
  }
  const Schema& schema = partitions[0].schema();
  DistributedId3Tree tree;
  tree.label_attr_ = std::string(label_attr);
  TRIPRIV_ASSIGN_OR_RETURN(size_t label_col, schema.IndexOf(label_attr));
  if (schema.attribute(label_col).type != AttributeType::kCategorical) {
    return Status::InvalidArgument("label attribute must be categorical");
  }

  // Public metadata: label domain, categorical domains, numeric bin edges.
  // (Documented leakage: domains and global ranges.)
  std::set<std::string> labels;
  for (const auto& p : partitions) {
    for (size_t r = 0; r < p.num_rows(); ++r) {
      const Value& v = p.at(r, label_col);
      if (!v.is_string()) return Status::InvalidArgument("null label");
      labels.insert(v.AsString());
    }
  }
  tree.label_domain_.assign(labels.begin(), labels.end());

  for (size_t c = 0; c < schema.size(); ++c) {
    if (c == label_col) continue;
    AttrMeta meta;
    meta.name = schema.attribute(c).name;
    if (schema.attribute(c).type == AttributeType::kCategorical) {
      std::set<std::string> domain;
      for (const auto& p : partitions) {
        for (size_t r = 0; r < p.num_rows(); ++r) {
          const Value& v = p.at(r, c);
          if (v.is_string()) domain.insert(v.AsString());
        }
      }
      if (domain.empty()) continue;
      meta.categories.assign(domain.begin(), domain.end());
    } else {
      meta.numeric = true;
      double lo = 0.0;
      double hi = 0.0;
      bool first = true;
      for (const auto& p : partitions) {
        for (size_t r = 0; r < p.num_rows(); ++r) {
          const Value& v = p.at(r, c);
          if (!v.is_numeric()) continue;
          const double x = v.ToDouble();
          if (first || x < lo) lo = first ? x : std::min(lo, x);
          if (first || x > hi) hi = first ? x : std::max(hi, x);
          first = false;
        }
      }
      if (first || hi <= lo) continue;
      for (size_t b = 1; b < config.numeric_bins; ++b) {
        meta.bin_edges.push_back(
            lo + (hi - lo) * static_cast<double>(b) /
                     static_cast<double>(config.numeric_bins));
      }
    }
    tree.attrs_.push_back(std::move(meta));
  }
  if (tree.attrs_.empty()) {
    return Status::InvalidArgument("no usable predictor attributes");
  }

  Id3Builder builder{&partitions, &config, net, &tree, label_col};
  TRIPRIV_ASSIGN_OR_RETURN(
      tree.root_,
      builder.Build({}, std::vector<bool>(tree.attrs_.size(), false), 0));
  return tree;
}

Result<std::string> DistributedId3Tree::Predict(const DataTable& table,
                                                size_t row) const {
  size_t node = root_;
  while (!nodes_[node].is_leaf) {
    const Node& n = nodes_[node];
    TRIPRIV_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(n.attr));
    auto vid = ValueId(attrs_[n.attr_index], table.at(row, col));
    if (!vid.ok()) return n.fallback_label;  // out-of-domain value
    auto it = n.children.find(*vid);
    if (it == n.children.end()) return n.fallback_label;  // unseen branch
    node = it->second;
  }
  return nodes_[node].label;
}

Result<double> DistributedId3Tree::Accuracy(const DataTable& table) const {
  TRIPRIV_ASSIGN_OR_RETURN(size_t label_col,
                           table.schema().IndexOf(label_attr_));
  if (table.num_rows() == 0) return Status::InvalidArgument("empty table");
  size_t correct = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    TRIPRIV_ASSIGN_OR_RETURN(std::string pred, Predict(table, r));
    if (table.at(r, label_col).is_string() &&
        table.at(r, label_col).AsString() == pred) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(table.num_rows());
}

}  // namespace tripriv
