#include "smc/shamir.h"

#include <set>

#include "smc/reliable_channel.h"

namespace tripriv {

Result<std::vector<ShamirShare>> ShamirShareSecret(const BigInt& secret,
                                                   size_t n, size_t t,
                                                   const BigInt& prime,
                                                   Rng* rng) {
  TRIPRIV_CHECK(rng != nullptr);
  if (t < 1 || t > n) {
    return Status::InvalidArgument("need 1 <= t <= n");
  }
  if (secret.IsNegative() || secret >= prime) {
    return Status::InvalidArgument("secret must lie in [0, prime)");
  }
  if (BigInt::FromU64(n) >= prime) {
    return Status::InvalidArgument("prime must exceed the number of shares");
  }
  // Random polynomial with constant term = secret.
  std::vector<BigInt> coeffs;
  coeffs.push_back(secret);
  for (size_t i = 1; i < t; ++i) {
    coeffs.push_back(BigInt::RandomBelow(prime, rng));
  }
  std::vector<ShamirShare> shares;
  shares.reserve(n);
  for (uint64_t x = 1; x <= n; ++x) {
    // Horner evaluation mod prime.
    BigInt y;
    const BigInt bx = BigInt::FromU64(x);
    for (size_t i = coeffs.size(); i-- > 0;) {
      y = BigInt::ModAdd(BigInt::ModMul(y, bx, prime), coeffs[i], prime);
    }
    shares.push_back({x, std::move(y)});
  }
  return shares;
}

Result<BigInt> ShamirReconstruct(const std::vector<ShamirShare>& shares,
                                 const BigInt& prime) {
  if (shares.empty()) return Status::InvalidArgument("no shares given");
  std::set<uint64_t> xs;
  for (const auto& s : shares) {
    if (!xs.insert(s.x).second) {
      return Status::InvalidArgument("duplicate share x = " +
                                     std::to_string(s.x));
    }
  }
  // Lagrange interpolation at 0.
  BigInt secret;
  for (size_t i = 0; i < shares.size(); ++i) {
    BigInt num(1);
    BigInt den(1);
    const BigInt xi = BigInt::FromU64(shares[i].x);
    for (size_t j = 0; j < shares.size(); ++j) {
      if (i == j) continue;
      const BigInt xj = BigInt::FromU64(shares[j].x);
      num = BigInt::ModMul(num, BigInt::ModSub(BigInt(), xj.Mod(prime), prime),
                           prime);
      den = BigInt::ModMul(den, BigInt::ModSub(xi.Mod(prime), xj.Mod(prime), prime),
                           prime);
    }
    TRIPRIV_ASSIGN_OR_RETURN(BigInt den_inv, BigInt::ModInverse(den, prime));
    const BigInt weight = BigInt::ModMul(num, den_inv, prime);
    secret = BigInt::ModAdd(secret, BigInt::ModMul(shares[i].y, weight, prime),
                            prime);
  }
  return secret;
}

Result<std::vector<ShamirShare>> ShamirAddShares(
    const std::vector<ShamirShare>& a, const std::vector<ShamirShare>& b,
    const BigInt& prime) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("share vectors differ in size");
  }
  std::vector<ShamirShare> out;
  out.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].x != b[i].x) {
      return Status::InvalidArgument("share x layouts differ");
    }
    out.push_back({a[i].x, BigInt::ModAdd(a[i].y, b[i].y, prime)});
  }
  return out;
}

Result<BigInt> ShamirReconstructOverNetwork(
    PartyNetwork* net, const std::vector<ShamirShare>& shares, size_t t,
    const BigInt& prime) {
  TRIPRIV_CHECK(net != nullptr);
  const size_t n = net->num_parties();
  if (shares.size() != n) {
    return Status::InvalidArgument("one share per network party required");
  }
  if (t < 1 || t > n) return Status::InvalidArgument("need 1 <= t <= n");
  std::unique_ptr<Channel> ch = MakeChannel(net);

  // Parties 1..n-1 transmit their shares to the collector; a crashed party's
  // send is silently swallowed by the fabric.
  for (size_t p = 1; p < n; ++p) {
    TRIPRIV_RETURN_IF_ERROR(
        ch->Send(p, 0, "shamir/share",
                 {BigInt::FromU64(shares[p].x), shares[p].y}));
  }

  // The collector keeps its own share and gathers whatever else survives;
  // a transient failure on one expected share must not abort the others.
  std::vector<ShamirShare> collected{shares[0]};
  for (size_t expected = 1; expected < n; ++expected) {
    auto msg = ch->Receive(0);
    if (!msg.ok()) {
      if (IsTransient(msg.status())) continue;  // lost sender; keep going
      return msg.status();
    }
    if (msg->tag != "shamir/share" || msg->payload.size() != 2) {
      return Status::Internal("shamir: unexpected message " + msg->tag);
    }
    collected.push_back({msg->payload[0].ToU64(), msg->payload[1]});
  }
  if (collected.size() < t) {
    return Status::Unavailable(
        "shamir: only " + std::to_string(collected.size()) + " of " +
        std::to_string(t) + " required shares survived");
  }
  // Any t shares reconstruct; use the first t collected.
  collected.resize(t);
  return ShamirReconstruct(collected, prime);
}

}  // namespace tripriv
