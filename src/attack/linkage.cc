#include "attack/linkage.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <functional>
#include <memory>
#include <unordered_map>

#include "attack/equivocation.h"
#include "stats/descriptive.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace attack {
namespace {

/// Mirrors sdc/risk.cc: standardize both matrices by the ORIGINAL's column
/// means/sds (the attacker's external data defines the scale). Must stay
/// arithmetically identical to risk.cc StandardizeJointly for the
/// reconciliation contract.
void StandardizeJointly(std::vector<std::vector<double>>* a,
                        std::vector<std::vector<double>>* b) {
  if (a->empty()) return;
  const size_t d = (*a)[0].size();
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> col(a->size());
    for (size_t i = 0; i < a->size(); ++i) col[i] = (*a)[i][j];
    const double mean = Mean(col);
    const double sd = col.size() >= 2 ? SampleStddev(col) : 0.0;
    const double scale = sd > 0.0 ? 1.0 / sd : 1.0;
    for (auto& row : *a) row[j] = (row[j] - mean) * scale;
    for (auto& row : *b) row[j] = (row[j] - mean) * scale;
  }
}

/// Nearest-neighbor tie set of `probe` among `candidates` (indices into
/// `rel`), with risk.cc's exact epsilon logic. `candidates` must be in
/// ascending order so the scan order — and therefore the floating-point
/// trajectory of `best` — is independent of how candidates were gathered.
std::vector<size_t> TieSet(const std::vector<double>& probe,
                           const std::vector<std::vector<double>>& rel,
                           const std::vector<size_t>& candidates) {
  double best = std::numeric_limits<double>::infinity();
  std::vector<size_t> ties;
  for (size_t j : candidates) {
    const double d = SquaredDistance(probe, rel[j]);
    if (d < best - 1e-12) {
      best = d;
      ties.assign(1, j);
    } else if (std::fabs(d - best) <= 1e-12) {
      ties.push_back(j);
    }
  }
  return ties;
}

/// Blocked candidate index: masked rows bucketed on a per-column grid.
class MaskedGrid {
 public:
  MaskedGrid(const std::vector<std::vector<double>>& rel, size_t bins)
      : bins_(bins), dims_(rel.empty() ? 0 : rel[0].size()) {
    lo_.assign(dims_, std::numeric_limits<double>::infinity());
    cell_.assign(dims_, 1.0);
    std::vector<double> hi(dims_, -std::numeric_limits<double>::infinity());
    for (const auto& row : rel) {
      for (size_t j = 0; j < dims_; ++j) {
        lo_[j] = std::min(lo_[j], row[j]);
        hi[j] = std::max(hi[j], row[j]);
      }
    }
    for (size_t j = 0; j < dims_; ++j) {
      const double span = hi[j] - lo_[j];
      cell_[j] = span > 0.0 ? span / static_cast<double>(bins_) : 1.0;
    }
    // Row-order insertion keeps every cell's candidate list ascending.
    for (size_t i = 0; i < rel.size(); ++i) {
      cells_[Key(BinsOf(rel[i]))].push_back(i);
    }
  }

  /// Candidates within Chebyshev radius `radius` of `probe`'s cell, in
  /// ascending row order.
  std::vector<size_t> Gather(const std::vector<double>& probe,
                             size_t radius) const {
    const std::vector<int64_t> center = BinsOf(probe);
    std::vector<size_t> out;
    std::vector<int64_t> offset(dims_, -static_cast<int64_t>(radius));
    const int64_t r = static_cast<int64_t>(radius);
    // Odometer over the (2r+1)^d neighborhood.
    while (true) {
      std::vector<int64_t> cell(dims_);
      for (size_t j = 0; j < dims_; ++j) cell[j] = center[j] + offset[j];
      const auto it = cells_.find(Key(cell));
      if (it != cells_.end()) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
      size_t j = 0;
      for (; j < dims_; ++j) {
        if (offset[j] < r) {
          ++offset[j];
          break;
        }
        offset[j] = -r;
      }
      if (j == dims_) break;
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::vector<int64_t> BinsOf(const std::vector<double>& row) const {
    std::vector<int64_t> bins(dims_);
    for (size_t j = 0; j < dims_; ++j) {
      int64_t b = static_cast<int64_t>(
          std::floor((row[j] - lo_[j]) / cell_[j]));
      if (b < 0) b = 0;
      if (b >= static_cast<int64_t>(bins_)) b = static_cast<int64_t>(bins_) - 1;
      bins[j] = b;
    }
    return bins;
  }

  /// Packs per-column bins into one key; bins_ <= 2^16 and dims <= 4 fit a
  /// 64-bit word, larger setups fold with a multiplier (still injective per
  /// run because bins share one range).
  uint64_t Key(const std::vector<int64_t>& bins) const {
    uint64_t key = 1469598103934665603ull;
    for (int64_t b : bins) {
      key ^= static_cast<uint64_t>(b + 1);
      key *= 1099511628211ull;
    }
    return key;
  }

  size_t bins_;
  size_t dims_;
  std::vector<double> lo_;
  std::vector<double> cell_;
  std::unordered_map<uint64_t, std::vector<size_t>> cells_;
};

struct LinkedRow {
  double credit = 0.0;       ///< 1/|ties| when the true row is among them
  size_t tie_count = 0;      ///< 0 = unlinkable (blocked mode gave up)
  double predicted = 0.0;    ///< tie-set mean of the confidential column
};

/// The shared linkage core: fills one LinkedRow per original row. The
/// confidential column may be empty (record-linkage mode).
Status LinkRows(const std::vector<std::vector<double>>& ext,
                const std::vector<std::vector<double>>& rel,
                const std::vector<double>& masked_conf,
                const LinkageConfig& config, ThreadPool* pool,
                std::vector<LinkedRow>* rows) {
  rows->assign(ext.size(), LinkedRow{});
  const MaskedGrid* grid = nullptr;
  std::unique_ptr<MaskedGrid> grid_storage;
  std::vector<size_t> all_rows;
  if (config.block_bins > 0) {
    grid_storage = std::make_unique<MaskedGrid>(rel, config.block_bins);
    grid = grid_storage.get();
  } else {
    all_rows.resize(rel.size());
    for (size_t j = 0; j < rel.size(); ++j) all_rows[j] = j;
  }

  // Pure fan-out: each index owns exactly its slot in `rows`.
  RunSharded(pool, ext.size(), [&](size_t /*shard*/, size_t begin,
                                   size_t end) {
    for (size_t i = begin; i < end; ++i) {
      std::vector<size_t> ties;
      if (grid != nullptr) {
        for (size_t radius = 0; radius <= config.max_radius; ++radius) {
          const std::vector<size_t> candidates = grid->Gather(ext[i], radius);
          if (!candidates.empty()) {
            ties = TieSet(ext[i], rel, candidates);
            break;
          }
        }
      } else {
        ties = TieSet(ext[i], rel, all_rows);
      }
      LinkedRow& out = (*rows)[i];
      out.tie_count = ties.size();
      for (size_t j : ties) {
        if (j == i) {
          out.credit = 1.0 / static_cast<double>(ties.size());
          break;
        }
      }
      if (!masked_conf.empty() && !ties.empty()) {
        double sum = 0.0;
        for (size_t j : ties) sum += masked_conf[j];
        out.predicted = sum / static_cast<double>(ties.size());
      }
    }
  });
  return Status::OK();
}

Status ValidateInputs(const DataTable& original, const DataTable& masked,
                      const std::vector<size_t>& qi_cols) {
  if (original.num_rows() != masked.num_rows()) {
    return Status::InvalidArgument(
        "linkage attack requires aligned original and masked tables");
  }
  if (qi_cols.empty()) {
    return Status::InvalidArgument("no quasi-identifier columns given");
  }
  return Status::OK();
}

std::vector<size_t> ResolveQiCols(const DataTable& original,
                                  const LinkageConfig& config) {
  return config.qi_cols.empty() ? original.schema().QuasiIdentifierIndices()
                                : config.qi_cols;
}

}  // namespace

Result<AttackOutcome> RunRecordLinkageAttack(const DataTable& original,
                                             const DataTable& masked,
                                             const LinkageConfig& config,
                                             const AttackContext& ctx) {
  const std::vector<size_t> qi_cols = ResolveQiCols(original, config);
  TRIPRIV_RETURN_IF_ERROR(ValidateInputs(original, masked, qi_cols));
  TRIPRIV_ASSIGN_OR_RETURN(auto ext, original.NumericMatrix(qi_cols));
  TRIPRIV_ASSIGN_OR_RETURN(auto rel, masked.NumericMatrix(qi_cols));
  StandardizeJointly(&ext, &rel);

  std::vector<LinkedRow> rows;
  TRIPRIV_RETURN_IF_ERROR(
      LinkRows(ext, rel, {}, config, ctx.pool, &rows));

  // Serial index-order merge — the accumulation order risk.cc uses, so
  // exact mode reproduces its expected_correct bitwise.
  AttackOutcome outcome;
  outcome.attack = "record_linkage";
  outcome.dimension = Dimension::kRespondent;
  outcome.trials = rows.size();
  outcome.records_total = rows.size();
  std::vector<size_t> tie_counts;
  tie_counts.reserve(rows.size());
  for (const LinkedRow& row : rows) {
    outcome.successes += row.credit;
    // An unlinkable row leaves the adversary at the full-table prior.
    tie_counts.push_back(row.tie_count > 0 ? row.tie_count : rows.size());
  }
  outcome.records_recovered = outcome.successes;
  outcome.equivocation_bits = MeanCandidateBits(tie_counts);
  outcome.prior_bits = UniformBits(rows.size());
  outcome.note = config.block_bins == 0
                     ? "exact"
                     : "blocked bins=" + std::to_string(config.block_bins);
  return FinishOutcome(std::move(outcome), ctx);
}

Result<AttackOutcome> RunAttributeDisclosureAttack(
    const DataTable& original, const DataTable& masked,
    const AttributeDisclosureConfig& config, const AttackContext& ctx) {
  const std::vector<size_t> qi_cols = ResolveQiCols(original, config.linkage);
  TRIPRIV_RETURN_IF_ERROR(ValidateInputs(original, masked, qi_cols));
  if (config.window_percent < 0.0 || config.window_percent > 100.0) {
    return Status::InvalidArgument("window must be in [0, 100] percent");
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto ext, original.NumericMatrix(qi_cols));
  TRIPRIV_ASSIGN_OR_RETURN(auto rel, masked.NumericMatrix(qi_cols));
  TRIPRIV_ASSIGN_OR_RETURN(auto true_conf,
                           original.NumericColumn(config.confidential_col));
  TRIPRIV_ASSIGN_OR_RETURN(auto masked_conf,
                           masked.NumericColumn(config.confidential_col));
  StandardizeJointly(&ext, &rel);

  std::vector<LinkedRow> rows;
  TRIPRIV_RETURN_IF_ERROR(
      LinkRows(ext, rel, masked_conf, config.linkage, ctx.pool, &rows));

  // Window in original units (risk.h IntervalDisclosureRate semantics).
  const double range = true_conf.empty()
                           ? 0.0
                           : *std::max_element(true_conf.begin(),
                                               true_conf.end()) -
                                 *std::min_element(true_conf.begin(),
                                                   true_conf.end());
  const double window =
      config.window_percent / 100.0 * (range > 0.0 ? range : 1.0);

  AttackOutcome outcome;
  outcome.attack = "attribute_disclosure";
  outcome.dimension = Dimension::kRespondent;
  outcome.trials = rows.size();
  outcome.records_total = rows.size();
  std::vector<size_t> tie_counts;
  tie_counts.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].tie_count > 0 &&
        std::fabs(rows[i].predicted - true_conf[i]) <= window) {
      outcome.successes += 1.0;
    }
    tie_counts.push_back(rows[i].tie_count > 0 ? rows[i].tie_count
                                               : rows.size());
  }
  outcome.records_recovered = outcome.successes;
  outcome.equivocation_bits = MeanCandidateBits(tie_counts);
  outcome.prior_bits = UniformBits(rows.size());
  outcome.note = "window=" + FormatFixed(config.window_percent) + "%";
  return FinishOutcome(std::move(outcome), ctx);
}

}  // namespace attack
}  // namespace tripriv
