#include "attack/equivocation.h"

#include <cmath>

namespace tripriv {
namespace attack {

double EntropyBits(const std::vector<double>& probabilities) {
  double total = 0.0;
  for (double p : probabilities) {
    if (p > 0.0) total += p;
  }
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (double p : probabilities) {
    if (p <= 0.0) continue;
    const double q = p / total;
    entropy -= q * std::log2(q);
  }
  // A one-hot posterior must report exactly 0.0, not -0.0 or rounding dust
  // from q = 1 (log2(1) is exactly 0, so this is only normalizing -0.0).
  return entropy == 0.0 ? 0.0 : entropy;
}

double UniformBits(size_t n) {
  if (n <= 1) return 0.0;
  return std::log2(static_cast<double>(n));
}

double MeanCandidateBits(const std::vector<size_t>& candidate_counts) {
  if (candidate_counts.empty()) return 0.0;
  double sum = 0.0;
  for (size_t n : candidate_counts) sum += UniformBits(n);
  return sum / static_cast<double>(candidate_counts.size());
}

}  // namespace attack
}  // namespace tripriv
