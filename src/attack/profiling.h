// User-dimension attacks: the honest-but-curious owner profiles queriers.
//
// User privacy in the paper is the querier's interest staying hidden from
// the database owner. The adversary here IS the service: it reads its own
// audit trail (service/traffic/simulator.h AccessEvent) or its PIR
// replica's observation log and tries to answer "what is this principal
// interested in?".
//
//   * RunQueryLogProfilingAttack — per-principal interest profiling over
//     the access trail. Unblinded (no PIR), the owner sees every (principal,
//     key) pair: each logged event's key is read straight off the log, so
//     the principal's interest profile is recovered exactly (the simulator's
//     keys are per-event unique — MixKey(principal, tick) — so there is no
//     weaker "prediction" game to fall back to; what the log shows IS the
//     profile). PIR-blinded, the log carries no keys; the owner's best
//     attribution is a uniform guess over the key universe, scored as its
//     exact expected credit. The gap between the two runs is precisely what
//     PIR buys the user.
//
//   * RunSelectionViewGuessingAttack — the compromised-replica guessing
//     game at the PIR layer. A single XOR-PIR server retains its observed
//     selection bitmaps; for each retrieval of a known target the server
//     guesses the target from its view. One server's view is marginally
//     uniform whatever the target, so the measured success collapses to
//     chance; the no-PIR baseline (direct reads, the owner's log shows the
//     index) scores 1.0. Both modes drive a real XorPirServer observation
//     log rather than asserting the theory.

#pragma once

#include <cstddef>
#include <vector>

#include "attack/attack.h"
#include "service/traffic/simulator.h"

namespace tripriv {
namespace attack {

struct ProfilingConfig {
  /// Simulate the PIR deployment: the trail's keys are invisible and the
  /// adversary falls back to a uniform guess over the key universe.
  bool pir_blinded = false;
};

/// Profiles principals over `trail` (served-request order). Outcome:
/// trials = logged events, successes = expected correct key attributions
/// (1 per event unblinded, 1/|keys| expected blinded), equivocation = mean
/// posterior bits per event (0 unblinded, log2(keys) blinded).
Result<AttackOutcome> RunQueryLogProfilingAttack(
    const std::vector<traffic::AccessEvent>& trail,
    const ProfilingConfig& config, const AttackContext& ctx);

struct SelectionViewConfig {
  size_t num_records = 256;
  size_t record_size = 16;
  size_t trials = 64;
  /// false = the no-PIR baseline: the owner's log shows the plain index.
  bool pir = true;
};

/// The compromised-replica guessing game (see file comment). Outcome:
/// trials as configured, successes = correct target guesses, equivocation
/// = mean posterior bits over the record space.
Result<AttackOutcome> RunSelectionViewGuessingAttack(
    const SelectionViewConfig& config, const AttackContext& ctx);

}  // namespace attack
}  // namespace tripriv
