// Respondent-dimension attacks: record linkage and attribute disclosure.
//
// The adversary here is the paper's intruder with external identified data:
// they hold the ORIGINAL quasi-identifier values of every respondent (the
// strongest auxiliary-knowledge model the SDC literature scores against)
// and attack a masked release.
//
//   * RecordLinkageAttack links each original record to its nearest masked
//     record in standardized QI space; a link is a success when it lands on
//     the true row, with fractional 1/|tie set| credit for tied distances.
//     In exact mode (block_bins = 0) the arithmetic — joint
//     standardization by the original's column moments, the 1e-12 tie
//     epsilon, the per-row credit and its index-order accumulation — is
//     the SAME computation as sdc/risk.h DistanceLinkageAttack, so the two
//     modules agree bitwise (the S1 reconciliation test asserts exactly
//     that). In blocked mode (block_bins > 0) candidates come from a grid
//     over masked QI space with progressive neighborhood expansion, which
//     scales the attack to 10^6 rows at slightly conservative (never
//     inflated) success rates.
//
//   * AttributeDisclosureAttack goes one step further: after linking, the
//     adversary reads the confidential attribute off the linked rows and
//     wins when the tie-set average lands within a window of the truth —
//     the interval-disclosure notion of risk.h lifted to linked records.
//
// Both attacks parallelize over original rows with per-index result slots
// and a serial index-order merge, so outcomes are byte-identical at any
// thread count.

#pragma once

#include <cstddef>
#include <vector>

#include "attack/attack.h"
#include "table/data_table.h"

namespace tripriv {
namespace attack {

/// Candidate-generation strategy shared by both attacks.
struct LinkageConfig {
  /// QI columns to link on; empty = the original schema's quasi-identifiers.
  std::vector<size_t> qi_cols;
  /// 0 = exact all-pairs nearest neighbor (O(n^2); reconciliation mode).
  /// > 0 = per-column grid resolution for blocked search (O(n * cell)).
  size_t block_bins = 0;
  /// Blocked mode: widen the cell neighborhood up to this Chebyshev radius
  /// before giving up on a row (unlinkable rows count as failures).
  size_t max_radius = 2;
};

/// Links original -> masked rows; requires row-aligned tables. Outcome:
/// trials = rows, successes = expected correct links, equivocation = mean
/// log2(tie-set size), prior = log2(rows).
Result<AttackOutcome> RunRecordLinkageAttack(const DataTable& original,
                                             const DataTable& masked,
                                             const LinkageConfig& config,
                                             const AttackContext& ctx);

struct AttributeDisclosureConfig {
  LinkageConfig linkage;
  /// Confidential numeric column the adversary tries to learn.
  size_t confidential_col = 0;
  /// Success window as a percentage of the confidential column's range
  /// (matches sdc/risk.h IntervalDisclosureRate semantics).
  double window_percent = 5.0;
};

/// Links each original record, then predicts its confidential value from
/// the tie set. Outcome: successes = expected rows whose confidential
/// value is pinned within the window; equivocation = mean tie-set bits.
Result<AttackOutcome> RunAttributeDisclosureAttack(
    const DataTable& original, const DataTable& masked,
    const AttributeDisclosureConfig& config, const AttackContext& ctx);

}  // namespace attack
}  // namespace tripriv
