#include "attack/fingerprint.h"

#include <algorithm>
#include <cmath>

#include "attack/equivocation.h"
#include "table/schema.h"
#include "util/checksum.h"
#include "util/random.h"

namespace tripriv {
namespace attack {
namespace {

/// FNV over a fixed-width little-endian tuple, then a 64-bit finalizer —
/// the codeword PRF. Not cryptographic (like every checksum in this tree),
/// but key-dependent and uniform in every bit. The finalizer matters: raw
/// FNV-1a's low bit is the parity of the input bytes' low bits (odd-prime
/// multiplication never changes bit 0), which would give same-parity
/// recipients identical codewords.
uint64_t TupleHash(uint64_t a, uint64_t b, uint64_t c) {
  uint8_t bytes[24];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(a >> (8 * i));
    bytes[8 + i] = static_cast<uint8_t>(b >> (8 * i));
    bytes[16 + i] = static_cast<uint8_t>(c >> (8 * i));
  }
  uint64_t h = Fnv1a64(bytes, sizeof(bytes));
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

Result<FingerprintCodec> FingerprintCodec::Create(
    const DataTable& base, const FingerprintConfig& config) {
  if (config.marks == 0) {
    return Status::InvalidArgument("fingerprint needs at least one mark");
  }
  if (config.num_recipients == 0) {
    return Status::InvalidArgument("fingerprint needs recipients");
  }
  if (base.num_rows() == 0) {
    return Status::InvalidArgument("cannot fingerprint an empty table");
  }
  std::vector<size_t> columns = config.columns;
  if (columns.empty()) {
    for (size_t c = 0; c < base.schema().size(); ++c) {
      if (base.schema().attribute(c).type == AttributeType::kInteger) {
        columns.push_back(c);
      }
    }
  } else {
    for (size_t c : columns) {
      if (c >= base.schema().size() ||
          base.schema().attribute(c).type != AttributeType::kInteger) {
        return Status::InvalidArgument(
            "fingerprint columns must be integer schema columns");
      }
    }
  }
  if (columns.empty()) {
    return Status::InvalidArgument("no integer columns to fingerprint");
  }
  const uint64_t capacity = base.num_rows() * columns.size();
  if (config.marks > capacity) {
    return Status::InvalidArgument("more marks than embeddable cells");
  }

  FingerprintCodec codec;
  codec.config_ = config;
  codec.config_.columns = columns;

  // Serial draw: distinct mark positions from the key-seeded stream.
  Rng rng(config.owner_key);
  std::vector<size_t> cell_ids =
      rng.SampleWithoutReplacement(capacity, config.marks);
  codec.positions_.reserve(config.marks);
  for (size_t id : cell_ids) {
    MarkCell mark;
    mark.row = id / columns.size();
    mark.col = columns[id % columns.size()];
    const Value& cell = base.at(mark.row, mark.col);
    if (cell.is_null()) {
      // Nulls cannot carry a bit; remap deterministically by linear probe
      // over cell ids (rare in our synthetic tables; keeps marks distinct
      // because probed ids wrap a fixed sequence).
      size_t probe = (id + 1) % capacity;
      while (probe != id) {
        const size_t row = probe / columns.size();
        const size_t col = columns[probe % columns.size()];
        if (!base.at(row, col).is_null()) {
          mark.row = row;
          mark.col = col;
          break;
        }
        probe = (probe + 1) % capacity;
      }
      if (probe == id) {
        return Status::InvalidArgument("all embeddable cells are null");
      }
    }
    mark.value = base.at(mark.row, mark.col).AsInt();
    codec.positions_.push_back(mark);
  }
  return codec;
}

uint8_t FingerprintCodec::CodewordBit(uint32_t recipient, size_t m) const {
  return static_cast<uint8_t>(
      TupleHash(config_.owner_key, recipient, m) & 1u);
}

Result<FingerprintedCopy> FingerprintCodec::Release(uint32_t recipient) const {
  if (recipient >= config_.num_recipients) {
    return Status::InvalidArgument("unknown fingerprint recipient");
  }
  FingerprintedCopy copy;
  copy.recipient = recipient;
  copy.mark_cells.reserve(positions_.size());
  for (size_t m = 0; m < positions_.size(); ++m) {
    MarkCell cell = positions_[m];
    cell.value = (cell.value & ~int64_t{1}) |
                 static_cast<int64_t>(CodewordBit(recipient, m));
    copy.mark_cells.push_back(cell);
  }
  return copy;
}

Result<Detection> FingerprintCodec::Detect(const FingerprintedCopy& suspect,
                                           ThreadPool* pool) const {
  if (suspect.mark_cells.size() != positions_.size()) {
    return Status::InvalidArgument(
        "suspect overlay does not match the codec's mark count");
  }
  for (size_t m = 0; m < positions_.size(); ++m) {
    if (suspect.mark_cells[m].row != positions_[m].row ||
        suspect.mark_cells[m].col != positions_[m].col) {
      return Status::InvalidArgument(
          "suspect overlay cells are not in mark order");
    }
  }

  // Parallel-pure: each recipient owns its score slot; the correlation
  // reads only shared immutable state.
  const size_t num_recipients = config_.num_recipients;
  std::vector<int64_t> scores(num_recipients, 0);
  RunSharded(pool, num_recipients,
             [&](size_t /*shard*/, size_t begin, size_t end) {
               for (size_t r = begin; r < end; ++r) {
                 int64_t score = 0;
                 for (size_t m = 0; m < positions_.size(); ++m) {
                   const uint8_t seen =
                       static_cast<uint8_t>(suspect.mark_cells[m].value & 1);
                   score += seen == CodewordBit(static_cast<uint32_t>(r), m)
                                ? 1
                                : -1;
                 }
                 scores[r] = score;
               }
             });

  // Serial merge: argmax |score| in recipient order (first wins ties).
  Detection detection;
  detection.threshold =
      config_.threshold_sigma *
      std::sqrt(static_cast<double>(positions_.size()));
  int64_t best = -1;
  for (size_t r = 0; r < num_recipients; ++r) {
    const int64_t magnitude = scores[r] < 0 ? -scores[r] : scores[r];
    if (magnitude > best) {
      best = magnitude;
      detection.recipient = static_cast<uint32_t>(r);
    }
  }
  detection.score = static_cast<double>(best);
  detection.accused = detection.score > detection.threshold;
  return detection;
}

Result<FingerprintedCopy> Collude(
    const std::vector<FingerprintedCopy>& coalition,
    CollusionStrategy strategy, uint64_t seed) {
  if (coalition.empty()) {
    return Status::InvalidArgument("collusion needs at least one copy");
  }
  const size_t marks = coalition[0].mark_cells.size();
  for (const FingerprintedCopy& copy : coalition) {
    if (copy.mark_cells.size() != marks) {
      return Status::InvalidArgument("coalition copies disagree on marks");
    }
  }

  // Serial draw: one random word per mark, whatever the strategy, so the
  // leaked copy depends only on (coalition, strategy, seed).
  Rng rng(seed);
  FingerprintedCopy leaked;
  leaked.recipient = coalition[0].recipient;
  leaked.mark_cells.reserve(marks);
  for (size_t m = 0; m < marks; ++m) {
    const uint64_t draw = rng.NextU64();
    size_t ones = 0;
    for (const FingerprintedCopy& copy : coalition) {
      ones += static_cast<size_t>(copy.mark_cells[m].value & 1);
    }
    const size_t zeros = coalition.size() - ones;
    uint8_t bit = 0;
    switch (strategy) {
      case CollusionStrategy::kMajority:
        bit = ones != zeros ? ones > zeros : (draw & 1u);
        break;
      case CollusionStrategy::kMinority:
        bit = ones != zeros ? ones < zeros : (draw & 1u);
        break;
      case CollusionStrategy::kRandom:
        bit = static_cast<uint8_t>(
            coalition[draw % coalition.size()].mark_cells[m].value & 1);
        break;
    }
    MarkCell cell = coalition[0].mark_cells[m];
    cell.value = (cell.value & ~int64_t{1}) | static_cast<int64_t>(bit);
    leaked.mark_cells.push_back(cell);
  }
  return leaked;
}

void FlipAttack(FingerprintedCopy* copy, double fraction, uint64_t seed) {
  Rng rng(seed);
  for (MarkCell& cell : copy->mark_cells) {
    if (rng.Bernoulli(fraction)) cell.value ^= 1;
  }
}

Result<AttackOutcome> RunCollusionAttack(const DataTable& base,
                                         const CollusionAttackConfig& config,
                                         const AttackContext& ctx) {
  if (config.colluders == 0 ||
      config.colluders > config.codec.num_recipients) {
    return Status::InvalidArgument("colluders must be in [1, recipients]");
  }
  if (config.trials == 0) {
    return Status::InvalidArgument("collusion attack needs trials");
  }
  if (config.flip_fraction < 0.0 || config.flip_fraction > 1.0) {
    return Status::InvalidArgument("flip fraction must be in [0, 1]");
  }
  TRIPRIV_ASSIGN_OR_RETURN(FingerprintCodec codec,
                           FingerprintCodec::Create(base, config.codec));

  // Serial draws: coalition members and per-trial seeds all come from one
  // seeded stream before any detection runs.
  Rng rng(ctx.seed);
  struct Trial {
    std::vector<size_t> members;
    uint64_t collude_seed = 0;
    uint64_t flip_seed = 0;
  };
  std::vector<Trial> trials(config.trials);
  for (Trial& trial : trials) {
    trial.members = rng.SampleWithoutReplacement(config.codec.num_recipients,
                                                 config.colluders);
    std::sort(trial.members.begin(), trial.members.end());
    trial.collude_seed = rng.NextU64();
    trial.flip_seed = rng.NextU64();
  }

  AttackOutcome outcome;
  outcome.attack = config.strategy == CollusionStrategy::kMajority
                       ? "fingerprint_majority_collusion"
                       : config.strategy == CollusionStrategy::kMinority
                             ? "fingerprint_minority_collusion"
                             : "fingerprint_random_collusion";
  outcome.dimension = Dimension::kOwner;
  outcome.trials = config.trials;
  outcome.records_total = config.trials;
  std::vector<double> posteriors;  // per-trial owner equivocation
  posteriors.reserve(config.trials);

  // Trials run serially (Detect parallelizes internally; no nesting).
  for (const Trial& trial : trials) {
    std::vector<FingerprintedCopy> coalition;
    coalition.reserve(trial.members.size());
    for (size_t member : trial.members) {
      TRIPRIV_ASSIGN_OR_RETURN(
          FingerprintedCopy copy,
          codec.Release(static_cast<uint32_t>(member)));
      coalition.push_back(std::move(copy));
    }
    TRIPRIV_ASSIGN_OR_RETURN(
        FingerprintedCopy leaked,
        Collude(coalition, config.strategy, trial.collude_seed));
    if (config.flip_fraction > 0.0) {
      FlipAttack(&leaked, config.flip_fraction, trial.flip_seed);
    }
    TRIPRIV_ASSIGN_OR_RETURN(Detection detection,
                             codec.Detect(leaked, ctx.pool));
    const bool caught =
        detection.accused &&
        std::binary_search(trial.members.begin(), trial.members.end(),
                           static_cast<size_t>(detection.recipient));
    if (!caught) {
      // The adversary wins: untraced, or an innocent was framed.
      outcome.successes += 1.0;
      outcome.records_recovered += 1.0;
    }
    posteriors.push_back(caught ? 0.0
                                : UniformBits(config.codec.num_recipients));
  }

  double bits = 0.0;
  for (double b : posteriors) bits += b;
  outcome.equivocation_bits =
      posteriors.empty() ? 0.0 : bits / static_cast<double>(posteriors.size());
  outcome.prior_bits = UniformBits(config.codec.num_recipients);
  outcome.note = std::to_string(config.colluders) + " colluders, flip=" +
                 FormatFixed(config.flip_fraction);
  return FinishOutcome(std::move(outcome), ctx);
}

}  // namespace attack
}  // namespace tripriv
