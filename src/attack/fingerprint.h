// Database fingerprinting: the owner-dimension technology and its attacks.
//
// Owner privacy in the paper is about what the data owner loses when
// copies leave their hands. Fingerprinting (surveyed by Ji et al., arXiv
// 2109.02768) is the standard countermeasure: each recipient's copy
// carries a distinct, imperceptible codeword so a leaked copy traces back
// to its source. This module implements a Boneh-Shaw-style random binary
// code with a Tardos-style correlation decoder:
//
//   * marking — the codec derives `marks` cell positions over the integer
//     columns from the owner's secret key; recipient r's copy carries
//     codeword bit(r, m) = FNV-parity(key, r, m) in the LSB of mark m.
//     Under the marking assumption, recipients cannot see WHICH cells are
//     marked, only disagree about marked cells they compare.
//   * releases are OVERLAYS — (row, col, value) triples over the shared
//     base table — so releasing 20 copies of a 10^6-row table costs
//     O(marks) per copy, not O(table).
//   * detection — the decoder correlates a suspect copy's LSBs with every
//     recipient's codeword (score = sum of +-1 agreements) and accuses the
//     recipient with the largest |score| when it clears
//     threshold_sigma * sqrt(marks). An innocent's score is a +-1 random
//     walk (sd = sqrt(marks)), so 4 sigma keeps false accusations
//     negligible; |.| catches coalitions that invert their bits.
//
// Attacks (the Ji et al. robustness suite):
//   * collusion — c recipients compare copies and emit majority, minority,
//     or randomly chosen bits where they disagree;
//   * bit flipping — a recipient flips a fraction of ALL LSBs, not knowing
//     which cells are marked.
//
// Collusion math the S6 gate leans on: under majority-of-5, a colluder's
// expected per-mark score is 2*(11/16) - 1 = 0.375, and a flip fraction f
// scales scores by (1 - 2f) — both far above the 4-sigma threshold at
// thousands of marks.

#pragma once

#include <cstdint>
#include <vector>

#include "attack/attack.h"
#include "core/annotations.h"
#include "table/data_table.h"

namespace tripriv {
namespace attack {

struct FingerprintConfig {
  /// Owner's embedding secret; detection requires the same key.
  uint64_t owner_key = 0x0137ab1e;
  /// Marked cells per copy. Detection power and collusion resistance grow
  /// with sqrt(marks); 4096 is comfortable for 20 recipients.
  size_t marks = 4096;
  /// Integer columns eligible for LSB embedding; empty = every integer
  /// column in the schema.
  std::vector<size_t> columns;
  /// Copies in circulation (recipient ids are [0, num_recipients)).
  uint32_t num_recipients = 20;
  /// Accusation threshold in innocent-score standard deviations.
  double threshold_sigma = 4.0;
};

/// One fingerprinted cell: `value` replaces the base table's cell.
struct MarkCell {
  size_t row = 0;
  size_t col = 0;
  int64_t value = 0;
};

/// A recipient's copy, as an overlay over the shared base table.
struct FingerprintedCopy {
  uint32_t recipient = 0;
  /// One entry per mark, in mark order (position m = codec mark m). Named
  /// `mark_cells`, not `cells`: tripriv_taint pools member sensitivity by
  /// bare field name, and a name as generic as `cells` would taint
  /// unrelated locals across the tree.
  TRIPRIV_SENSITIVE(record)
  std::vector<MarkCell> mark_cells;
};

/// What the decoder concluded about a suspect copy.
struct Detection {
  bool accused = false;
  uint32_t recipient = 0;  ///< meaningful only when accused
  double score = 0.0;      ///< best |correlation| over recipients
  double threshold = 0.0;  ///< threshold_sigma * sqrt(marks)
};

/// The owner's codec: derives mark positions and codewords from the key,
/// mints recipient overlays, and traces suspect overlays back.
class FingerprintCodec {
 public:
  /// Validates columns and derives the mark positions. The base table must
  /// outlive nothing — the codec copies what it needs (positions and base
  /// LSB values only).
  static Result<FingerprintCodec> Create(const DataTable& base,
                                         const FingerprintConfig& config);

  /// Recipient r's overlay (deterministic; same r -> same overlay).
  Result<FingerprintedCopy> Release(uint32_t recipient) const;

  /// Codeword bit of `recipient` at mark `m` (exposed for tests).
  uint8_t CodewordBit(uint32_t recipient, size_t m) const;

  /// Traces a suspect overlay. `suspect.mark_cells` must be in mark order (the
  /// attacks below preserve it). Correlation scores fan out per recipient
  /// via `pool`; the argmax is a serial recipient-order scan, so the
  /// verdict is thread-count-invariant.
  Result<Detection> Detect(const FingerprintedCopy& suspect,
                           ThreadPool* pool) const;

  size_t marks() const { return positions_.size(); }
  const FingerprintConfig& config() const { return config_; }

 private:
  FingerprintCodec() = default;

  FingerprintConfig config_;
  /// Mark positions (row, col) with the base cell's original value.
  std::vector<MarkCell> positions_;
};

/// How a coalition resolves marks its members disagree on.
enum class CollusionStrategy {
  kMajority,  ///< most common bit among the coalition
  kMinority,  ///< least common bit (tries to invert the codeword)
  kRandom,    ///< a uniformly chosen member's bit per mark
};

/// Merges coalition copies into the leaked copy. All copies must come from
/// the same codec (equal cell positions). `seed` drives kRandom and
/// majority/minority tie-breaks.
Result<FingerprintedCopy> Collude(
    const std::vector<FingerprintedCopy>& coalition,
    CollusionStrategy strategy, uint64_t seed);

/// Flips the LSB of each overlay cell independently with probability
/// `fraction` — the restriction of a whole-table flip attack to the cells
/// detection reads (flips elsewhere never affect the decoder).
void FlipAttack(FingerprintedCopy* copy, double fraction, uint64_t seed);

/// Scoreboard driver: runs `trials` collusion experiments (coalition
/// members drawn per trial from the seed) followed by an LSB flip of
/// `flip_fraction`, and scores the ATTACKER's success — a trial succeeds
/// for the adversary when detection accuses nobody or accuses an innocent.
/// Equivocation is the owner's posterior over recipients: 0 bits on a
/// correct accusation, log2(num_recipients) otherwise.
struct CollusionAttackConfig {
  FingerprintConfig codec;
  size_t colluders = 5;
  CollusionStrategy strategy = CollusionStrategy::kMajority;
  double flip_fraction = 0.0;
  size_t trials = 8;
};

Result<AttackOutcome> RunCollusionAttack(const DataTable& base,
                                         const CollusionAttackConfig& config,
                                         const AttackContext& ctx);

}  // namespace attack
}  // namespace tripriv
