// Equivocation: the information-theoretic privacy measure.
//
// Sankar et al. (arXiv 1010.0226) quantify database privacy as the
// entropy of the adversary's posterior over the hidden value given the
// release — the "equivocation" of Shannon secrecy systems. This header
// supplies the small entropy toolkit every attack uses to report residual
// uncertainty in bits:
//
//   * a uniform prior over n candidates carries log2(n) bits;
//   * a deterministic release (adversary pins the value) carries 0 bits;
//   * a posterior {p_i} carries H(p) = -sum p_i log2 p_i.
//
// The closed-form cases anchor the unit tests: EntropyBits on a uniform
// vector must equal UniformBits(n) exactly (both compute log2 through the
// same libm), and any one-hot posterior must yield exactly 0.0.

#pragma once

#include <cstddef>
#include <vector>

namespace tripriv {
namespace attack {

/// Shannon entropy of `probabilities` in bits. Zero entries contribute
/// zero (lim p log p = 0); the vector need not be normalized — entries are
/// divided by their sum first. Empty or all-zero input yields 0.0.
double EntropyBits(const std::vector<double>& probabilities);

/// log2(n) — the entropy of a uniform prior over n candidates; 0 when
/// n <= 1.
double UniformBits(size_t n);

/// Mean of UniformBits over per-trial candidate-set sizes — the aggregate
/// equivocation of an attack that narrows each target to a tie set and
/// guesses uniformly inside it. Empty input yields 0.0.
double MeanCandidateBits(const std::vector<size_t>& candidate_counts);

}  // namespace attack
}  // namespace tripriv
