#include "attack/scoreboard.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "attack/equivocation.h"
#include "attack/linkage.h"
#include "attack/nussbaum.h"
#include "attack/profiling.h"
#include "core/evaluator.h"
#include "ppdm/randomized_response.h"
#include "sdc/mondrian.h"
#include "sdc/noise.h"
#include "sdc/partitioned_mdav.h"
#include "sdc/risk.h"
#include "service/traffic/simulator.h"
#include "smc/reliable_channel.h"
#include "smc/secure_sum.h"
#include "table/datasets.h"

namespace tripriv {
namespace attack {
namespace {

size_t RowIndexOf(TechnologyClass t) {
  for (size_t i = 0; i < kScoreboardTechnologies.size(); ++i) {
    if (kScoreboardTechnologies[i] == t) return i;
  }
  return 0;
}

size_t DimIndexOf(Dimension d) { return static_cast<size_t>(d); }

/// Numeric quasi-identifier columns (the linkage attack surface).
std::vector<size_t> NumericQiCols(const DataTable& t) {
  std::vector<size_t> out;
  for (size_t c : t.schema().QuasiIdentifierIndices()) {
    if (t.schema().attribute(c).type != AttributeType::kCategorical) {
      out.push_back(c);
    }
  }
  return out;
}

/// All numeric columns (the PPDM deployments mask every one of them —
/// supporting broad analyses is what lets PPDM protect the confidential
/// payload too, the paper's rationale for rating PPDM owner privacy above
/// SDC's).
std::vector<size_t> NumericCols(const DataTable& t) {
  std::vector<size_t> out;
  for (size_t c = 0; c < t.schema().size(); ++c) {
    if (t.schema().attribute(c).type != AttributeType::kCategorical) {
      out.push_back(c);
    }
  }
  return out;
}

/// Mondrian requires every schema QI to be numeric; the census table has
/// categorical QIs (sex, region). This view promotes every numeric column
/// (including confidential income — condensation-style generic PPDM
/// generalizes the whole numeric payload) to quasi-identifier and demotes
/// the categorical QIs to non-confidential so Mondrian can run.
Result<DataTable> MondrianView(const DataTable& original) {
  std::vector<Attribute> attrs = original.schema().attributes();
  for (Attribute& attr : attrs) {
    if (attr.type == AttributeType::kCategorical) {
      if (attr.role == AttributeRole::kQuasiIdentifier) {
        attr.role = AttributeRole::kNonConfidential;
      }
    } else {
      attr.role = AttributeRole::kQuasiIdentifier;
    }
  }
  DataTable view((Schema(std::move(attrs))));
  for (size_t r = 0; r < original.num_rows(); ++r) {
    TRIPRIV_RETURN_IF_ERROR(view.AppendRow(original.row(r)));
  }
  return view;
}

/// Randomized response over every categorical confidential column — the
/// PPDM deployments' treatment of the non-numeric payload.
Result<DataTable> MaskCategoricalConfidentials(DataTable release, double keep,
                                               uint64_t seed) {
  for (size_t c : release.schema().ConfidentialIndices()) {
    if (release.schema().attribute(c).type != AttributeType::kCategorical) {
      continue;
    }
    TRIPRIV_ASSIGN_OR_RETURN(
        release,
        RandomizedResponseMask(release, c, keep, seed ^ (0xC0FFEEull + c)));
  }
  return release;
}

/// Owner-dimension dataset recovery: fraction of original cells the
/// release pins down (exact match for categoricals, the recovery window
/// for numerics — evaluator.cc's owner attack restated as an
/// AttackOutcome). Equivocation models the residual per-cell uncertainty
/// at window granularity: a recovered cell is pinned (0 bits), an
/// unrecovered numeric cell still hides among ~100/window window-widths.
Result<AttackOutcome> RunDatasetRecoveryAttack(const DataTable& original,
                                               const DataTable& release,
                                               double window_percent,
                                               const AttackContext& ctx) {
  if (original.num_rows() != release.num_rows()) {
    return Status::InvalidArgument("recovery attack needs aligned tables");
  }
  double recovered = 0.0;
  size_t total = 0;
  for (size_t c = 0; c < original.num_columns(); ++c) {
    if (original.schema().attribute(c).type == AttributeType::kCategorical) {
      size_t matches = 0;
      for (size_t r = 0; r < original.num_rows(); ++r) {
        if (original.at(r, c) == release.at(r, c)) ++matches;
      }
      recovered += static_cast<double>(matches);
    } else {
      TRIPRIV_ASSIGN_OR_RETURN(
          double rate,
          IntervalDisclosureRate(original, release, c, window_percent));
      recovered += rate * static_cast<double>(original.num_rows());
    }
    total += original.num_rows();
  }
  AttackOutcome outcome;
  outcome.attack = "dataset_recovery";
  outcome.dimension = Dimension::kOwner;
  outcome.trials = total;
  outcome.successes = recovered;
  outcome.records_recovered = recovered;
  outcome.records_total = total;
  outcome.prior_bits =
      UniformBits(static_cast<size_t>(std::max(2.0, 100.0 / window_percent)));
  outcome.equivocation_bits =
      (1.0 - outcome.success_rate()) * outcome.prior_bits;
  outcome.note = "window=" + FormatFixed(window_percent) + "%";
  return FinishOutcome(std::move(outcome), ctx);
}

/// Crypto-PPDM transcript scan: one party records the secure-sum wire
/// transcript and greps it for verbatim original cells. Hash-set
/// membership keeps the scan O(transcript + cells) at census scale.
Result<AttackOutcome> RunTranscriptScanAttack(const DataTable& original,
                                              size_t parties, uint64_t seed,
                                              const AttackContext& ctx) {
  std::vector<size_t> numeric;
  for (size_t c = 0; c < original.num_columns(); ++c) {
    if (original.schema().attribute(c).type != AttributeType::kCategorical) {
      numeric.push_back(c);
    }
  }
  PartyNetwork net(parties, seed);
  std::vector<std::vector<uint64_t>> local(
      parties, std::vector<uint64_t>(numeric.size() + 1, 0));
  std::unordered_set<int64_t> cell_values;
  for (size_t r = 0; r < original.num_rows(); ++r) {
    const size_t p = r % parties;
    local[p][0] += 1;
    for (size_t j = 0; j < numeric.size(); ++j) {
      const Value& v = original.at(r, numeric[j]);
      if (!v.is_numeric()) continue;
      const int64_t cell = std::llround(v.ToDouble());
      cell_values.insert(cell);
      local[p][j + 1] += static_cast<uint64_t>(std::max<int64_t>(0, cell));
    }
  }
  TRIPRIV_RETURN_IF_ERROR(SecureSumCounts(&net, local).status());

  // The curious party's scan: any payload word equal to an original cell
  // counts as a leak (uniformly masked shares are ~2^80, so ToI64 fails).
  size_t leaked = 0;
  size_t payload_words = 0;
  for (const auto& msg : net.transcript()) {
    if (msg.tag == "secure_sum/result") continue;  // public aggregate
    if (IsReliableControlMessage(msg)) continue;
    for (const BigInt& payload : msg.payload) {
      ++payload_words;
      const auto as_int = payload.ToI64();
      if (as_int.has_value() && cell_values.count(*as_int) > 0) ++leaked;
    }
  }
  AttackOutcome outcome;
  outcome.attack = "secure_sum_transcript_scan";
  outcome.dimension = Dimension::kRespondent;  // added to owner too
  outcome.trials = payload_words == 0 ? 1 : payload_words;
  outcome.successes = static_cast<double>(leaked);
  outcome.records_recovered = static_cast<double>(leaked);
  outcome.records_total = original.num_rows();
  outcome.prior_bits = UniformBits(original.num_rows());
  outcome.equivocation_bits =
      (1.0 - outcome.success_rate()) * outcome.prior_bits;
  outcome.note = std::to_string(parties) + " parties";
  return FinishOutcome(std::move(outcome), ctx);
}

/// A structural-visibility outcome: exposure that holds by protocol
/// definition rather than by measurement (crypto PPDM's public joint
/// analysis; the documented analysis-family visibility of use-specific
/// PPDM behind PIR). Rendered like any other outcome, with the rationale
/// in the note.
AttackOutcome StructuralOutcome(const std::string& name, Dimension dim,
                                double visibility, const std::string& note,
                                const AttackContext& ctx) {
  AttackOutcome outcome;
  outcome.attack = name;
  outcome.dimension = dim;
  outcome.trials = 1;
  outcome.successes = visibility;
  outcome.records_recovered = visibility;
  outcome.records_total = 1;
  outcome.prior_bits = 1.0;
  outcome.equivocation_bits = 1.0 - visibility;
  outcome.note = note;
  return FinishOutcome(std::move(outcome), ctx);
}

std::string PadTo(std::string s, size_t width) {
  if (s.size() < width) s.resize(width, ' ');
  return s;
}

}  // namespace

double ScoreboardCell::score() const {
  if (outcomes.empty()) return 0.0;
  double sum = 0.0;
  for (const AttackOutcome& outcome : outcomes) {
    sum += outcome.protection_score();
  }
  return sum / static_cast<double>(outcomes.size());
}

Grade ScoreboardRow::MeasuredGrade(Dimension d) const {
  return GradeFromScore(cells[DimIndexOf(d)].score());
}

Grade ScoreboardRow::ClaimedGrade(Dimension d) const {
  return PaperClaimedGrade(technology, d);
}

bool ScoreboardRow::AgreesWithPaper() const {
  for (Dimension d : kAllDimensions) {
    if (!GradesAgree(ClaimedGrade(d), MeasuredGrade(d))) return false;
  }
  return true;
}

Scoreboard::Scoreboard() {
  rows_.resize(kScoreboardTechnologies.size());
  for (size_t i = 0; i < kScoreboardTechnologies.size(); ++i) {
    rows_[i].technology = kScoreboardTechnologies[i];
  }
}

void Scoreboard::Add(TechnologyClass t, AttackOutcome outcome) {
  ScoreboardRow& row = rows_[RowIndexOf(t)];
  row.cells[DimIndexOf(outcome.dimension)].outcomes.push_back(
      std::move(outcome));
}

const ScoreboardRow& Scoreboard::row(TechnologyClass t) const {
  return rows_[RowIndexOf(t)];
}

std::string Scoreboard::RenderText() const {
  constexpr size_t kNameWidth = 36;
  constexpr size_t kCellWidth = 30;
  std::string out = "Empirical Table 2 (measured vs paper)\n";
  out += PadTo("technology", kNameWidth);
  for (Dimension d : kAllDimensions) {
    out += "  " + PadTo(DimensionToString(d), kCellWidth);
  }
  out += "  agrees\n";
  for (const ScoreboardRow& row : rows_) {
    out += PadTo(TechnologyClassToString(row.technology), kNameWidth);
    for (Dimension d : kAllDimensions) {
      std::string cell = GradeToString(row.MeasuredGrade(d));
      cell += " (";
      cell += FormatFixed(row.cells[DimIndexOf(d)].score());
      cell += ") vs ";
      cell += GradeToString(row.ClaimedGrade(d));
      out += "  " + PadTo(std::move(cell), kCellWidth);
    }
    out += row.AgreesWithPaper() ? "  yes" : "  NO";
    if (!PaperClaimsRow(row.technology)) out += " (extrapolated row)";
    out += '\n';
  }
  out += "\nattack outcomes:\n";
  for (const ScoreboardRow& row : rows_) {
    for (Dimension d : kAllDimensions) {
      for (const AttackOutcome& outcome : row.cells[DimIndexOf(d)].outcomes) {
        out += "  ";
        out += TechnologyClassToString(row.technology);
        out += ": ";
        out += OutcomeToString(outcome);
        out += '\n';
      }
    }
  }
  return out;
}

std::string Scoreboard::RenderJson() const {
  std::string json = "{\"rows\":[";
  bool first_row = true;
  for (const ScoreboardRow& row : rows_) {
    if (!first_row) json += ',';
    first_row = false;
    json += "{\"technology\":\"";
    json += TechnologyClassToString(row.technology);
    json += "\",\"paper_row\":";
    json += PaperClaimsRow(row.technology) ? "true" : "false";
    json += ",\"agrees\":";
    json += row.AgreesWithPaper() ? "true" : "false";
    json += ",\"dimensions\":{";
    bool first_dim = true;
    for (Dimension d : kAllDimensions) {
      if (!first_dim) json += ',';
      first_dim = false;
      const ScoreboardCell& cell = row.cells[DimIndexOf(d)];
      json += '"';
      json += DimensionToString(d);
      json += "\":{\"score\":";
      json += FormatFixed(cell.score());
      json += ",\"grade\":\"";
      json += GradeToString(row.MeasuredGrade(d));
      json += "\",\"claimed\":\"";
      json += GradeToString(row.ClaimedGrade(d));
      json += "\",\"agrees\":";
      json += GradesAgree(row.ClaimedGrade(d), row.MeasuredGrade(d)) ? "true"
                                                                     : "false";
      json += ",\"outcomes\":[";
      bool first_outcome = true;
      for (const AttackOutcome& outcome : cell.outcomes) {
        if (!first_outcome) json += ',';
        first_outcome = false;
        json += OutcomeToJson(outcome);
      }
      json += "]}";
    }
    json += "}}";
  }
  json += "]}";
  return json;
}

Result<Scoreboard> RunEmpiricalTable2(const EmpiricalTable2Config& config,
                                      const AttackContext& ctx) {
  if (config.rows < 100) {
    return Status::InvalidArgument("empirical Table 2 needs >= 100 rows");
  }
  // The config's seed governs end to end so a scoreboard is reproducible
  // from its config alone.
  AttackContext actx = ctx;
  actx.seed = config.seed;

  const DataTable original = MakeCensusScale(config.rows, config.seed);
  const std::vector<size_t> qi_cols = NumericQiCols(original);
  TRIPRIV_ASSIGN_OR_RETURN(const size_t income_col,
                           original.schema().IndexOf("income"));

  LinkageConfig blocked;
  blocked.qi_cols = qi_cols;
  blocked.block_bins = config.linkage_block_bins;

  Scoreboard board;

  // --- Respondent + owner: release-based technologies -------------------

  // SDC masking: partitioned MDAV over the numeric QIs.
  TRIPRIV_ASSIGN_OR_RETURN(
      auto sdc_release,
      PartitionedMdav(original, config.sdc_k, qi_cols, actx.pool));
  {
    TRIPRIV_ASSIGN_OR_RETURN(
        AttackOutcome linkage,
        RunRecordLinkageAttack(original, sdc_release.table, blocked, actx));
    AttributeDisclosureConfig disclosure;
    disclosure.linkage = blocked;
    disclosure.confidential_col = income_col;
    disclosure.window_percent = config.disclosure_window_percent;
    TRIPRIV_ASSIGN_OR_RETURN(
        AttackOutcome attr,
        RunAttributeDisclosureAttack(original, sdc_release.table, disclosure,
                                     actx));
    TRIPRIV_ASSIGN_OR_RETURN(
        AttackOutcome recovery,
        RunDatasetRecoveryAttack(original, sdc_release.table,
                                 config.recovery_window_percent, actx));
    for (TechnologyClass t :
         {TechnologyClass::kSdc, TechnologyClass::kSdcPlusPir}) {
      board.Add(t, linkage);
      board.Add(t, attr);
      board.Add(t, recovery);
    }
  }

  // Use-specific non-crypto PPDM: noise over every numeric attribute plus
  // randomized response on the categorical payload; its query interface is
  // size-restricted, so the Nussbaum min/max differencing applies.
  {
    TRIPRIV_ASSIGN_OR_RETURN(
        DataTable noise_release,
        AddUncorrelatedNoise(original, config.noise_alpha,
                             NumericCols(original), config.seed));
    TRIPRIV_ASSIGN_OR_RETURN(
        noise_release,
        MaskCategoricalConfidentials(std::move(noise_release),
                                     config.rr_keep_probability,
                                     config.seed));
    TRIPRIV_ASSIGN_OR_RETURN(
        AttackOutcome linkage,
        RunRecordLinkageAttack(original, noise_release, blocked, actx));
    AttributeDisclosureConfig disclosure;
    disclosure.linkage = blocked;
    disclosure.confidential_col = income_col;
    disclosure.window_percent = config.disclosure_window_percent;
    TRIPRIV_ASSIGN_OR_RETURN(
        AttackOutcome attr,
        RunAttributeDisclosureAttack(original, noise_release, disclosure,
                                     actx));
    MinMaxQueryConfig minmax;
    minmax.order_col = qi_cols[0];
    minmax.target_col = income_col;
    minmax.window = config.minmax_window;
    minmax.window_percent = config.disclosure_window_percent;
    TRIPRIV_ASSIGN_OR_RETURN(
        AttackOutcome differencing,
        RunMinMaxQueryAttack(original, noise_release, minmax, actx));
    TRIPRIV_ASSIGN_OR_RETURN(
        AttackOutcome recovery,
        RunDatasetRecoveryAttack(original, noise_release,
                                 config.recovery_window_percent, actx));
    for (TechnologyClass t :
         {TechnologyClass::kUseSpecificNonCryptoPpdm,
          TechnologyClass::kUseSpecificNonCryptoPpdmPlusPir}) {
      board.Add(t, linkage);
      board.Add(t, attr);
      board.Add(t, differencing);
      board.Add(t, recovery);
    }
  }

  // Generic non-crypto PPDM: Mondrian k-anonymity; the grouped release
  // invites bucket reconstruction under rank knowledge.
  {
    TRIPRIV_ASSIGN_OR_RETURN(DataTable mondrian_input,
                             MondrianView(original));
    TRIPRIV_ASSIGN_OR_RETURN(
        auto mondrian, MondrianAnonymize(mondrian_input, config.mondrian_k));
    TRIPRIV_ASSIGN_OR_RETURN(
        mondrian.table,
        MaskCategoricalConfidentials(std::move(mondrian.table),
                                     config.rr_keep_probability,
                                     config.seed ^ 0x6E6Eull));
    TRIPRIV_ASSIGN_OR_RETURN(
        AttackOutcome linkage,
        RunRecordLinkageAttack(original, mondrian.table, blocked, actx));
    BucketReconstructionConfig bucket;
    bucket.target_col = income_col;
    bucket.window_percent = config.disclosure_window_percent;
    TRIPRIV_ASSIGN_OR_RETURN(
        AttackOutcome reconstruction,
        RunBucketReconstructionAttack(original, mondrian.table,
                                      mondrian.group_of_row, bucket, actx));
    TRIPRIV_ASSIGN_OR_RETURN(
        AttackOutcome recovery,
        RunDatasetRecoveryAttack(original, mondrian.table,
                                 config.recovery_window_percent, actx));
    for (TechnologyClass t :
         {TechnologyClass::kGenericNonCryptoPpdm,
          TechnologyClass::kGenericNonCryptoPpdmPlusPir}) {
      board.Add(t, linkage);
      board.Add(t, reconstruction);
      board.Add(t, recovery);
    }
  }

  // Crypto PPDM: one transcript scan feeds both data dimensions.
  {
    TRIPRIV_ASSIGN_OR_RETURN(
        AttackOutcome scan,
        RunTranscriptScanAttack(original, config.crypto_parties, config.seed,
                                actx));
    board.Add(TechnologyClass::kCryptoPpdm, scan);
    AttackOutcome owner_scan = scan;
    owner_scan.dimension = Dimension::kOwner;
    board.Add(TechnologyClass::kCryptoPpdm, owner_scan);
  }

  // PIR alone serves the original records: both data dimensions collapse.
  {
    TRIPRIV_ASSIGN_OR_RETURN(
        AttackOutcome linkage,
        RunRecordLinkageAttack(original, original, blocked, actx));
    TRIPRIV_ASSIGN_OR_RETURN(
        AttackOutcome recovery,
        RunDatasetRecoveryAttack(original, original,
                                 config.recovery_window_percent, actx));
    board.Add(TechnologyClass::kPir, linkage);
    board.Add(TechnologyClass::kPir, recovery);
  }

  // Fingerprinting: near-verbatim release (respondent), collusion-traced
  // copies (owner).
  {
    CollusionAttackConfig collusion;
    collusion.codec.marks = config.fingerprint_marks;
    collusion.codec.num_recipients = config.fingerprint_recipients;
    collusion.codec.owner_key = config.seed ^ 0xF1A6ull;
    collusion.colluders = config.fingerprint_colluders;
    collusion.trials = config.fingerprint_trials;

    // The marked release differs from the base in `marks` LSBs only;
    // linkage sees an essentially verbatim table.
    TRIPRIV_ASSIGN_OR_RETURN(
        FingerprintCodec codec,
        FingerprintCodec::Create(original, collusion.codec));
    TRIPRIV_ASSIGN_OR_RETURN(FingerprintedCopy copy, codec.Release(0));
    DataTable marked = original;
    for (const MarkCell& cell : copy.mark_cells) {
      TRIPRIV_RETURN_IF_ERROR(
          marked.Set(cell.row, cell.col, Value(cell.value)));
    }
    TRIPRIV_ASSIGN_OR_RETURN(
        AttackOutcome linkage,
        RunRecordLinkageAttack(original, marked, blocked, actx));
    board.Add(TechnologyClass::kFingerprinting, linkage);

    for (CollusionStrategy strategy :
         {CollusionStrategy::kMajority, CollusionStrategy::kMinority,
          CollusionStrategy::kRandom}) {
      CollusionAttackConfig variant = collusion;
      variant.strategy = strategy;
      if (strategy == CollusionStrategy::kMajority) {
        variant.flip_fraction = config.fingerprint_flip;
      }
      TRIPRIV_ASSIGN_OR_RETURN(AttackOutcome outcome,
                               RunCollusionAttack(original, variant, actx));
      board.Add(TechnologyClass::kFingerprinting, outcome);
    }
  }

  // --- User dimension ---------------------------------------------------

  // One traffic run with the audit trail on; both profiling views read the
  // same trail, so the PIR delta is measured on identical workloads.
  traffic::SimulatorConfig sim;
  sim.profile = traffic::TrafficProfile::Steady(config.seed);
  sim.profile.num_principals = config.traffic_principals;
  sim.num_windows = config.traffic_windows;
  sim.record_access_trail = true;
  TRIPRIV_ASSIGN_OR_RETURN(
      traffic::SimulationReport report,
      traffic::RunTrafficSimulation(sim, actx.pool, nullptr));

  ProfilingConfig unblinded;
  TRIPRIV_ASSIGN_OR_RETURN(
      AttackOutcome profiling,
      RunQueryLogProfilingAttack(report.access_trail, unblinded, actx));
  ProfilingConfig blinded;
  blinded.pir_blinded = true;
  TRIPRIV_ASSIGN_OR_RETURN(
      AttackOutcome profiling_blinded,
      RunQueryLogProfilingAttack(report.access_trail, blinded, actx));

  SelectionViewConfig selection;
  selection.num_records = config.selection_records;
  selection.trials = config.selection_trials;
  selection.pir = true;
  TRIPRIV_ASSIGN_OR_RETURN(AttackOutcome selection_pir,
                           RunSelectionViewGuessingAttack(selection, actx));
  selection.pir = false;
  TRIPRIV_ASSIGN_OR_RETURN(AttackOutcome selection_direct,
                           RunSelectionViewGuessingAttack(selection, actx));

  // No PIR: the owner's log shows principals and keys.
  for (TechnologyClass t :
       {TechnologyClass::kSdc, TechnologyClass::kUseSpecificNonCryptoPpdm,
        TechnologyClass::kGenericNonCryptoPpdm,
        TechnologyClass::kFingerprinting}) {
    board.Add(t, profiling);
    board.Add(t, selection_direct);
  }
  // PIR deployments: blinded log plus the compromised-replica game.
  for (TechnologyClass t :
       {TechnologyClass::kPir, TechnologyClass::kSdcPlusPir,
        TechnologyClass::kGenericNonCryptoPpdmPlusPir}) {
    board.Add(t, profiling_blinded);
    board.Add(t, selection_pir);
  }
  // Structural exposures (see helper comment).
  board.Add(TechnologyClass::kCryptoPpdm,
            StructuralOutcome(
                "joint_analysis_visibility", Dimension::kUser, 1.0,
                "the joint analysis is known to every party (Section 4)",
                actx));
  board.Add(TechnologyClass::kUseSpecificNonCryptoPpdmPlusPir,
            StructuralOutcome("analysis_family_visibility", Dimension::kUser,
                              kUseSpecificQueryVisibility,
                              "supported analysis family is public "
                              "(core/evaluator.h constant)",
                              actx));

  return board;
}

}  // namespace attack
}  // namespace tripriv
