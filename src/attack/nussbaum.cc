#include "attack/nussbaum.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "attack/equivocation.h"

namespace tripriv {
namespace attack {
namespace {

/// Sliding-window minima (or maxima) of `values` over windows of size `w`:
/// out[p] = min(values[p .. p+w-1]) for p in [0, n-w]. Monotonic deque,
/// O(n), serial — the draw stage of both attacks.
std::vector<double> SlidingExtreme(const std::vector<double>& values, size_t w,
                                   bool want_min) {
  std::vector<double> out;
  if (w == 0 || values.size() < w) return out;
  out.reserve(values.size() - w + 1);
  std::deque<size_t> deq;  // indices, extreme at front
  for (size_t i = 0; i < values.size(); ++i) {
    while (!deq.empty() && (want_min ? values[deq.back()] >= values[i]
                                     : values[deq.back()] <= values[i])) {
      deq.pop_back();
    }
    deq.push_back(i);
    if (deq.front() + w == i) deq.pop_front();
    if (i + 1 >= w) out.push_back(values[deq.front()]);
  }
  return out;
}

double RangeOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  return *hi - *lo;
}

double ToleranceOf(const std::vector<double>& values, double window_percent) {
  const double range = RangeOf(values);
  return window_percent / 100.0 * (range > 0.0 ? range : 1.0);
}

}  // namespace

Result<AttackOutcome> RunMinMaxQueryAttack(const DataTable& original,
                                           const DataTable& released,
                                           const MinMaxQueryConfig& config,
                                           const AttackContext& ctx) {
  const size_t n = original.num_rows();
  if (released.num_rows() != n) {
    return Status::InvalidArgument(
        "min/max attack requires aligned original and released tables");
  }
  if (config.window < 2 || config.window > n) {
    return Status::InvalidArgument(
        "query-size restriction must be in [2, rows]");
  }
  if (config.window_percent < 0.0 || config.window_percent > 100.0) {
    return Status::InvalidArgument("window must be in [0, 100] percent");
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto order_vals,
                           original.NumericColumn(config.order_col));
  TRIPRIV_ASSIGN_OR_RETURN(auto truth,
                           original.NumericColumn(config.target_col));
  TRIPRIV_ASSIGN_OR_RETURN(auto released_vals,
                           released.NumericColumn(config.target_col));

  // Auxiliary knowledge: row order along the known column (ties break on
  // row index, as external sorted lists do).
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (order_vals[a] != order_vals[b]) return order_vals[a] < order_vals[b];
    return a < b;
  });

  // The oracle's view: released values laid out in the known order.
  std::vector<double> rel(n);
  for (size_t p = 0; p < n; ++p) rel[p] = released_vals[order[p]];

  const size_t k = config.window;
  const std::vector<double> min_k = SlidingExtreme(rel, k, /*want_min=*/true);
  const std::vector<double> max_k = SlidingExtreme(rel, k, /*want_min=*/false);
  // Overlap windows of size k-1 isolate the record that entered or left.
  const std::vector<double> min_k1 =
      SlidingExtreme(rel, k - 1, /*want_min=*/true);
  const std::vector<double> max_k1 =
      SlidingExtreme(rel, k - 1, /*want_min=*/false);

  // Differencing pass (serial, O(n)): consecutive windows W_p and W_{p+1}
  // share the overlap [p+1, p+k-1]. If W_p's extreme beats the overlap's,
  // the departing record order[p] held it; if W_{p+1}'s does, the entering
  // record order[p+k] does.
  std::vector<uint8_t> pinned(n, 0);
  std::vector<double> recovered(n, 0.0);
  for (size_t p = 0; p + k < n; ++p) {
    const double overlap_min = min_k1[p + 1];
    const double overlap_max = max_k1[p + 1];
    if (min_k[p] < overlap_min) {
      pinned[order[p]] = 1;
      recovered[order[p]] = min_k[p];
    }
    if (max_k[p] > overlap_max) {
      pinned[order[p]] = 1;
      recovered[order[p]] = max_k[p];
    }
    if (min_k[p + 1] < overlap_min) {
      pinned[order[p + k]] = 1;
      recovered[order[p + k]] = min_k[p + 1];
    }
    if (max_k[p + 1] > overlap_max) {
      pinned[order[p + k]] = 1;
      recovered[order[p + k]] = max_k[p + 1];
    }
  }

  // Pure scoring fan-out: each index owns its slot.
  const double tolerance = ToleranceOf(truth, config.window_percent);
  std::vector<uint8_t> correct(n, 0);
  RunSharded(ctx.pool, n, [&](size_t /*shard*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      correct[i] =
          pinned[i] != 0 && std::fabs(recovered[i] - truth[i]) <= tolerance;
    }
  });

  AttackOutcome outcome;
  outcome.attack = "minmax_query_differencing";
  outcome.dimension = Dimension::kRespondent;
  outcome.trials = n;
  outcome.records_total = n;
  std::vector<size_t> tie_counts;
  tie_counts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    outcome.successes += correct[i];
    tie_counts.push_back(pinned[i] != 0 ? 1 : k);
  }
  outcome.records_recovered = outcome.successes;
  outcome.equivocation_bits = MeanCandidateBits(tie_counts);
  outcome.prior_bits = UniformBits(n);
  outcome.note = "k=" + std::to_string(k);
  return FinishOutcome(std::move(outcome), ctx);
}

Result<AttackOutcome> RunBucketReconstructionAttack(
    const DataTable& original, const DataTable& released,
    const std::vector<size_t>& bucket_of_row,
    const BucketReconstructionConfig& config, const AttackContext& ctx) {
  const size_t n = original.num_rows();
  if (released.num_rows() != n) {
    return Status::InvalidArgument(
        "bucket attack requires aligned original and released tables");
  }
  if (bucket_of_row.size() != n) {
    return Status::InvalidArgument("bucket_of_row must cover every row");
  }
  if (config.window_percent < 0.0 || config.window_percent > 100.0) {
    return Status::InvalidArgument("window must be in [0, 100] percent");
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto truth,
                           original.NumericColumn(config.target_col));
  TRIPRIV_ASSIGN_OR_RETURN(auto released_vals,
                           released.NumericColumn(config.target_col));

  // Dense bucket ids in first-appearance order (deterministic).
  std::unordered_map<size_t, size_t> dense;
  std::vector<std::vector<size_t>> buckets;
  for (size_t i = 0; i < n; ++i) {
    const auto [it, inserted] = dense.emplace(bucket_of_row[i], buckets.size());
    if (inserted) buckets.emplace_back();
    buckets[it->second].push_back(i);
  }

  // Per-bucket reconstruction fan-out: buckets are disjoint row sets, so
  // each bucket owns its rows' slots in the shared vectors.
  std::vector<double> predicted(n, 0.0);
  std::vector<size_t> tie_counts(n, 1);
  RunSharded(ctx.pool, buckets.size(),
             [&](size_t /*shard*/, size_t begin, size_t end) {
               std::vector<size_t> ranked;
               for (size_t b = begin; b < end; ++b) {
                 const std::vector<size_t>& rows = buckets[b];
                 // Published summary of this bucket (from the release).
                 double lo = released_vals[rows[0]];
                 double hi = lo;
                 double sum = 0.0;
                 for (size_t r : rows) {
                   lo = std::min(lo, released_vals[r]);
                   hi = std::max(hi, released_vals[r]);
                   sum += released_vals[r];
                 }
                 const double mean = sum / static_cast<double>(rows.size());
                 // Rank knowledge: the true within-bucket order.
                 ranked = rows;
                 std::sort(ranked.begin(), ranked.end(),
                           [&](size_t a, size_t b2) {
                             if (truth[a] != truth[b2])
                               return truth[a] < truth[b2];
                             return a < b2;
                           });
                 const size_t s = ranked.size();
                 for (size_t r = 0; r < s; ++r) {
                   const size_t row = ranked[r];
                   if (r == 0) {
                     predicted[row] = lo;
                     tie_counts[row] = 1;
                   } else if (r + 1 == s) {
                     predicted[row] = hi;
                     tie_counts[row] = 1;
                   } else {
                     predicted[row] = mean;
                     tie_counts[row] = s > 2 ? s - 2 : 1;
                   }
                 }
               }
             });

  const double tolerance = ToleranceOf(truth, config.window_percent);
  AttackOutcome outcome;
  outcome.attack = "bucket_reconstruction";
  outcome.dimension = Dimension::kRespondent;
  outcome.trials = n;
  outcome.records_total = n;
  std::vector<size_t> bits_counts;
  bits_counts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (std::fabs(predicted[i] - truth[i]) <= tolerance) {
      outcome.successes += 1.0;
    }
    bits_counts.push_back(tie_counts[i]);
  }
  outcome.records_recovered = outcome.successes;
  outcome.equivocation_bits = MeanCandidateBits(bits_counts);
  outcome.prior_bits = UniformBits(n);
  outcome.note = "buckets=" + std::to_string(buckets.size());
  return FinishOutcome(std::move(outcome), ctx);
}

}  // namespace attack
}  // namespace tripriv
