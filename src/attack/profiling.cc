#include "attack/profiling.h"

#include <algorithm>
#include <unordered_map>

#include "attack/equivocation.h"
#include "pir/it_pir.h"
#include "util/random.h"

namespace tripriv {
namespace attack {
namespace {

/// Per-principal profiling result, filled by one fan-out index.
struct PrincipalScore {
  uint64_t trials = 0;
  double credit = 0.0;
  double bits = 0.0;  ///< summed posterior bits over this principal's tests
};

}  // namespace

Result<AttackOutcome> RunQueryLogProfilingAttack(
    const std::vector<traffic::AccessEvent>& trail,
    const ProfilingConfig& config, const AttackContext& ctx) {
  if (trail.empty()) {
    return Status::InvalidArgument("profiling attack needs a non-empty trail");
  }

  // Serial gather: key universe and per-principal key sequences, both in
  // first-appearance order so downstream loops are order-deterministic.
  std::unordered_map<uint64_t, size_t> key_ids;
  std::unordered_map<uint64_t, size_t> principal_ids;
  std::vector<std::vector<size_t>> sequences;  // dense principal -> key ids
  for (const traffic::AccessEvent& event : trail) {
    const auto [kit, key_inserted] =
        key_ids.emplace(event.query_key, key_ids.size());
    (void)key_inserted;
    const auto [pit, principal_inserted] =
        principal_ids.emplace(event.principal, sequences.size());
    if (principal_inserted) sequences.emplace_back();
    sequences[pit->second].push_back(kit->second);
  }
  const size_t num_keys = key_ids.size();
  const double prior_bits = UniformBits(num_keys);

  // Pure fan-out: each principal owns its score slot. Unblinded, the log
  // shows every event's key, so each event is attributed exactly (the
  // profile is the log); blinded, every event scores as the exact expected
  // credit of a uniform guess over the key universe.
  std::vector<PrincipalScore> scores(sequences.size());
  RunSharded(ctx.pool, sequences.size(),
             [&](size_t /*shard*/, size_t begin, size_t end) {
               for (size_t p = begin; p < end; ++p) {
                 const std::vector<size_t>& keys = sequences[p];
                 PrincipalScore& score = scores[p];
                 score.trials = keys.size();
                 if (config.pir_blinded) {
                   score.credit = num_keys > 0
                                      ? static_cast<double>(keys.size()) /
                                            static_cast<double>(num_keys)
                                      : 0.0;
                   score.bits = static_cast<double>(keys.size()) * prior_bits;
                 } else {
                   score.credit = static_cast<double>(keys.size());
                   score.bits = 0.0;
                 }
               }
             });

  // Serial merge in dense-principal order.
  AttackOutcome outcome;
  outcome.attack = config.pir_blinded ? "query_log_profiling_blinded"
                                      : "query_log_profiling";
  outcome.dimension = Dimension::kUser;
  double bits = 0.0;
  for (const PrincipalScore& score : scores) {
    outcome.trials += score.trials;
    outcome.successes += score.credit;
    bits += score.bits;
  }
  outcome.records_recovered = outcome.successes;
  outcome.records_total = outcome.trials;
  outcome.equivocation_bits =
      outcome.trials == 0 ? 0.0 : bits / static_cast<double>(outcome.trials);
  outcome.prior_bits = prior_bits;
  outcome.note = std::to_string(sequences.size()) + " principals, " +
                 std::to_string(num_keys) + " keys";
  return FinishOutcome(std::move(outcome), ctx);
}

Result<AttackOutcome> RunSelectionViewGuessingAttack(
    const SelectionViewConfig& config, const AttackContext& ctx) {
  if (config.num_records < 2 || config.record_size == 0 ||
      config.trials == 0) {
    return Status::InvalidArgument(
        "selection-view game needs >= 2 records, bytes, and trials");
  }

  // A real replica with a deterministic record payload.
  std::vector<std::vector<uint8_t>> records(config.num_records);
  for (size_t i = 0; i < config.num_records; ++i) {
    records[i].assign(config.record_size,
                      static_cast<uint8_t>((i * 131) & 0xff));
  }
  TRIPRIV_ASSIGN_OR_RETURN(XorPirServer server,
                           XorPirServer::Create(std::move(records)));
  server.EnableObservationLog(config.trials);

  // Serial draw: per-trial targets and the client's selection randomness.
  Rng rng(ctx.seed);
  std::vector<size_t> targets(config.trials);
  for (size_t t = 0; t < config.trials; ++t) {
    targets[t] = static_cast<size_t>(rng.UniformU64(config.num_records));
    if (config.pir) {
      // 1-of-2 XOR PIR: this replica receives the uniform bitmap (its
      // pair would receive the same bitmap with the target bit flipped).
      std::vector<uint8_t> selection =
          RandomSelectionBits(config.num_records, &rng);
      TRIPRIV_RETURN_IF_ERROR(server.Answer(selection, ctx.pool).status());
    } else {
      // No PIR: a direct read; the owner's log is the index itself. Model
      // the log as a one-hot "selection" so both modes flow through the
      // same observation machinery.
      std::vector<uint8_t> selection((config.num_records + 7) / 8, 0);
      FlipSelectionBit(&selection, targets[t]);
      TRIPRIV_RETURN_IF_ERROR(server.Answer(selection, ctx.pool).status());
    }
  }

  // The adversary reads the observation log and guesses each trial's
  // target with a fixed Bayes-consistent rule: the lowest observed set bit
  // (under PIR the posterior is uniform — any deterministic rule has the
  // same expected success; without PIR the one-hot bit IS the target).
  AttackOutcome outcome;
  outcome.attack = config.pir ? "selection_view_guessing_pir"
                              : "selection_view_guessing_direct";
  outcome.dimension = Dimension::kUser;
  outcome.trials = config.trials;
  outcome.records_total = config.trials;
  std::vector<uint8_t> correct(config.trials, 0);
  RunSharded(ctx.pool, config.trials,
             [&](size_t /*shard*/, size_t begin, size_t end) {
               for (size_t t = begin; t < end; ++t) {
                 const std::vector<uint8_t>& view = server.observed_query(t);
                 size_t guess = 0;
                 for (size_t i = 0; i < config.num_records; ++i) {
                   if ((view[i / 8] >> (i % 8)) & 1u) {
                     guess = i;
                     break;
                   }
                 }
                 correct[t] = guess == targets[t];
               }
             });
  for (size_t t = 0; t < config.trials; ++t) outcome.successes += correct[t];
  outcome.records_recovered = outcome.successes;
  // Posterior: uniform over records under PIR, pinned without.
  outcome.equivocation_bits = config.pir ? UniformBits(config.num_records) : 0.0;
  outcome.prior_bits = UniformBits(config.num_records);
  outcome.note = std::to_string(config.num_records) + " records";
  return FinishOutcome(std::move(outcome), ctx);
}

}  // namespace attack
}  // namespace tripriv
