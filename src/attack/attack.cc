#include "attack/attack.h"

#include <cstdio>

#include "obs/instruments.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace attack {
namespace {

/// JSON string escape for the small fixed vocabulary used in notes and
/// attack names (quotes, backslashes, control bytes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

uint8_t DimensionIndex(Dimension d) {
  switch (d) {
    case Dimension::kRespondent:
      return obs::kDimRespondent;
    case Dimension::kOwner:
      return obs::kDimOwner;
    case Dimension::kUser:
      return obs::kDimUser;
  }
  return obs::kDimRespondent;
}

}  // namespace

double AttackOutcome::success_rate() const {
  if (trials == 0) return 0.0;
  return successes / static_cast<double>(trials);
}

double AttackOutcome::protection_score() const {
  double score = 1.0 - success_rate();
  if (score < 0.0) score = 0.0;
  if (score > 1.0) score = 1.0;
  return score;
}

std::string FormatFixed(double value) {
  // %.6f in the default "C" locale; zero is folded to +0.0 so -0.000000
  // never appears in a report.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value == 0.0 ? 0.0 : value);
  return buf;
}

std::string OutcomeToString(const AttackOutcome& outcome) {
  std::string line = outcome.attack;
  line += " [";
  line += DimensionToString(outcome.dimension);
  line += "] success=";
  line += FormatFixed(outcome.success_rate());
  line += " (";
  line += FormatFixed(outcome.successes);
  line += "/";
  line += std::to_string(outcome.trials);
  line += ") recovered=";
  line += FormatFixed(outcome.records_recovered);
  line += "/";
  line += std::to_string(outcome.records_total);
  line += " equivocation=";
  line += FormatFixed(outcome.equivocation_bits);
  line += "/";
  line += FormatFixed(outcome.prior_bits);
  line += " bits";
  if (!outcome.note.empty()) {
    line += " (";
    line += outcome.note;
    line += ")";
  }
  return line;
}

std::string OutcomeToJson(const AttackOutcome& outcome) {
  std::string json = "{\"attack\":\"";
  json += JsonEscape(outcome.attack);
  json += "\",\"dimension\":\"";
  json += DimensionToString(outcome.dimension);
  json += "\",\"trials\":";
  json += std::to_string(outcome.trials);
  json += ",\"successes\":";
  json += FormatFixed(outcome.successes);
  json += ",\"success_rate\":";
  json += FormatFixed(outcome.success_rate());
  json += ",\"records_recovered\":";
  json += FormatFixed(outcome.records_recovered);
  json += ",\"records_total\":";
  json += std::to_string(outcome.records_total);
  json += ",\"equivocation_bits\":";
  json += FormatFixed(outcome.equivocation_bits);
  json += ",\"prior_bits\":";
  json += FormatFixed(outcome.prior_bits);
  json += ",\"protection_score\":";
  json += FormatFixed(outcome.protection_score());
  json += ",\"note\":\"";
  json += JsonEscape(outcome.note);
  json += "\"}";
  return json;
}

AttackOutcome FinishOutcome(AttackOutcome outcome, const AttackContext& ctx) {
  if (ctx.metrics != nullptr) {
    ctx.metrics->OnOutcome(DimensionIndex(outcome.dimension),
                           outcome.success_rate(), outcome.equivocation_bits);
  }
  return outcome;
}

void RunSharded(ThreadPool* pool, size_t n,
                const std::function<void(size_t, size_t, size_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(n, fn);
  } else if (n > 0) {
    fn(0, 0, n);
  }
}

}  // namespace attack
}  // namespace tripriv
