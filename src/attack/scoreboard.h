// The empirical Table 2: measured grades from real attacks.
//
// core/evaluator.h scores Table 2 with small-scale heuristics; this module
// regenerates it from the adversary harness at census scale. For each
// technology class the scoreboard deploys the protection on a synthetic
// census table (10^5-10^6 rows), runs the attack battery that models each
// dimension's adversary, and converts attacker success into protection
// scores and grades:
//
//   dimension score = mean over the cell's attacks of (1 - success rate)
//   grade           = GradeFromScore (same bands the evaluator uses)
//
// Batteries per dimension:
//   respondent — blocked record linkage + attribute disclosure for masked
//     releases; min/max differencing for the query-restricted use-specific
//     deployment; bucket reconstruction for grouped (k-anonymous)
//     releases; transcript leak scan for crypto PPDM.
//   owner      — dataset-recovery scan of the release; fingerprint
//     collusion/flip battery for the fingerprinting row; transcript scan
//     for crypto PPDM.
//   user       — query-log profiling over a real traffic-simulator trail,
//     unblinded vs PIR-blinded, plus the compromised-replica selection
//     game; documented visibility constants for the two deployments whose
//     query exposure is structural (crypto: the joint analysis is known to
//     all parties; use-specific + PIR: the analysis family is known).
//
// Everything is deterministic in (config, seed): serial draws, ParallelFor
// fan-outs with slot ownership, serial merges — RenderText and RenderJson
// are byte-identical at 0/1/2/8 threads, which tools/make_table2.sh
// asserts in CI.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/attack.h"
#include "attack/fingerprint.h"
#include "core/technology.h"

namespace tripriv {
namespace attack {

/// Measured state of one (technology, dimension) cell.
struct ScoreboardCell {
  std::vector<AttackOutcome> outcomes;

  /// Mean protection score over the outcomes; 0 when empty (an unattacked
  /// cell claims no protection — fail-closed).
  double score() const;
};

/// One scoreboard row with its paper comparison.
struct ScoreboardRow {
  TechnologyClass technology = TechnologyClass::kSdc;
  ScoreboardCell cells[3];  ///< indexed by Dimension

  Grade MeasuredGrade(Dimension d) const;
  Grade ClaimedGrade(Dimension d) const;
  bool AgreesWithPaper() const;
};

/// Accumulates attack outcomes into the 9 x 3 grid and renders it.
class Scoreboard {
 public:
  /// Appends `outcome` to the (t, outcome.dimension) cell.
  void Add(TechnologyClass t, AttackOutcome outcome);

  const ScoreboardRow& row(TechnologyClass t) const;
  const std::vector<ScoreboardRow>& rows() const { return rows_; }

  /// Fixed-width text table (grades, scores, paper claims, agreement),
  /// followed by one line per attack outcome. Deterministic bytes.
  std::string RenderText() const;

  /// Deterministic JSON document ({"rows": [...]}, fixed key order).
  std::string RenderJson() const;

  Scoreboard();

 private:
  std::vector<ScoreboardRow> rows_;  ///< kScoreboardTechnologies order
};

/// One full empirical Table 2 run.
struct EmpiricalTable2Config {
  /// Census rows (table/datasets.h MakeCensusScale). CI runs 10^6; tier-1
  /// tests use 10^3-10^4.
  size_t rows = 10000;
  uint64_t seed = 7;

  // --- protection deployments ---
  size_t sdc_k = 5;              ///< partitioned MDAV group size
  size_t mondrian_k = 5;         ///< generic PPDM (Mondrian) group size
  double noise_alpha = 0.5;      ///< use-specific PPDM noise level
  /// Retention probability of randomized response on categorical
  /// confidential attributes in the PPDM deployments.
  double rr_keep_probability = 0.8;
  size_t crypto_parties = 4;     ///< secure-sum shard owners

  // --- attack knobs ---
  size_t linkage_block_bins = 24;     ///< blocked-linkage grid resolution
  double disclosure_window_percent = 5.0;
  size_t minmax_window = 5;           ///< query-size restriction k
  /// Owner-attack recovery window; matches the evaluator's default so the
  /// measured owner column is comparable with core/evaluator.h.
  double recovery_window_percent = 2.0;

  // --- user-dimension workload ---
  uint64_t traffic_principals = 256;  ///< small pool => repeat visitors
  uint64_t traffic_windows = 24;
  size_t selection_trials = 64;
  size_t selection_records = 256;

  // --- fingerprinting ---
  size_t fingerprint_marks = 4096;
  uint32_t fingerprint_recipients = 20;
  size_t fingerprint_colluders = 5;
  double fingerprint_flip = 0.10;
  size_t fingerprint_trials = 4;
};

/// Deploys every technology, runs every battery, returns the filled
/// scoreboard. Uses ctx.pool for fan-outs and ctx.metrics for outcome
/// instruments; deterministic in (config, ctx.seed is ignored — the
/// config's seed governs so a scoreboard is reproducible from its config
/// alone).
Result<Scoreboard> RunEmpiricalTable2(const EmpiricalTable2Config& config,
                                      const AttackContext& ctx);

}  // namespace attack
}  // namespace tripriv
