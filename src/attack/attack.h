// The adversary harness: a common shape for every attack the empirical
// Table 2 scoreboard runs.
//
// The paper's Table 2 grades eight technology classes along the
// respondent/owner/user dimensions; this subsystem regenerates those grades
// from measurements. Every attack — record linkage, attribute disclosure,
// the Nussbaum-Segal aggregate attacks, fingerprint collusion/flipping,
// query-log profiling — reduces to the same outcome vocabulary:
//
//   * success rate        — fraction of trials where the adversary wins
//                           (fractional credit for tie-set guessing);
//   * records recovered   — expected records/cells re-identified;
//   * equivocation (bits) — the uncertainty the adversary still has after
//                           the attack, the information-theoretic privacy
//                           measure of Sankar et al. (arXiv 1010.0226):
//                           0 bits = full disclosure, prior_bits = the
//                           release taught the adversary nothing.
//
// Determinism contract: an attack's outcome is a pure function of its
// inputs and AttackContext::seed. Attacks parallelize only through
// ParallelFor on the serial-draw -> parallel-pure -> serial-merge
// discipline, so outcomes (and the scoreboard built from them) are
// byte-identical at 0/1/2/8 threads.

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/framework.h"
#include "util/status.h"

namespace tripriv {

class ThreadPool;

namespace obs {
class AttackMetrics;
}  // namespace obs

namespace attack {

/// What one attack measured. Success figures are expectations, so they are
/// doubles; an attack that guesses uniformly within a tie set of size s
/// credits itself 1/s per trial, exactly like sdc/risk.h linkage.
struct AttackOutcome {
  /// Stable snake_case attack name ("record_linkage", "fingerprint_majority_collusion", ...).
  std::string attack;
  Dimension dimension = Dimension::kRespondent;
  /// Attack attempts (records linked, queries issued, detections run).
  uint64_t trials = 0;
  /// Expected successful attempts (fractional tie credit allowed).
  double successes = 0.0;
  /// Expected records (or cells) the adversary recovered.
  double records_recovered = 0.0;
  uint64_t records_total = 0;
  /// Mean residual uncertainty per trial, in bits (see file comment).
  double equivocation_bits = 0.0;
  /// Baseline uncertainty before the attack (log2 of the candidate space).
  double prior_bits = 0.0;
  /// Free-text qualifier rendered into reports ("k=5", "5 colluders").
  std::string note;

  /// successes / trials; 0 when no trials ran.
  double success_rate() const;
  /// 1 - success_rate, clamped to [0, 1] — the scoreboard's protection
  /// score for this attack (1 = the attack failed completely).
  double protection_score() const;
};

/// Everything an attack may draw on beyond its explicit inputs.
struct AttackContext {
  uint64_t seed = 7;
  /// Optional pool for the pure fan-out stages; null = serial.
  ThreadPool* pool = nullptr;
  /// Optional attack-outcome instruments (obs/instruments.h); outcomes are
  /// aggregates, so publishing them is allowlist-safe.
  obs::AttackMetrics* metrics = nullptr;
};

/// Interface for suite composition: concrete attacks capture their inputs
/// (tables, trails, codecs) at construction and expose a uniform Run.
class Attack {
 public:
  virtual ~Attack() = default;
  virtual const char* name() const = 0;
  virtual Dimension dimension() const = 0;
  virtual Result<AttackOutcome> Run(const AttackContext& ctx) = 0;
};

/// Fixed-precision decimal rendering (6 places, no locale) so reports and
/// JSON are byte-identical across platforms and thread counts.
std::string FormatFixed(double value);

/// One-line text rendering of an outcome.
std::string OutcomeToString(const AttackOutcome& outcome);

/// Deterministic JSON object for one outcome (keys in fixed order).
std::string OutcomeToJson(const AttackOutcome& outcome);

/// Publishes an outcome to ctx.metrics (no-op when null) and returns it —
/// the tail call every attack implementation ends with.
AttackOutcome FinishOutcome(AttackOutcome outcome, const AttackContext& ctx);

/// ParallelFor when a pool is given, one inline shard when it is null —
/// the pure fan-out step of every attack's serial-draw -> parallel-pure ->
/// serial-merge pipeline. `fn(shard, begin, end)` must only write state
/// owned by indices in [begin, end).
void RunSharded(ThreadPool* pool, size_t n,
                const std::function<void(size_t, size_t, size_t)>& fn);

}  // namespace attack
}  // namespace tripriv
