// Aggregate-release attacks after Nussbaum & Segal (arXiv 1905.11694):
// query-size restriction and bucketized summaries do not stop an adversary
// with ordering knowledge.
//
//   * RunMinMaxQueryAttack — the statistical database enforces the classic
//     query-size restriction: every MIN/MAX query must cover at least k
//     records. The adversary knows the records' order along one
//     quasi-identifier (external knowledge: ages, salaries and the like
//     sort people publicly) and slides length-k windows along that order,
//     differencing consecutive answers. Whenever the departing record held
//     the window's minimum (or maximum), its confidential value is exposed
//     exactly — the restriction bounds one query, not the intersection of
//     two.
//
//   * RunBucketReconstructionAttack — the release is per-bucket
//     (min, max, mean) summaries, the bucketization a microaggregation or
//     histogram scheme produced. The adversary additionally knows each
//     record's rank within its bucket and reconstructs: rank-extremes get
//     the published min/max verbatim, interior records the mean. On small
//     buckets this recovers most values within a tight window.
//
// Both attacks compare reconstructions against the ORIGINAL values, so
// running them over a protected release (noise, rank swap, PRAM) measures
// how much of the channel the protection actually closes. Oracles answer
// from the RELEASED table only — the attack code never touches original
// confidential values except to score success.

#pragma once

#include <cstddef>
#include <vector>

#include "attack/attack.h"
#include "table/data_table.h"

namespace tripriv {
namespace attack {

struct MinMaxQueryConfig {
  /// Column whose order the adversary knows (auxiliary knowledge).
  size_t order_col = 0;
  /// Confidential column the MIN/MAX oracle aggregates.
  size_t target_col = 0;
  /// Query-size restriction: every window covers exactly this many rows.
  size_t window = 5;
  /// Success tolerance as a percentage of the target column's range.
  double window_percent = 1.0;
};

/// Sliding min/max differencing; `original` and `released` must be
/// row-aligned (`released` may be the same table for an unprotected API).
/// Outcome: trials = rows, successes = rows whose value the differencing
/// pins within tolerance; equivocation = mean bits over rows (0 for pinned
/// rows, log2(window) for rows the windows never isolated).
Result<AttackOutcome> RunMinMaxQueryAttack(const DataTable& original,
                                           const DataTable& released,
                                           const MinMaxQueryConfig& config,
                                           const AttackContext& ctx);

struct BucketReconstructionConfig {
  /// Confidential column the per-bucket summaries describe.
  size_t target_col = 0;
  /// Success tolerance as a percentage of the target column's range.
  double window_percent = 1.0;
};

/// Reconstruction from per-bucket (min, max, mean) summaries of `released`
/// under within-bucket rank knowledge. `bucket_of_row[i]` assigns row i to
/// its bucket (e.g. microaggregation group ids); buckets need not be
/// contiguous. Outcome: trials = rows, successes = reconstructions within
/// tolerance of the original; equivocation = 0 bits for rank-extreme rows,
/// log2(bucket interior size) otherwise.
Result<AttackOutcome> RunBucketReconstructionAttack(
    const DataTable& original, const DataTable& released,
    const std::vector<size_t>& bucket_of_row,
    const BucketReconstructionConfig& config, const AttackContext& ctx);

}  // namespace attack
}  // namespace tripriv
