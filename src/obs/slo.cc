#include "obs/slo.h"

#include <sstream>
#include <utility>

#include "util/logging.h"

namespace tripriv {
namespace obs {

SloGate::SloGate(std::string metric_name, std::string label_key)
    : metric_name_(std::move(metric_name)), label_key_(std::move(label_key)) {}

uint64_t SloGate::QuantileUpperBound(const HistogramData& histogram,
                                     double q) {
  TRIPRIV_CHECK(q > 0.0 && q <= 1.0);
  if (histogram.count == 0) return 0;
  // ceil(q * count) without floating-point accumulation: the smallest rank
  // whose cumulative coverage reaches the quantile.
  const double scaled = q * static_cast<double>(histogram.count);
  uint64_t rank = static_cast<uint64_t>(scaled);
  if (static_cast<double>(rank) < scaled) ++rank;
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < histogram.counts.size(); ++i) {
    cumulative += histogram.counts[i];
    if (cumulative >= rank) {
      return i < histogram.bounds.size() ? histogram.bounds[i] : UINT64_MAX;
    }
  }
  return UINT64_MAX;
}

Result<SloReport> SloGate::Evaluate(
    const MetricsSnapshot& snapshot,
    const std::vector<SloTarget>& targets) const {
  SloReport report;
  for (const SloTarget& target : targets) {
    const MetricSample* found = nullptr;
    for (const MetricSample& sample : snapshot.samples) {
      if (sample.name != metric_name_ ||
          sample.kind != MetricKind::kHistogram) {
        continue;
      }
      for (const auto& label : sample.labels) {
        if (label.first == label_key_ && label.second == target.class_name) {
          found = &sample;
          break;
        }
      }
      if (found != nullptr) break;
    }
    if (found == nullptr) {
      // Fail closed: a missing series means the latency instrument was not
      // wired, and a gate that passes then gates nothing.
      return Status::FailedPrecondition(
          "no histogram series " + metric_name_ + "{" + label_key_ + "=" +
          target.class_name + "} in the snapshot");
    }
    SloClassResult result;
    result.class_name = target.class_name;
    result.count = found->histogram.count;
    result.p50_ticks = QuantileUpperBound(found->histogram, 0.50);
    result.p99_ticks = QuantileUpperBound(found->histogram, 0.99);
    result.pass = result.count == 0 ||
                  (result.p50_ticks <= target.p50_max_ticks &&
                   result.p99_ticks <= target.p99_max_ticks);
    report.ok = report.ok && result.pass;
    report.classes.push_back(std::move(result));
  }
  return report;
}

std::string RenderSloReport(const SloReport& report) {
  std::ostringstream os;
  os << "class            count      p50      p99  verdict\n";
  for (const SloClassResult& result : report.classes) {
    os << result.class_name;
    for (size_t pad = result.class_name.size(); pad < 16; ++pad) os << ' ';
    auto col = [&os](uint64_t v, int width) {
      const std::string text =
          v == UINT64_MAX ? std::string("+inf") : std::to_string(v);
      for (int pad = width - static_cast<int>(text.size()); pad > 0; --pad) {
        os << ' ';
      }
      os << text;
    };
    col(result.count, 6);
    col(result.p50_ticks, 9);
    col(result.p99_ticks, 9);
    os << "  " << (result.pass ? "ok" : "VIOLATED") << "\n";
  }
  os << "slo gate: " << (report.ok ? "PASS" : "FAIL") << "\n";
  return os.str();
}

}  // namespace obs
}  // namespace tripriv
