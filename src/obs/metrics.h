// Privacy-safe metrics for the TriPriv serving stack.
//
// Observability must not become the side channel the rest of the tree is
// built to close: a metric label that carries a predicate string, a record
// value, or a query fingerprint republishes exactly what the WAL discipline
// keeps out of the log. The registry therefore fails closed — every label
// key AND value must be registered in a LabelAllowlist before a metric can
// use it, registration itself rejects strings that look like data (wrong
// charset, too long, all digits), and an unknown label is kInvalidArgument,
// never a best-effort sanitize.
//
// Determinism contract (the PR 4 discipline): instruments are cheap enough
// to stay always-on, and snapshots are a pure function of the workload, not
// the thread count. Counters and histograms carry one slot per ThreadPool
// shard; parallel code writes only its own shard's slot and Snapshot()
// merges slots in shard order, so the merged value is bit-identical at
// 0/1/2/8 threads. Values are integers (ticks, bytes, counts) precisely so
// the merge is associativity-proof; gauges are serial-only (set from the
// serial publish step, never from inside a ParallelFor).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/annotations.h"
#include "util/status.h"

namespace tripriv {
namespace obs {

/// Sorted (key, value) pairs identifying one time series of a metric.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Fail-closed registry of the label keys and values metrics may carry.
/// Nothing dynamic — predicate strings, record values, query fingerprints —
/// can pass: values must be pre-registered, and registration rejects
/// data-shaped strings (see AllowValue).
class LabelAllowlist {
 public:
  /// The keys/values the built-in instruments use (tier, dimension,
  /// backend, principal, method, state, result).
  static LabelAllowlist Default();

  /// Admits a label key: [a-z_][a-z0-9_]*, at most 32 chars.
  TRIPRIV_SINK(label)
  Status AllowKey(const std::string& key);

  /// Admits one value for an already-allowed key. Values must be short
  /// (<= 48 chars), lowercase [a-z0-9_.:-], and not all digits — a rendered
  /// query fingerprint or record id never qualifies.
  TRIPRIV_SINK(label)
  Status AllowValue(const std::string& key, const std::string& value);

  /// OK iff every (key, value) pair has been registered.
  Status Validate(const LabelSet& labels) const;

 private:
  std::map<std::string, std::set<std::string>> allowed_;
};

/// Monotone event count with per-shard slots (see file comment).
class Counter {
 public:
  /// Adds `delta` to shard `shard`'s slot. Parallel callers must pass their
  /// own ParallelFor shard index; serial code uses the default slot 0.
  void Add(uint64_t delta, size_t shard = 0);
  void Increment(size_t shard = 0) { Add(1, shard); }

  /// Sum of the shard slots, merged in shard order.
  uint64_t value() const;

 private:
  friend class MetricsRegistry;
  explicit Counter(size_t shards) : slots_(shards, 0) {}
  std::vector<uint64_t> slots_;
};

/// Last-write-wins sampled value. Serial-only: set from the publish step,
/// never from inside a ParallelFor.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  double value_ = 0.0;
};

/// Fixed-bucket histogram of integer values with per-shard slots.
///
/// Bucket semantics are Prometheus `le`: a value lands in the first bucket
/// whose upper bound is >= the value (a value equal to a bound belongs to
/// that bound's bucket), and values above the last bound land in the
/// implicit +inf bucket.
class Histogram {
 public:
  /// Records `value` into shard `shard`'s slot.
  void Observe(uint64_t value, size_t shard = 0);

  /// Upper bounds, strictly increasing; the +inf bucket is implicit.
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts merged in shard order; the last
  /// entry is the +inf bucket.
  std::vector<uint64_t> bucket_counts() const;
  /// Total observations, merged in shard order.
  uint64_t count() const;
  /// Sum of observed values, merged in shard order.
  uint64_t sum() const;

 private:
  friend class MetricsRegistry;
  Histogram(std::vector<uint64_t> bounds, size_t shards);
  struct Slot {
    std::vector<uint64_t> buckets;  // bounds_.size() + 1 (+inf)
    uint64_t count = 0;
    uint64_t sum = 0;
  };
  std::vector<uint64_t> bounds_;
  std::vector<Slot> slots_;
};

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

/// Merged view of one Histogram at snapshot time.
struct HistogramData {
  std::vector<uint64_t> bounds;
  /// Non-cumulative per-bucket counts; last entry is the +inf bucket.
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  uint64_t sum = 0;
};

/// One time series at snapshot time.
struct MetricSample {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  LabelSet labels;
  uint64_t counter_value = 0;
  double gauge_value = 0.0;
  HistogramData histogram;
};

/// Deterministic snapshot: samples sorted by (name, labels).
struct MetricsSnapshot {
  std::vector<MetricSample> samples;
};

/// Registry tuning.
struct MetricsConfig {
  /// Slots per counter/histogram; pass the ThreadPool's NumShards ceiling
  /// (num_threads, or 1 for serial-only instrumentation).
  size_t shards = 1;
  LabelAllowlist allowlist = LabelAllowlist::Default();
};

/// Owns every metric; hands out stable handles. Registration validates the
/// metric name ([a-z_][a-z0-9_]*) and every label against the allowlist and
/// fails closed with kInvalidArgument on anything unknown. Handles remain
/// valid for the registry's lifetime (the registry is not movable once
/// handles are out).
class MetricsRegistry {
 public:
  explicit MetricsRegistry(MetricsConfig config = MetricsConfig());

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  TRIPRIV_SINK(label)
  Result<Counter*> RegisterCounter(const std::string& name,
                                   const std::string& help,
                                   LabelSet labels = {});
  TRIPRIV_SINK(label)
  Result<Gauge*> RegisterGauge(const std::string& name,
                               const std::string& help, LabelSet labels = {});
  /// `bounds` are strictly increasing upper bounds; must be non-empty.
  TRIPRIV_SINK(label)
  Result<Histogram*> RegisterHistogram(const std::string& name,
                                       const std::string& help,
                                       std::vector<uint64_t> bounds,
                                       LabelSet labels = {});

  /// Admits one more label value (e.g. a newly registered budget
  /// principal); same fail-closed validation as LabelAllowlist::AllowValue.
  TRIPRIV_SINK(label)
  Status AllowLabelValue(const std::string& key, const std::string& value);

  size_t shards() const { return shards_; }
  size_t num_metrics() const { return entries_.size(); }

  /// Deterministic merged view of every metric (see MetricsSnapshot).
  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    MetricKind kind;
    std::string name;
    std::string help;
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Validates name + labels and checks series uniqueness; registers the
  /// series key on success.
  Status AdmitSeries(const std::string& name, MetricKind kind,
                     LabelSet* labels);

  size_t shards_;
  LabelAllowlist allowlist_;
  std::vector<Entry> entries_;
  /// "name\x1f<k>=<v>\x1f..." of every registered series (dup detection).
  std::set<std::string> series_keys_;
  /// kind of each registered name (a name may not change kind).
  std::map<std::string, MetricKind> name_kinds_;
};

}  // namespace obs
}  // namespace tripriv
