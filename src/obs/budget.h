// Per-principal privacy-budget accounting over the three paper dimensions.
//
// The source paper organizes database privacy along three orthogonal
// dimensions — whose privacy is at stake:
//
//   respondent  the individuals whose records populate the table (SDC,
//               differential privacy protect them);
//   owner       the holder of the database as an asset (audit policies,
//               rule hiding protect them);
//   user        the querier whose interests must stay hidden (PIR
//               protects them).
//
// Epsilon spends are already durable facts: QueryService writes a WAL
// record before any degraded or aggregate answer is released. The
// accountant mirrors those spends into queryable gauges — spent, budget,
// and remaining per principal, each tagged with the principal's paper
// dimension — so dashboards see budget pressure without a WAL scan.
// The WAL stays the source of truth; the accountant is a read model.
//
// Principal names pass the same fail-closed label validation as every
// other label value (registering a principal admits its name into the
// allowlist), so a principal can never smuggle a data-shaped string into
// the export path.

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "core/annotations.h"
#include "util/status.h"

namespace tripriv {
namespace obs {

/// Whose privacy a spend draws down (the paper's three dimensions).
enum class PrivacyDimension : uint8_t { kRespondent, kOwner, kUser };

const char* PrivacyDimensionName(PrivacyDimension dimension);

/// Budget read-model over a MetricsRegistry; see file comment.
class PrivacyBudgetAccountant {
 public:
  /// `registry` must outlive the accountant.
  explicit PrivacyBudgetAccountant(MetricsRegistry* registry);

  /// Declares a principal with its paper dimension and total budget,
  /// admits its name as a `principal` label value, and registers its
  /// spent/budget/remaining gauges. Name validation is fail-closed
  /// (kInvalidArgument on data-shaped names, kAlreadyExists on re-use).
  TRIPRIV_SINK(label)
  Status RegisterPrincipal(const std::string& name,
                           PrivacyDimension dimension, double budget);

  /// Records `epsilon` spent by `name` (kNotFound for an unregistered
  /// principal — spends against unknown principals are refused, not
  /// auto-created). Gauges update immediately.
  Status RecordSpend(const std::string& name, double epsilon);

  /// Idempotent recovery entry point: raises `name`'s recorded spend to the
  /// ABSOLUTE WAL-recovered `total` — it never adds. A crashed service that
  /// recovers the same log twice (or re-attaches instruments after a
  /// restart) must leave the gauges exactly where one recovery put them;
  /// RecordSpend would double-charge on every replay. Spend-event counters
  /// are untouched: recovery re-reads facts, it does not create spends.
  Status SyncRecoveredSpend(const std::string& name, double total);

  /// Total recorded spend of `name` (0.0 when unknown).
  double spent(const std::string& name) const;
  /// Budget minus spend, clamped at 0 (0.0 when unknown).
  double remaining(const std::string& name) const;
  size_t num_principals() const { return principals_.size(); }

 private:
  struct Principal {
    PrivacyDimension dimension;
    double budget = 0.0;
    double spent = 0.0;
    uint64_t spend_events = 0;
    Gauge* spent_gauge = nullptr;
    Gauge* remaining_gauge = nullptr;
    Gauge* budget_gauge = nullptr;
    Counter* spend_events_counter = nullptr;
  };

  MetricsRegistry* registry_;
  std::map<std::string, Principal> principals_;
};

}  // namespace obs
}  // namespace tripriv
