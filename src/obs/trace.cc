#include "obs/trace.h"

namespace tripriv {
namespace obs {
namespace {

/// Span names the built-in instruments use; AllowSpanName extends this.
const char* const kDefaultSpanNames[] = {
    "submit",    "policy",        "wal_append", "admission",
    "primary",   "degraded",      "epsilon_charge",
    "pir_read",  "pir_batch",     "aggregate_count",
    "stat_batch", "anonymize",
};

bool ValidSpanName(const std::string& name) {
  if (name.empty() || name.size() > 32) return false;
  for (char c : name) {
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

TraceRecorder::TraceRecorder(SimClock* clock, size_t capacity)
    : clock_(clock), capacity_(capacity < 1 ? 1 : capacity) {
  TRIPRIV_CHECK(clock_ != nullptr);
  names_.emplace_back();  // id 0 = invalid sentinel
  for (const char* name : kDefaultSpanNames) {
    name_ids_.emplace(name, static_cast<uint32_t>(names_.size()));
    names_.emplace_back(name);
  }
}

Status TraceRecorder::AllowSpanName(const std::string& name) {
  if (!ValidSpanName(name)) {
    return Status::InvalidArgument(
        "span name is not a short [a-z0-9_] identifier");
  }
  if (name_ids_.count(name) == 0) {
    name_ids_.emplace(name, static_cast<uint32_t>(names_.size()));
    names_.push_back(name);
  }
  return Status::OK();
}

uint32_t TraceRecorder::SpanNameId(const std::string& name) const {
  auto it = name_ids_.find(name);
  return it == name_ids_.end() ? 0 : it->second;
}

uint64_t TraceRecorder::StartSpan(const std::string& name, uint64_t parent_id,
                                  uint64_t query_id) {
  return StartSpanById(SpanNameId(name), parent_id, query_id);
}

uint64_t TraceRecorder::StartSpanById(uint32_t name_id, uint64_t parent_id,
                                      uint64_t query_id) {
  if (name_id == 0 || name_id >= names_.size()) {
    ++rejected_names_;
    return 0;
  }
  TraceSpan span;
  span.id = next_id_++;
  span.parent_id = parent_id;
  span.name = names_[name_id];
  span.query_id = query_id;
  span.start_tick = clock_->now();
  span.end_tick = span.start_tick;
  if (spans_.size() < capacity_) {
    spans_.push_back(std::move(span));
  } else {
    spans_[head_] = std::move(span);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
  return next_id_ - 1;
}

void TraceRecorder::EndSpan(uint64_t id, StatusCode code) {
  if (id == 0) return;
  // Spans close shortly after they open; scan newest-first.
  for (size_t i = spans_.size(); i > 0; --i) {
    TraceSpan& span = spans_[(head_ + i - 1) % spans_.size()];
    if (span.id != id) continue;
    span.end_tick = clock_->now();
    span.status = StatusCodeToString(code);
    span.closed = true;
    return;
  }
  // Evicted by the ring bound: nothing to close (the drop is counted).
}

const TraceSpan& TraceRecorder::span(size_t i) const {
  TRIPRIV_CHECK_LT(i, spans_.size());
  if (spans_.size() < capacity_) return spans_[i];
  return spans_[(head_ + i) % capacity_];
}

}  // namespace obs
}  // namespace tripriv
