// Metrics and trace exporters: Prometheus text format and JSON.
//
// Exporters are pure string producers — library code in src/obs returns
// data and never prints (the no-sensitive-logging lint rule covers this
// directory), so only a caller outside the privacy libraries can decide to
// emit an export. Output is deterministic: samples arrive sorted from
// MetricsSnapshot, label order is fixed, doubles render via shortest
// round-trip (std::to_chars), and no timestamps or environment data are
// ever embedded — two identical workloads export byte-identical text at
// any thread count.
//
// Label values were validated against the fail-closed allowlist at
// registration, so nothing here needs sanitizing; the escaping functions
// exist for format correctness (and are exercised directly by tests), not
// as a privacy barrier.

#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tripriv {
namespace obs {

/// `\\`, `"`, and newline escaping for Prometheus label values.
std::string EscapePrometheusLabelValue(const std::string& value);

/// JSON string-body escaping (quotes, backslashes, control characters).
std::string EscapeJsonString(const std::string& value);

/// Shortest round-trip decimal rendering of `value` ("nan"/"inf" spelled
/// out, never locale-dependent).
std::string FormatDouble(double value);

/// Prometheus text exposition of a snapshot: # HELP / # TYPE headers once
/// per metric name, histograms as cumulative _bucket/_sum/_count series.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// JSON document {"metrics":[...]} with one entry per series; histograms
/// carry non-cumulative buckets plus count and sum.
std::string ToJson(const MetricsSnapshot& snapshot);

/// JSON document {"spans":[...],"dropped":n,"rejected_names":n}, spans
/// oldest first with parent/child links by id.
std::string TraceToJson(const TraceRecorder& trace);

}  // namespace obs
}  // namespace tripriv
