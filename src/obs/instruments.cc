#include "obs/instruments.h"

#include <utility>
#include <vector>

namespace tripriv {
namespace obs {

const char* TenantClassLabel(uint8_t cls) {
  // Stable allowlisted label values; see the kClass* indices. These are
  // service-tier constants, never rendered from request data.
  static const char* const kNames[kNumTenantClasses] = {
      "interactive", "batch", "analytics", "abusive", "unattributed"};
  return cls < kNumTenantClasses ? kNames[cls] : "unattributed";
}

#ifdef TRIPRIV_OBS_DISABLED

// Compiled-out build: hand back an inert bundle; every push/publish method
// already has an empty body, so no registration cost either.
Result<ServiceMetrics> ServiceMetrics::Create(MetricsRegistry* /*registry*/,
                                              TraceRecorder* trace,
                                              PrivacyBudgetAccountant*,
                                              ServiceMetricsOptions options) {
  ServiceMetrics metrics;
  metrics.options_ = std::move(options);
  metrics.trace_ = trace;
  return metrics;
}

Result<EpochMetrics> EpochMetrics::Create(MetricsRegistry* /*registry*/) {
  return EpochMetrics();
}

Result<TrafficMetrics> TrafficMetrics::Create(MetricsRegistry* /*registry*/) {
  return TrafficMetrics();
}

Result<AttackMetrics> AttackMetrics::Create(MetricsRegistry* /*registry*/) {
  return AttackMetrics();
}

#else

namespace {
const char* const kShedReasonNames[kNumShedReasons] = {"queue_full",
                                                       "overload", "deadline"};
}  // namespace

Result<ServiceMetrics> ServiceMetrics::Create(MetricsRegistry* registry,
                                              TraceRecorder* trace,
                                              PrivacyBudgetAccountant* accountant,
                                              ServiceMetricsOptions options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("ServiceMetrics requires a registry");
  }
  ServiceMetrics metrics;
  metrics.options_ = std::move(options);
  metrics.trace_ = trace;
  metrics.accountant_ = accountant;

  if (accountant != nullptr) {
    // Both epsilon principals spend respondent privacy (epsilon is a DP
    // quantity); kAlreadyExists means the caller pre-registered them with
    // its own budgets, which is fine.
    Status degraded = accountant->RegisterPrincipal(
        metrics.options_.degraded_principal, PrivacyDimension::kRespondent,
        metrics.options_.degraded_budget);
    if (!degraded.ok() && degraded.code() != StatusCode::kAlreadyExists) {
      return degraded;
    }
    Status aggregate = accountant->RegisterPrincipal(
        metrics.options_.aggregate_principal, PrivacyDimension::kRespondent,
        metrics.options_.aggregate_budget);
    if (!aggregate.ok() && aggregate.code() != StatusCode::kAlreadyExists) {
      return aggregate;
    }
  }

  static const char* kTierValues[3] = {"protected", "dp_degraded", "refused"};
  for (int t = 0; t < 3; ++t) {
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.tier_counters_[t],
        registry->RegisterCounter("tripriv_service_answers_total",
                                  "Answers released, by degradation tier",
                                  {{"tier", kTierValues[t]}}));
  }
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.shed_,
      registry->RegisterCounter("tripriv_service_shed_total",
                                "Queries shed by admission control"));
  // The shed counter alone says the front door closed; the class label says
  // on whom — which is what makes shed rates attributable without ever
  // labeling a principal.
  for (uint8_t c = 0; c < kNumTenantClasses; ++c) {
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.shed_by_class_[c],
        registry->RegisterCounter("tripriv_service_shed_by_class_total",
                                  "Queries shed by admission control, "
                                  "by tenant class",
                                  {{"class", TenantClassLabel(c)}}));
  }
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.policy_refusals_,
      registry->RegisterCounter("tripriv_service_policy_refusals_total",
                                "Queries refused by the owner policy gate",
                                {{"dimension", "owner"}}));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.crashes_,
      registry->RegisterCounter("tripriv_service_crashes_total",
                                "Simulated crash/recovery cycles"));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.wal_appends_,
      registry->RegisterCounter("tripriv_wal_appends_total",
                                "Audit WAL records made durable"));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.wal_append_failures_,
      registry->RegisterCounter("tripriv_wal_append_failures_total",
                                "Audit WAL appends that failed"));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.wal_bytes_,
      registry->RegisterCounter("tripriv_wal_bytes_total",
                                "Framed bytes appended to the audit WAL"));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.wal_fsync_ticks_,
      registry->RegisterHistogram(
          "tripriv_wal_fsync_ticks",
          "Modeled fsync latency per WAL append, in sim ticks",
          {1, 2, 4, 8, 16, 32, 64, 128, 256}));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.stat_batch_size_,
      registry->RegisterHistogram("tripriv_stat_batch_size",
                                  "Queries per statistical batch",
                                  {1, 2, 4, 8, 16, 32, 64, 128}));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.pir_batch_size_,
      registry->RegisterHistogram("tripriv_pir_batch_size",
                                  "Record fetches per PIR batch",
                                  {1, 2, 4, 8, 16, 32, 64, 128},
                                  {{"dimension", "user"}}));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.pir_reads_,
      registry->RegisterCounter("tripriv_pir_reads_total",
                                "Private record fetches served",
                                {{"dimension", "user"}}));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.queue_depth_,
      registry->RegisterGauge("tripriv_service_queue_depth",
                              "Admission-control queue depth at publish"));
  // The service's two breakers: the exact primary path and the epsilon-DP
  // degraded path.
  static const char* kBackends[2] = {"primary", "dp"};
  for (int b = 0; b < 2; ++b) {
    const LabelSet labels = {{"backend", kBackends[b]}};
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.breaker_state_[b],
        registry->RegisterGauge("tripriv_breaker_state",
                                "Breaker state: 0 closed, 1 open, 2 half-open",
                                labels));
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.breaker_opens_[b],
        registry->RegisterGauge("tripriv_breaker_opens",
                                "Times this breaker has tripped open",
                                labels));
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.breaker_rejections_[b],
        registry->RegisterGauge("tripriv_breaker_rejections",
                                "Calls rejected while the breaker was open",
                                labels));
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.breaker_probes_[b],
        registry->RegisterGauge("tripriv_breaker_half_open_probes",
                                "Probe calls admitted while half-open",
                                labels));
  }
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.pir_bytes_xored_,
      registry->RegisterGauge("tripriv_pir_bytes_xored",
                              "Bytes XORed by PIR servers answering queries",
                              {{"dimension", "user"}}));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.pir_failovers_,
      registry->RegisterGauge("tripriv_pir_failover_replays",
                              "PIR queries replayed on a fallback server pair",
                              {{"dimension", "user"}}));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.pir_corrupt_,
      registry->RegisterGauge("tripriv_pir_corrupt_answers",
                              "PIR answers rejected as corrupt",
                              {{"dimension", "user"}}));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.pir_queries_,
      registry->RegisterGauge("tripriv_pir_queries_answered",
                              "PIR queries answered across server pairs",
                              {{"dimension", "user"}}));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.pir_upload_bits_,
      registry->RegisterGauge("tripriv_pir_upload_bits",
                              "Query bits shipped to recursive PIR replicas",
                              {{"dimension", "user"}}));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.pir_expanded_cells_,
      registry->RegisterGauge(
          "tripriv_pir_expanded_cells",
          "Hypercube cells expanded server-side from seeds and axis bitmaps",
          {{"dimension", "user"}}));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.pir_preprocess_bytes_,
      registry->RegisterGauge(
          "tripriv_pir_preprocess_bytes",
          "Bytes pinned by preprocessed PIR parity layouts",
          {{"dimension", "user"}}));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.pir_sessions_,
      registry->RegisterGauge(
          "tripriv_pir_sessions",
          "Live recursive-PIR expansion sessions across tenant classes",
          {{"dimension", "user"}}));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.channel_retransmissions_,
      registry->RegisterGauge("tripriv_channel_retransmissions",
                              "SMC channel frames retransmitted"));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.channel_timeouts_,
      registry->RegisterGauge("tripriv_channel_receive_timeouts",
                              "SMC channel receives that hit their deadline"));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.channel_duplicates_,
      registry->RegisterGauge("tripriv_channel_duplicates",
                              "Duplicate frames discarded by the channel"));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.channel_checksum_failures_,
      registry->RegisterGauge("tripriv_channel_checksum_failures",
                              "Frames dropped for checksum mismatch"));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.pool_barrier_waits_,
      registry->RegisterGauge("tripriv_pool_barrier_waits",
                              "ParallelFor barrier waits (one per call)"));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.pool_items_,
      registry->RegisterGauge("tripriv_pool_items",
                              "Items dispatched across all ParallelFor calls"));
  if (metrics.options_.include_thread_variant) {
    // These depend on the worker count by construction; registering them is
    // an explicit opt out of the thread-count-invariant snapshot.
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.pool_shards_,
        registry->RegisterGauge("tripriv_pool_shards",
                                "Shards executed (varies with thread count)"));
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.pool_threads_,
        registry->RegisterGauge("tripriv_pool_threads",
                                "Worker threads (varies with configuration)"));
  }
  return metrics;
}

Result<EpochMetrics> EpochMetrics::Create(MetricsRegistry* registry) {
  if (registry == nullptr) {
    return Status::InvalidArgument("EpochMetrics requires a registry");
  }
  EpochMetrics metrics;

  // Mutation kinds ride the existing `method` label key; flip outcomes ride
  // `result`. Both value sets are constants admitted here, never rendered
  // from data.
  static const char* kMutationValues[3] = {"insert", "delete", "update"};
  for (int m = 0; m < 3; ++m) {
    Status allowed = registry->AllowLabelValue("method", kMutationValues[m]);
    if (!allowed.ok() && allowed.code() != StatusCode::kAlreadyExists) {
      return allowed;
    }
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.mutation_counters_[m],
        registry->RegisterCounter("tripriv_epoch_mutations_total",
                                  "Mutations admitted to the pending buffer",
                                  {{"method", kMutationValues[m]}}));
  }
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.mutations_shed_,
      registry->RegisterCounter("tripriv_epoch_mutations_shed_total",
                                "Mutations shed by write admission control"));
  static const char* kFlipResults[3] = {"committed", "refused_privacy",
                                        "refused_io"};
  Counter** flip_counters[3] = {&metrics.flips_committed_,
                                &metrics.flips_refused_privacy_,
                                &metrics.flips_refused_io_};
  for (int r = 0; r < 3; ++r) {
    Status allowed = registry->AllowLabelValue("result", kFlipResults[r]);
    if (!allowed.ok() && allowed.code() != StatusCode::kAlreadyExists) {
      return allowed;
    }
    TRIPRIV_ASSIGN_OR_RETURN(
        *flip_counters[r],
        registry->RegisterCounter("tripriv_epoch_flips_total",
                                  "Epoch flips by outcome",
                                  {{"result", kFlipResults[r]}}));
  }
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.rows_reclustered_,
      registry->RegisterCounter(
          "tripriv_epoch_rows_reclustered_total",
          "Rows that went through the dirty-group recluster pool"));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.flip_latency_ticks_,
      registry->RegisterHistogram(
          "tripriv_epoch_flip_latency_ticks",
          "Modeled flip latency (sim ticks: base + per reclustered row)",
          {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.current_epoch_,
      registry->RegisterGauge("tripriv_epoch_current",
                              "Epoch currently serving reads"));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.live_epochs_,
      registry->RegisterGauge("tripriv_epoch_live",
                              "Live epochs (current + pinned retirees)"));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.peak_live_epochs_,
      registry->RegisterGauge("tripriv_epoch_live_peak",
                              "High-water mark of live epochs"));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.pending_mutations_,
      registry->RegisterGauge("tripriv_epoch_pending_mutations",
                              "Mutations waiting for the next flip"));
  TRIPRIV_ASSIGN_OR_RETURN(
      metrics.store_images_,
      registry->RegisterGauge("tripriv_epoch_store_images",
                              "Epoch images held by the durable store"));
  return metrics;
}

Result<TrafficMetrics> TrafficMetrics::Create(MetricsRegistry* registry) {
  if (registry == nullptr) {
    return Status::InvalidArgument("TrafficMetrics requires a registry");
  }
  TrafficMetrics metrics;
  static const char* kTierValues[3] = {"protected", "dp_degraded", "refused"};
  // Latency bounds in sim ticks: powers of two out to 2^16, so the SLO
  // reader resolves p50/p99 to within a factor of two across four decades.
  const std::vector<uint64_t> kLatencyBounds = {
      1,   2,    4,    8,    16,   32,    64,    128,  256,
      512, 1024, 2048, 4096, 8192, 16384, 32768, 65536};
  for (uint8_t c = 0; c < kNumTenantClasses; ++c) {
    const LabelSet cls_label = {{"class", TenantClassLabel(c)}};
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.arrivals_[c],
        registry->RegisterCounter("tripriv_traffic_arrivals_total",
                                  "Requests generated by the traffic profile,"
                                  " by tenant class",
                                  cls_label));
    for (uint8_t r = 0; r < kNumShedReasons; ++r) {
      TRIPRIV_ASSIGN_OR_RETURN(
          metrics.shed_[c][r],
          registry->RegisterCounter(
              "tripriv_traffic_shed_total",
              "Requests refused by the fair-queueing scheduler",
              {{"class", TenantClassLabel(c)}, {"reason", kShedReasonNames[r]}}));
    }
    for (uint8_t t = 0; t < 3; ++t) {
      TRIPRIV_ASSIGN_OR_RETURN(
          metrics.answers_[c][t],
          registry->RegisterCounter(
              "tripriv_traffic_answers_total",
              "Scheduler-dispatched answers by class and degradation tier",
              {{"class", TenantClassLabel(c)}, {"tier", kTierValues[t]}}));
    }
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.latency_[c],
        registry->RegisterHistogram(
            "tripriv_traffic_latency_ticks",
            "Queue-to-completion latency in sim ticks, by tenant class",
            kLatencyBounds, cls_label));
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.backlog_[c],
        registry->RegisterGauge("tripriv_traffic_backlog",
                                "Queued requests at publish, by tenant class",
                                cls_label));
  }
  return metrics;
}

Result<AttackMetrics> AttackMetrics::Create(MetricsRegistry* registry) {
  if (registry == nullptr) {
    return Status::InvalidArgument("AttackMetrics requires a registry");
  }
  static const char* const kDimValues[kNumDimensions] = {"respondent", "owner",
                                                         "user"};
  AttackMetrics metrics;
  for (uint8_t d = 0; d < kNumDimensions; ++d) {
    const LabelSet dim_label = {{"dimension", kDimValues[d]}};
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.outcomes_[d],
        registry->RegisterCounter("tripriv_attack_outcomes_total",
                                  "Attack outcomes recorded, by privacy "
                                  "dimension",
                                  dim_label));
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.success_rate_[d],
        registry->RegisterGauge("tripriv_attack_success_rate",
                                "Most recent attack success rate, by privacy "
                                "dimension",
                                dim_label));
    TRIPRIV_ASSIGN_OR_RETURN(
        metrics.equivocation_bits_[d],
        registry->RegisterGauge("tripriv_attack_equivocation_bits",
                                "Most recent attacker residual uncertainty in "
                                "bits, by privacy dimension",
                                dim_label));
  }
  return metrics;
}

#endif  // TRIPRIV_OBS_DISABLED

}  // namespace obs
}  // namespace tripriv
