// SLO gate over le-bucket latency histograms.
//
// The traffic simulator pushes queue-to-completion latency into per-class
// le-histograms (obs::TrafficMetrics); this reader turns a MetricsSnapshot
// back into per-class p50/p99 estimates and verdicts against declared
// targets. Quantiles resolve to the *upper bound* of the first bucket whose
// cumulative count covers the quantile — a conservative estimate (never
// under-reports latency) that is an exact integer function of the bucket
// counts, so gate verdicts are deterministic at any thread count.
//
// The gate is how SLOs become enforceable: bench_traffic_slo exits nonzero
// when a run regresses past its targets, and the fairness-isolation test
// asserts the well-behaved classes' verdicts survive an adversarial flood.
// Reports render class labels and tick numbers only — a principal id never
// reaches this surface (the label allowlist already made that structural).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/annotations.h"
#include "obs/metrics.h"

namespace tripriv {
namespace obs {

/// Latency targets for one tenant class, in sim ticks.
struct SloTarget {
  /// Allowlisted class label ("interactive", "batch", ...).
  std::string class_name;
  uint64_t p50_max_ticks = 0;
  uint64_t p99_max_ticks = 0;
};

/// Measured quantiles and verdict for one class.
struct SloClassResult {
  std::string class_name;
  /// Observations behind the estimate (0 = no traffic; passes vacuously).
  uint64_t count = 0;
  /// Conservative (bucket-upper-bound) estimates; UINT64_MAX means the
  /// quantile fell in the +inf bucket.
  uint64_t p50_ticks = 0;
  uint64_t p99_ticks = 0;
  bool pass = true;
};

/// Whole-gate outcome: per-class results plus the conjunction.
struct SloReport {
  std::vector<SloClassResult> classes;
  bool ok = true;
};

/// Reads per-class quantiles out of snapshots; see file comment.
class SloGate {
 public:
  /// Reads histograms named `metric_name` keyed by label `label_key`
  /// (defaults match obs::TrafficMetrics).
  explicit SloGate(std::string metric_name = "tripriv_traffic_latency_ticks",
                   std::string label_key = "class");

  /// Evaluates every target against `snapshot`. A target whose class has no
  /// histogram series in the snapshot is an error (the gate must never pass
  /// because the instrument it gates on was not wired); a series with zero
  /// observations passes vacuously.
  Result<SloReport> Evaluate(const MetricsSnapshot& snapshot,
                             const std::vector<SloTarget>& targets) const;

  /// Conservative quantile: the upper bound of the first bucket whose
  /// cumulative count reaches ceil(q * count); UINT64_MAX for the +inf
  /// bucket, 0 when the histogram is empty. q in (0, 1].
  static uint64_t QuantileUpperBound(const HistogramData& histogram, double q);

 private:
  std::string metric_name_;
  std::string label_key_;
};

/// Deterministic text rendering of a report (class labels and tick numbers
/// only) — what bench_traffic_slo prints and CI archives.
TRIPRIV_SINK(export)
std::string RenderSloReport(const SloReport& report);

}  // namespace obs
}  // namespace tripriv
