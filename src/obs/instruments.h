// Pre-registered instrument handles for the serving stack.
//
// ServiceMetrics bundles a MetricsRegistry, an optional TraceRecorder, and
// an optional PrivacyBudgetAccountant behind an API of primitives — tier
// indices, byte counts, tick values — so the layers it observes
// (src/service, src/pir, src/smc, util/thread_pool) never depend on obs
// types beyond this one header, and obs never depends back on them (no
// cycle). Two flow directions:
//
//   push     event-driven, from the serial serving path: OnAnswer, OnShed,
//            OnWalAppend (fsync-latency histogram), batch-size histograms,
//            epsilon spends;
//   publish  sampled, from an explicit publish step: component self-
//            counters (breaker state, queue depth, PIR failovers, channel
//            retransmits, pool barrier waits) copied into gauges.
//
// Determinism: every always-on series is a pure function of the workload.
// Metrics whose value necessarily depends on the worker count (shards
// dispatched, thread count) are registered ONLY when
// ServiceMetricsOptions::include_thread_variant is set — the byte-identical
// snapshot contract across 0/1/2/8 threads holds for the default set.
//
// Building with -DTRIPRIV_OBS=OFF defines TRIPRIV_OBS_DISABLED, which
// compiles every push/publish method to an empty inline body — the
// reference build bench_obs_overhead compares the always-on cost against.

#pragma once

#include <cstdint>
#include <string>

#include "obs/budget.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace tripriv {
namespace obs {

#ifdef TRIPRIV_OBS_DISABLED
#define TRIPRIV_OBS_BODY(...) {}
// Compiled-out bodies leave every push/publish parameter unused by design;
// the suppression is scoped to this header (popped at the bottom) so the
// warning stays live everywhere else.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wunused-parameter"
#else
#define TRIPRIV_OBS_BODY(...) { __VA_ARGS__ }
#endif

/// Answer tiers as stable indices (mirrors service AnswerTier).
inline constexpr uint8_t kTierProtected = 0;
inline constexpr uint8_t kTierDpDegraded = 1;
inline constexpr uint8_t kTierRefused = 2;

/// Breaker states as stable indices (mirrors service BreakerState).
inline constexpr uint8_t kBreakerClosed = 0;
inline constexpr uint8_t kBreakerOpen = 1;
inline constexpr uint8_t kBreakerHalfOpen = 2;

/// Tenant classes as stable indices. A class is a coarse, allowlisted
/// service tier — NEVER a principal id: attributing sheds and latency by
/// class keeps overload observable without the metrics surface learning who
/// asked (the user-privacy dimension). kClassUnattributed covers callers
/// that predate the traffic scheduler (plain Submit with no class set).
inline constexpr uint8_t kClassInteractive = 0;
inline constexpr uint8_t kClassBatch = 1;
inline constexpr uint8_t kClassAnalytics = 2;
inline constexpr uint8_t kClassAbusive = 3;
inline constexpr uint8_t kClassUnattributed = 4;
inline constexpr uint8_t kNumTenantClasses = 5;

/// Allowlisted label value of one tenant class ("interactive", ...).
const char* TenantClassLabel(uint8_t cls);

/// Shed reasons as stable indices (why the traffic scheduler refused).
inline constexpr uint8_t kShedQueueFull = 0;
inline constexpr uint8_t kShedOverload = 1;
inline constexpr uint8_t kShedDeadline = 2;
inline constexpr uint8_t kNumShedReasons = 3;

struct ServiceMetricsOptions {
  /// Principal charged by the degraded (epsilon-DP Laplace) path.
  std::string degraded_principal = "degraded_path";
  /// Principal charged by the aggregate-PIR DP-count path.
  std::string aggregate_principal = "aggregate_path";
  /// Budgets for the two principals (mirrors QueryServiceConfig's
  /// epsilon_budget; the WAL remains the enforcement point).
  double degraded_budget = 8.0;
  double aggregate_budget = 8.0;
  /// Registers thread-variant series (pool shards, worker count) too —
  /// leave off where the snapshot must be thread-count-invariant.
  bool include_thread_variant = false;
};

/// Handle bundle; see file comment. Create registers every series up
/// front, so the hot path only touches preallocated slots.
class ServiceMetrics {
 public:
  /// `registry` must outlive the bundle; `trace` and `accountant` may be
  /// null (spans / budget mirroring are then skipped).
  static Result<ServiceMetrics> Create(MetricsRegistry* registry,
                                       TraceRecorder* trace,
                                       PrivacyBudgetAccountant* accountant,
                                       ServiceMetricsOptions options = {});

  // --- push API (serial serving path) ---------------------------------

  void OnAnswer(uint8_t tier) TRIPRIV_OBS_BODY(
      if (tier <= kTierRefused) tier_counters_[tier]->Increment();)
  /// One admission-control shed, attributed to a tenant class so per-class
  /// shed *rates* are observable. `cls` is a kClass* index (an allowlisted
  /// label, never a principal id); out-of-range falls back to unattributed.
  void OnShed(uint8_t cls) TRIPRIV_OBS_BODY(
      shed_->Increment();
      shed_by_class_[cls < kNumTenantClasses ? cls : kClassUnattributed]
          ->Increment();)
  /// Class-less legacy path: counts against kClassUnattributed.
  void OnShed() { OnShed(kClassUnattributed); }
  void OnPolicyRefusal() TRIPRIV_OBS_BODY(policy_refusals_->Increment();)
  void OnCrash() TRIPRIV_OBS_BODY(crashes_->Increment();)
  /// One WAL append attempt: `bytes` framed, `ok` durable. The fsync-tick
  /// histogram uses the deterministic device model in WalFsyncTicks.
  void OnWalAppend(uint64_t bytes, bool ok) TRIPRIV_OBS_BODY(
      if (ok) {
        wal_appends_->Increment();
        wal_bytes_->Add(bytes);
        wal_fsync_ticks_->Observe(WalFsyncTicks(bytes));
      } else {
        wal_append_failures_->Increment();
      })
  void OnStatBatch(uint64_t size)
      TRIPRIV_OBS_BODY(stat_batch_size_->Observe(size);)
  void OnPirBatch(uint64_t size)
      TRIPRIV_OBS_BODY(pir_batch_size_->Observe(size);)
  void OnPirRead() TRIPRIV_OBS_BODY(pir_reads_->Increment();)
  /// Mirrors one durable epsilon spend into the accountant's gauges.
  void OnEpsilonSpend(bool aggregate_path, double epsilon) TRIPRIV_OBS_BODY(
      if (accountant_ != nullptr) {
        IgnoreError(accountant_->RecordSpend(
            aggregate_path ? options_.aggregate_principal
                           : options_.degraded_principal,
            epsilon));
      })
  /// Seeds the degraded principal's gauges from WAL-recovered spend.
  /// `epsilon` is the ABSOLUTE recovered total, and the sync is idempotent:
  /// recovering the same WAL twice (crash, re-Create, re-attach to the same
  /// accountant) leaves the gauges where one recovery put them instead of
  /// double-charging the spend.
  void OnEpsilonRecovered(double epsilon) TRIPRIV_OBS_BODY(
      if (accountant_ != nullptr && epsilon > 0.0) {
        IgnoreError(accountant_->SyncRecoveredSpend(
            options_.degraded_principal, epsilon));
      })

  // --- publish API (sampled component counters -> gauges) -------------

  void PublishQueueDepth(uint64_t depth)
      TRIPRIV_OBS_BODY(queue_depth_->Set(static_cast<double>(depth));)
  void PublishBreaker(bool primary, uint8_t state, uint64_t opens,
                      uint64_t rejections, uint64_t half_open_probes)
      TRIPRIV_OBS_BODY(const size_t i = primary ? 0 : 1;
                       breaker_state_[i]->Set(static_cast<double>(state));
                       breaker_opens_[i]->Set(static_cast<double>(opens));
                       breaker_rejections_[i]->Set(
                           static_cast<double>(rejections));
                       breaker_probes_[i]->Set(
                           static_cast<double>(half_open_probes));)
  void PublishPir(uint64_t bytes_xored, uint64_t failovers,
                  uint64_t corrupt_answers, uint64_t queries_answered)
      TRIPRIV_OBS_BODY(
          pir_bytes_xored_->Set(static_cast<double>(bytes_xored));
          pir_failovers_->Set(static_cast<double>(failovers));
          pir_corrupt_->Set(static_cast<double>(corrupt_answers));
          pir_queries_->Set(static_cast<double>(queries_answered));)
  /// Recursive-PIR transport series: query upload shipped, hypercube cells
  /// expanded server-side, bytes pinned by preprocessed parity layouts,
  /// and live expansion sessions (all aggregates over allowlisted tenant
  /// classes — never per-principal).
  void PublishPirTransport(uint64_t upload_bits, uint64_t expanded_cells,
                           uint64_t preprocess_bytes, uint64_t sessions)
      TRIPRIV_OBS_BODY(
          pir_upload_bits_->Set(static_cast<double>(upload_bits));
          pir_expanded_cells_->Set(static_cast<double>(expanded_cells));
          pir_preprocess_bytes_->Set(static_cast<double>(preprocess_bytes));
          pir_sessions_->Set(static_cast<double>(sessions));)
  void PublishChannel(uint64_t retransmissions, uint64_t timeouts,
                      uint64_t duplicates, uint64_t checksum_failures)
      TRIPRIV_OBS_BODY(
          channel_retransmissions_->Set(static_cast<double>(retransmissions));
          channel_timeouts_->Set(static_cast<double>(timeouts));
          channel_duplicates_->Set(static_cast<double>(duplicates));
          channel_checksum_failures_->Set(
              static_cast<double>(checksum_failures));)
  /// Thread-count-invariant pool counters (one barrier wait per
  /// ParallelFor; items = sum of n across calls).
  void PublishPool(uint64_t barrier_waits, uint64_t items)
      TRIPRIV_OBS_BODY(
          pool_barrier_waits_->Set(static_cast<double>(barrier_waits));
          pool_items_->Set(static_cast<double>(items));)
  /// Thread-VARIANT pool counters; no-op unless include_thread_variant.
  void PublishPoolThreadVariant(uint64_t shards, uint64_t threads)
      TRIPRIV_OBS_BODY(if (pool_shards_ != nullptr) {
        pool_shards_->Set(static_cast<double>(shards));
        pool_threads_->Set(static_cast<double>(threads));
      })

  /// Deterministic fsync-latency model of the simulated WAL device: one
  /// base tick plus one tick per 64 framed bytes. Accounted, not charged —
  /// the request clock is untouched, so attaching instruments never
  /// changes serving behaviour.
  static uint64_t WalFsyncTicks(uint64_t bytes) { return 1 + bytes / 64; }

  /// The attached recorder, or null when instruments are compiled out —
  /// span recording disappears behind the same switch as metric pushes.
  TraceRecorder* trace() const {
#ifdef TRIPRIV_OBS_DISABLED
    return nullptr;
#else
    return trace_;
#endif
  }
  PrivacyBudgetAccountant* accountant() const { return accountant_; }
  const ServiceMetricsOptions& options() const { return options_; }

 private:
  ServiceMetrics() = default;

  ServiceMetricsOptions options_;
  TraceRecorder* trace_ = nullptr;
  PrivacyBudgetAccountant* accountant_ = nullptr;

  Counter* tier_counters_[3] = {nullptr, nullptr, nullptr};
  Counter* shed_ = nullptr;
  Counter* shed_by_class_[kNumTenantClasses] = {nullptr, nullptr, nullptr,
                                                nullptr, nullptr};
  Counter* policy_refusals_ = nullptr;
  Counter* crashes_ = nullptr;
  Counter* wal_appends_ = nullptr;
  Counter* wal_append_failures_ = nullptr;
  Counter* wal_bytes_ = nullptr;
  Histogram* wal_fsync_ticks_ = nullptr;
  Histogram* stat_batch_size_ = nullptr;
  Histogram* pir_batch_size_ = nullptr;
  Counter* pir_reads_ = nullptr;
  Gauge* queue_depth_ = nullptr;
  Gauge* breaker_state_[2] = {nullptr, nullptr};
  Gauge* breaker_opens_[2] = {nullptr, nullptr};
  Gauge* breaker_rejections_[2] = {nullptr, nullptr};
  Gauge* breaker_probes_[2] = {nullptr, nullptr};
  Gauge* pir_bytes_xored_ = nullptr;
  Gauge* pir_failovers_ = nullptr;
  Gauge* pir_corrupt_ = nullptr;
  Gauge* pir_queries_ = nullptr;
  Gauge* pir_upload_bits_ = nullptr;
  Gauge* pir_expanded_cells_ = nullptr;
  Gauge* pir_preprocess_bytes_ = nullptr;
  Gauge* pir_sessions_ = nullptr;
  Gauge* channel_retransmissions_ = nullptr;
  Gauge* channel_timeouts_ = nullptr;
  Gauge* channel_duplicates_ = nullptr;
  Gauge* channel_checksum_failures_ = nullptr;
  Gauge* pool_barrier_waits_ = nullptr;
  Gauge* pool_items_ = nullptr;
  Gauge* pool_shards_ = nullptr;   // thread-variant, may stay null
  Gauge* pool_threads_ = nullptr;  // thread-variant, may stay null
};

/// Stable indices for mutation kinds (mirrors table MutationKind).
inline constexpr uint8_t kMutationInsert = 0;
inline constexpr uint8_t kMutationDelete = 1;
inline constexpr uint8_t kMutationUpdate = 2;

/// Handle bundle for the epoch-versioned mutable database
/// (service/epoch_service.h): epoch gauges, flip-latency histograms, and
/// refused-flip counters. Same discipline as ServiceMetrics — push calls
/// come from the serial flip path, publish calls from an explicit publish
/// step, every series is a pure function of the workload (flip latency is
/// SimClock ticks from the deterministic cost model, so snapshots stay
/// byte-identical at any thread count), and -DTRIPRIV_OBS=OFF compiles
/// every body out.
class EpochMetrics {
 public:
  /// `registry` must outlive the bundle.
  static Result<EpochMetrics> Create(MetricsRegistry* registry);

  // --- push API (serial flip / write-admission path) -------------------

  void OnMutationAdmitted(uint8_t kind) TRIPRIV_OBS_BODY(
      if (kind <= kMutationUpdate) mutation_counters_[kind]->Increment();)
  void OnMutationShed() TRIPRIV_OBS_BODY(mutations_shed_->Increment();)
  void OnFlipCommitted(uint64_t latency_ticks, uint64_t rows_reclustered)
      TRIPRIV_OBS_BODY(flips_committed_->Increment();
                       flip_latency_ticks_->Observe(latency_ticks);
                       rows_reclustered_->Add(rows_reclustered);)
  /// A refused flip: `privacy_gate` distinguishes the fail-closed k-gate
  /// from store/WAL faults and invalid batches.
  void OnFlipRefused(bool privacy_gate) TRIPRIV_OBS_BODY(
      (privacy_gate ? flips_refused_privacy_ : flips_refused_io_)
          ->Increment();)

  // --- publish API (sampled epoch state -> gauges) ---------------------

  void PublishEpochState(uint64_t epoch, uint64_t live_epochs,
                         uint64_t peak_live_epochs,
                         uint64_t pending_mutations, uint64_t store_images)
      TRIPRIV_OBS_BODY(
          current_epoch_->Set(static_cast<double>(epoch));
          live_epochs_->Set(static_cast<double>(live_epochs));
          peak_live_epochs_->Set(static_cast<double>(peak_live_epochs));
          pending_mutations_->Set(static_cast<double>(pending_mutations));
          store_images_->Set(static_cast<double>(store_images));)

 private:
  EpochMetrics() = default;

  Counter* mutation_counters_[3] = {nullptr, nullptr, nullptr};
  Counter* mutations_shed_ = nullptr;
  Counter* flips_committed_ = nullptr;
  Counter* flips_refused_privacy_ = nullptr;
  Counter* flips_refused_io_ = nullptr;
  Counter* rows_reclustered_ = nullptr;
  Histogram* flip_latency_ticks_ = nullptr;
  Gauge* current_epoch_ = nullptr;
  Gauge* live_epochs_ = nullptr;
  Gauge* peak_live_epochs_ = nullptr;
  Gauge* pending_mutations_ = nullptr;
  Gauge* store_images_ = nullptr;
};

/// Handle bundle for the traffic scheduler (service/traffic/): per-class
/// arrival/answer/shed counters, the per-class latency le-histograms the
/// SloGate reads p50/p99 from, and backlog gauges. Same discipline as the
/// other bundles — push calls come from the serial scheduler loop, publish
/// calls from an explicit publish step, every label is a class or reason
/// constant (never a principal id), and -DTRIPRIV_OBS=OFF compiles every
/// body out. Latency values are SimClock ticks, so snapshots stay
/// byte-identical at any thread count.
class TrafficMetrics {
 public:
  /// `registry` must outlive the bundle.
  static Result<TrafficMetrics> Create(MetricsRegistry* registry);

  // --- push API (serial scheduler loop) --------------------------------

  void OnArrival(uint8_t cls) TRIPRIV_OBS_BODY(
      if (cls < kNumTenantClasses) arrivals_[cls]->Increment();)
  /// One scheduler-side shed: `reason` is a kShed* index.
  void OnShed(uint8_t cls, uint8_t reason) TRIPRIV_OBS_BODY(
      if (cls < kNumTenantClasses && reason < kNumShedReasons)
          shed_[cls][reason]->Increment();)
  /// One released answer by degradation tier (kTier* index).
  void OnAnswer(uint8_t cls, uint8_t tier) TRIPRIV_OBS_BODY(
      if (cls < kNumTenantClasses && tier <= kTierRefused)
          answers_[cls][tier]->Increment();)
  /// Queue-to-completion latency of one served request, in sim ticks.
  void OnLatency(uint8_t cls, uint64_t ticks) TRIPRIV_OBS_BODY(
      if (cls < kNumTenantClasses) latency_[cls]->Observe(ticks);)

  // --- publish API (sampled scheduler state -> gauges) -----------------

  void PublishBacklog(uint8_t cls, uint64_t depth) TRIPRIV_OBS_BODY(
      if (cls < kNumTenantClasses)
          backlog_[cls]->Set(static_cast<double>(depth));)

 private:
  TrafficMetrics() = default;

  Counter* arrivals_[kNumTenantClasses] = {};
  Counter* shed_[kNumTenantClasses][kNumShedReasons] = {};
  Counter* answers_[kNumTenantClasses][3] = {};
  Histogram* latency_[kNumTenantClasses] = {};
  Gauge* backlog_[kNumTenantClasses] = {};
};

/// Privacy dimensions as stable indices (mirrors core Dimension; obs stays
/// below core in the link order, so the enum is not shared).
inline constexpr uint8_t kDimRespondent = 0;
inline constexpr uint8_t kDimOwner = 1;
inline constexpr uint8_t kDimUser = 2;
inline constexpr uint8_t kNumDimensions = 3;

/// Handle bundle for the adversary harness (src/attack/): outcome counters
/// and the latest success-rate / equivocation gauges, labeled by privacy
/// dimension. Attack outcomes are aggregates over a whole attack run —
/// success rates, bit counts — never the recovered records themselves, so
/// the series stay inside the label allowlist by construction. Same
/// discipline as the other bundles: push calls come from the serial
/// attack-suite loop only (gauges are serial-only), and -DTRIPRIV_OBS=OFF
/// compiles every body out.
class AttackMetrics {
 public:
  /// `registry` must outlive the bundle.
  static Result<AttackMetrics> Create(MetricsRegistry* registry);

  // --- push API (serial attack-suite loop) -----------------------------

  /// One finished attack: `dim` is a kDim* index; the gauges keep the most
  /// recent outcome per dimension (the scoreboard holds the full history).
  void OnOutcome(uint8_t dim, double success_rate, double equivocation_bits)
      TRIPRIV_OBS_BODY(if (dim < kNumDimensions) {
        outcomes_[dim]->Increment();
        success_rate_[dim]->Set(success_rate);
        equivocation_bits_[dim]->Set(equivocation_bits);
      })

 private:
  AttackMetrics() = default;

  Counter* outcomes_[kNumDimensions] = {};
  Gauge* success_rate_[kNumDimensions] = {};
  Gauge* equivocation_bits_[kNumDimensions] = {};
};

#undef TRIPRIV_OBS_BODY
#ifdef TRIPRIV_OBS_DISABLED
#pragma GCC diagnostic pop
#endif

}  // namespace obs
}  // namespace tripriv
