#include "obs/metrics.h"

#include <algorithm>

namespace tripriv {
namespace obs {
namespace {

bool IsLowerAlpha(char c) { return c >= 'a' && c <= 'z'; }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

bool ValidMetricOrKeyName(const std::string& name, size_t max_len) {
  if (name.empty() || name.size() > max_len) return false;
  if (!IsLowerAlpha(name[0]) && name[0] != '_') return false;
  for (char c : name) {
    if (!IsLowerAlpha(c) && !IsDigit(c) && c != '_') return false;
  }
  return true;
}

/// The data-shaped-string gate: label values must be short lowercase
/// identifiers. Predicate strings (operators, spaces, uppercase), record
/// values (arbitrary charset), and rendered fingerprints (all digits) all
/// fail here even before the membership check.
bool ValidLabelValue(const std::string& value) {
  if (value.empty() || value.size() > 48) return false;
  bool all_digits = true;
  for (char c : value) {
    const bool ok = IsLowerAlpha(c) || IsDigit(c) || c == '_' || c == '.' ||
                    c == ':' || c == '-';
    if (!ok) return false;
    if (!IsDigit(c)) all_digits = false;
  }
  return !all_digits;
}

std::string SeriesKey(const std::string& name, const LabelSet& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

}  // namespace

// ---------------------------------------------------------------------------
// LabelAllowlist

LabelAllowlist LabelAllowlist::Default() {
  LabelAllowlist list;
  struct KeyValues {
    const char* key;
    std::vector<const char*> values;
  };
  static const KeyValues kDefaults[] = {
      {"tier", {"protected", "dp_degraded", "refused"}},
      {"dimension", {"respondent", "owner", "user"}},
      {"backend", {"primary", "dp", "aggregate", "pir"}},
      {"principal", {"degraded_path", "aggregate_path"}},
      {"method",
       {"mdav", "mondrian", "condense", "noise", "rankswap", "datafly",
        "samarati"}},
      {"state", {"closed", "open", "half_open"}},
      {"result", {"ok", "error"}},
      // Tenant classes are coarse service tiers; the allowlist is exactly
      // why a principal id can never ride this key.
      {"class",
       {"interactive", "batch", "analytics", "abusive", "unattributed"}},
      {"reason", {"queue_full", "overload", "deadline"}},
  };
  for (const KeyValues& kv : kDefaults) {
    IgnoreError(list.AllowKey(kv.key));
    for (const char* v : kv.values) IgnoreError(list.AllowValue(kv.key, v));
  }
  return list;
}

Status LabelAllowlist::AllowKey(const std::string& key) {
  if (!ValidMetricOrKeyName(key, 32)) {
    return Status::InvalidArgument("label key '" + key +
                                   "' is not a short [a-z0-9_] identifier");
  }
  allowed_[key];  // creates the (possibly empty) value set
  return Status::OK();
}

Status LabelAllowlist::AllowValue(const std::string& key,
                                  const std::string& value) {
  auto it = allowed_.find(key);
  if (it == allowed_.end()) {
    return Status::InvalidArgument("label key '" + key +
                                   "' is not in the allowlist");
  }
  if (!ValidLabelValue(value)) {
    return Status::InvalidArgument(
        "label value for key '" + key +
        "' is data-shaped (wrong charset, too long, or all digits) and may "
        "not become a metric label");
  }
  it->second.insert(value);
  return Status::OK();
}

Status LabelAllowlist::Validate(const LabelSet& labels) const {
  for (const auto& [key, value] : labels) {
    auto it = allowed_.find(key);
    if (it == allowed_.end()) {
      return Status::InvalidArgument("label key '" + key +
                                     "' is not in the allowlist");
    }
    if (it->second.count(value) == 0) {
      // Deliberately does NOT echo the value: a rejected value is exactly
      // the string that must not reach any output channel.
      return Status::InvalidArgument("label value for key '" + key +
                                     "' is not in the allowlist");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Counter / Histogram

void Counter::Add(uint64_t delta, size_t shard) {
  TRIPRIV_CHECK_LT(shard, slots_.size());
  slots_[shard] += delta;
}

uint64_t Counter::value() const {
  uint64_t total = 0;
  for (uint64_t slot : slots_) total += slot;
  return total;
}

Histogram::Histogram(std::vector<uint64_t> bounds, size_t shards)
    : bounds_(std::move(bounds)), slots_(shards) {
  for (Slot& slot : slots_) slot.buckets.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(uint64_t value, size_t shard) {
  TRIPRIV_CHECK_LT(shard, slots_.size());
  // First bucket whose upper bound admits the value (le semantics: a value
  // equal to a bound lands in that bound's bucket); past the last bound is
  // the +inf bucket.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  Slot& slot = slots_[shard];
  ++slot.buckets[bucket];
  ++slot.count;
  slot.sum += value;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  for (const Slot& slot : slots_) {
    for (size_t b = 0; b < merged.size(); ++b) merged[b] += slot.buckets[b];
  }
  return merged;
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) total += slot.count;
  return total;
}

uint64_t Histogram::sum() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) total += slot.sum;
  return total;
}

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::MetricsRegistry(MetricsConfig config)
    : shards_(config.shards < 1 ? 1 : config.shards),
      allowlist_(std::move(config.allowlist)) {}

Status MetricsRegistry::AdmitSeries(const std::string& name, MetricKind kind,
                                    LabelSet* labels) {
  if (!ValidMetricOrKeyName(name, 64)) {
    return Status::InvalidArgument("metric name '" + name +
                                   "' is not a short [a-z0-9_] identifier");
  }
  std::sort(labels->begin(), labels->end());
  for (size_t i = 1; i < labels->size(); ++i) {
    if ((*labels)[i].first == (*labels)[i - 1].first) {
      return Status::InvalidArgument("duplicate label key '" +
                                     (*labels)[i].first + "'");
    }
  }
  TRIPRIV_RETURN_IF_ERROR(allowlist_.Validate(*labels));
  auto kind_it = name_kinds_.find(name);
  if (kind_it != name_kinds_.end() && kind_it->second != kind) {
    // A kind change is a contract violation, not a duplicate registration.
    return Status::InvalidArgument(
        "metric '" + name + "' already registered with a different kind");
  }
  if (!series_keys_.insert(SeriesKey(name, *labels)).second) {
    return Status::AlreadyExists("metric series '" + name +
                                 "' with these labels already registered");
  }
  name_kinds_.emplace(name, kind);
  return Status::OK();
}

Result<Counter*> MetricsRegistry::RegisterCounter(const std::string& name,
                                                  const std::string& help,
                                                  LabelSet labels) {
  TRIPRIV_RETURN_IF_ERROR(AdmitSeries(name, MetricKind::kCounter, &labels));
  Entry entry{MetricKind::kCounter, name,    help, std::move(labels),
              nullptr,              nullptr, nullptr};
  entry.counter.reset(new Counter(shards_));
  Counter* handle = entry.counter.get();
  entries_.push_back(std::move(entry));
  return handle;
}

Result<Gauge*> MetricsRegistry::RegisterGauge(const std::string& name,
                                              const std::string& help,
                                              LabelSet labels) {
  TRIPRIV_RETURN_IF_ERROR(AdmitSeries(name, MetricKind::kGauge, &labels));
  Entry entry{MetricKind::kGauge, name,    help, std::move(labels),
              nullptr,            nullptr, nullptr};
  entry.gauge.reset(new Gauge());
  Gauge* handle = entry.gauge.get();
  entries_.push_back(std::move(entry));
  return handle;
}

Result<Histogram*> MetricsRegistry::RegisterHistogram(
    const std::string& name, const std::string& help,
    std::vector<uint64_t> bounds, LabelSet labels) {
  if (bounds.empty()) {
    return Status::InvalidArgument("histogram needs at least one bound");
  }
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      return Status::InvalidArgument(
          "histogram bounds must be strictly increasing");
    }
  }
  TRIPRIV_RETURN_IF_ERROR(AdmitSeries(name, MetricKind::kHistogram, &labels));
  Entry entry{MetricKind::kHistogram, name,    help, std::move(labels),
              nullptr,                nullptr, nullptr};
  entry.histogram.reset(new Histogram(std::move(bounds), shards_));
  Histogram* handle = entry.histogram.get();
  entries_.push_back(std::move(entry));
  return handle;
}

Status MetricsRegistry::AllowLabelValue(const std::string& key,
                                        const std::string& value) {
  return allowlist_.AllowValue(key, value);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.samples.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    MetricSample sample;
    sample.name = entry.name;
    sample.help = entry.help;
    sample.kind = entry.kind;
    sample.labels = entry.labels;
    switch (entry.kind) {
      case MetricKind::kCounter:
        sample.counter_value = entry.counter->value();
        break;
      case MetricKind::kGauge:
        sample.gauge_value = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        sample.histogram.bounds = entry.histogram->bounds();
        sample.histogram.counts = entry.histogram->bucket_counts();
        sample.histogram.count = entry.histogram->count();
        sample.histogram.sum = entry.histogram->sum();
        break;
    }
    snapshot.samples.push_back(std::move(sample));
  }
  std::sort(snapshot.samples.begin(), snapshot.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snapshot;
}

}  // namespace obs
}  // namespace tripriv
