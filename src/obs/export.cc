#include "obs/export.h"

#include <charconv>
#include <cmath>

namespace tripriv {
namespace obs {
namespace {

std::string LabelsToPrometheus(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += EscapePrometheusLabelValue(value);
    out += '"';
  }
  out += '}';
  return out;
}

/// Labels rendered inside an existing `{...}` list, joined with the extra
/// `le` label histograms need.
std::string BucketLabels(const LabelSet& labels, const std::string& le) {
  std::string out = "{";
  for (const auto& [key, value] : labels) {
    out += key;
    out += "=\"";
    out += EscapePrometheusLabelValue(value);
    out += "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

std::string LabelsToJson(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += EscapeJsonString(key);
    out += "\":\"";
    out += EscapeJsonString(value);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string EscapePrometheusLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeJsonString(const std::string& value) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (u < 0x20) {
          out += "\\u00";
          out += kHex[u >> 4];
          out += kHex[u & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return "0";
  return std::string(buf, ptr);
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_name;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.name != last_name) {
      last_name = sample.name;
      out += "# HELP " + sample.name + " " + sample.help + "\n";
      out += "# TYPE " + sample.name + " ";
      out += MetricKindName(sample.kind);
      out += '\n';
    }
    switch (sample.kind) {
      case MetricKind::kCounter:
        out += sample.name + LabelsToPrometheus(sample.labels) + " " +
               std::to_string(sample.counter_value) + "\n";
        break;
      case MetricKind::kGauge:
        out += sample.name + LabelsToPrometheus(sample.labels) + " " +
               FormatDouble(sample.gauge_value) + "\n";
        break;
      case MetricKind::kHistogram: {
        uint64_t cumulative = 0;
        for (size_t b = 0; b < sample.histogram.counts.size(); ++b) {
          cumulative += sample.histogram.counts[b];
          const std::string le =
              b < sample.histogram.bounds.size()
                  ? std::to_string(sample.histogram.bounds[b])
                  : std::string("+Inf");
          out += sample.name + "_bucket" + BucketLabels(sample.labels, le) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += sample.name + "_sum" + LabelsToPrometheus(sample.labels) + " " +
               std::to_string(sample.histogram.sum) + "\n";
        out += sample.name + "_count" + LabelsToPrometheus(sample.labels) +
               " " + std::to_string(sample.histogram.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSample& sample : snapshot.samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + EscapeJsonString(sample.name) + "\",\"kind\":\"";
    out += MetricKindName(sample.kind);
    out += "\",\"labels\":" + LabelsToJson(sample.labels);
    switch (sample.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":" + std::to_string(sample.counter_value);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":" + FormatDouble(sample.gauge_value);
        break;
      case MetricKind::kHistogram: {
        out += ",\"buckets\":[";
        for (size_t b = 0; b < sample.histogram.counts.size(); ++b) {
          if (b > 0) out += ',';
          out += "{\"le\":";
          if (b < sample.histogram.bounds.size()) {
            out += std::to_string(sample.histogram.bounds[b]);
          } else {
            out += "\"+inf\"";
          }
          out += ",\"count\":" + std::to_string(sample.histogram.counts[b]) +
                 "}";
        }
        out += "],\"count\":" + std::to_string(sample.histogram.count) +
               ",\"sum\":" + std::to_string(sample.histogram.sum);
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string TraceToJson(const TraceRecorder& trace) {
  std::string out = "{\"spans\":[";
  for (size_t i = 0; i < trace.num_spans(); ++i) {
    const TraceSpan& span = trace.span(i);
    if (i > 0) out += ',';
    out += "{\"id\":" + std::to_string(span.id) +
           ",\"parent\":" + std::to_string(span.parent_id) + ",\"name\":\"" +
           EscapeJsonString(span.name) +
           "\",\"query_id\":" + std::to_string(span.query_id) +
           ",\"start\":" + std::to_string(span.start_tick) +
           ",\"end\":" + std::to_string(span.end_tick) + ",\"status\":\"" +
           EscapeJsonString(span.status) + "\"}";
  }
  out += "],\"dropped\":" + std::to_string(trace.dropped()) +
         ",\"rejected_names\":" + std::to_string(trace.rejected_names()) + "}";
  return out;
}

}  // namespace obs
}  // namespace tripriv
