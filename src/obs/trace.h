// Deterministic tracing for the serving ladder.
//
// A TraceRecorder produces spans stamped from the service's SimClock, so a
// trace is a pure function of the seed and the workload — two runs of the
// same batch produce byte-identical trace exports at any thread count
// (spans are only ever recorded from the serial stages of the execution
// discipline). Spans carry parent/child links, so one Submit renders as
//
//   submit ── policy ── wal_append
//          ├─ admission
//          ├─ primary
//          └─ degraded ── wal_append
//
// Privacy: span names come from a fail-closed allowlist (unknown name →
// the span is rejected and counted, never recorded), the only free-form
// payload is the numeric query_id (which the WAL already stores), and span
// status is a StatusCode name — no message strings, which could quote
// predicates, ever enter a span.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/clock.h"
#include "core/annotations.h"
#include "util/status.h"

namespace tripriv {
namespace obs {

/// One recorded operation. `end_tick` is meaningful once the span is
/// closed; an unclosed span exports with end_tick == start_tick and
/// status "unfinished".
struct TraceSpan {
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 = root
  std::string name;
  uint64_t query_id = 0;
  uint64_t start_tick = 0;
  uint64_t end_tick = 0;
  /// StatusCode name ("OK", "Unavailable", ...) or "unfinished".
  std::string status = "unfinished";
  bool closed = false;
};

/// Bounded deterministic span recorder; see file comment.
class TraceRecorder {
 public:
  /// Records at most `capacity` (>= 1) spans; older spans are evicted
  /// oldest-first and counted in dropped(). `clock` must outlive the
  /// recorder.
  TraceRecorder(SimClock* clock, size_t capacity = 4096);

  /// Admits one more span name (same shape rules as metric names).
  TRIPRIV_SINK(span)
  Status AllowSpanName(const std::string& name);

  /// Resolves an allowlisted name to its interned id (> 0), or 0 when the
  /// name is unknown. Instruments resolve once at attach time and start
  /// spans by id, keeping string comparisons off the per-query path.
  uint32_t SpanNameId(const std::string& name) const;

  /// Opens a span. Returns its id, or 0 when `name` is not allowlisted
  /// (fail closed: the rejection is counted, nothing is recorded, and the
  /// 0 id makes every child/End call a no-op).
  TRIPRIV_SINK(span)
  uint64_t StartSpan(const std::string& name, uint64_t parent_id = 0,
                     uint64_t query_id = 0);

  /// O(1) StartSpan for a pre-resolved SpanNameId. An id of 0 (or out of
  /// range) is the same fail-closed rejection as an unknown name.
  uint64_t StartSpanById(uint32_t name_id, uint64_t parent_id = 0,
                         uint64_t query_id = 0);

  /// Closes a span with the outcome's StatusCode (never its message).
  /// No-op for id 0 or an already-evicted span.
  void EndSpan(uint64_t id, StatusCode code = StatusCode::kOk);

  /// Recorded spans, oldest first.
  size_t num_spans() const { return spans_.size(); }
  const TraceSpan& span(size_t i) const;

  /// Spans evicted by the capacity bound.
  uint64_t dropped() const { return dropped_; }
  /// StartSpan calls rejected by the name allowlist.
  uint64_t rejected_names() const { return rejected_names_; }

 private:
  SimClock* clock_;
  size_t capacity_;
  /// Interned allowlist: names_[id] for id >= 1; index 0 is the invalid
  /// sentinel. name_ids_ is the reverse map used at resolve time only.
  std::vector<std::string> names_;
  std::map<std::string, uint32_t> name_ids_;
  /// Ring: spans_[(head_ + i) % capacity] is the i-th oldest once full.
  std::vector<TraceSpan> spans_;
  size_t head_ = 0;
  uint64_t next_id_ = 1;
  uint64_t dropped_ = 0;
  uint64_t rejected_names_ = 0;
};

}  // namespace obs
}  // namespace tripriv
