#include "obs/budget.h"

#include <utility>

namespace tripriv {
namespace obs {

const char* PrivacyDimensionName(PrivacyDimension dimension) {
  switch (dimension) {
    case PrivacyDimension::kRespondent:
      return "respondent";
    case PrivacyDimension::kOwner:
      return "owner";
    case PrivacyDimension::kUser:
      return "user";
  }
  return "?";
}

PrivacyBudgetAccountant::PrivacyBudgetAccountant(MetricsRegistry* registry)
    : registry_(registry) {
  TRIPRIV_CHECK(registry_ != nullptr);
}

Status PrivacyBudgetAccountant::RegisterPrincipal(const std::string& name,
                                                  PrivacyDimension dimension,
                                                  double budget) {
  if (budget < 0.0) {
    return Status::InvalidArgument("budget must be >= 0");
  }
  if (principals_.count(name) > 0) {
    return Status::AlreadyExists("principal already registered");
  }
  // Admitting the name is the fail-closed gate: a data-shaped name never
  // reaches the registry.
  TRIPRIV_RETURN_IF_ERROR(registry_->AllowLabelValue("principal", name));
  const LabelSet labels = {
      {"dimension", PrivacyDimensionName(dimension)},
      {"principal", name},
  };
  Principal principal;
  principal.dimension = dimension;
  principal.budget = budget;
  TRIPRIV_ASSIGN_OR_RETURN(
      principal.spent_gauge,
      registry_->RegisterGauge("tripriv_privacy_epsilon_spent",
                               "Epsilon spent by this principal", labels));
  TRIPRIV_ASSIGN_OR_RETURN(
      principal.budget_gauge,
      registry_->RegisterGauge("tripriv_privacy_epsilon_budget",
                               "Total epsilon budget of this principal",
                               labels));
  TRIPRIV_ASSIGN_OR_RETURN(
      principal.remaining_gauge,
      registry_->RegisterGauge("tripriv_privacy_epsilon_remaining",
                               "Epsilon budget left for this principal",
                               labels));
  TRIPRIV_ASSIGN_OR_RETURN(
      principal.spend_events_counter,
      registry_->RegisterCounter("tripriv_privacy_spend_events_total",
                                 "Number of recorded epsilon spends", labels));
  principal.budget_gauge->Set(budget);
  principal.remaining_gauge->Set(budget);
  principals_.emplace(name, principal);
  return Status::OK();
}

Status PrivacyBudgetAccountant::RecordSpend(const std::string& name,
                                            double epsilon) {
  if (epsilon < 0.0) {
    return Status::InvalidArgument("epsilon spend must be >= 0");
  }
  auto it = principals_.find(name);
  if (it == principals_.end()) {
    return Status::NotFound("unknown budget principal");
  }
  Principal& principal = it->second;
  principal.spent += epsilon;
  ++principal.spend_events;
  principal.spent_gauge->Set(principal.spent);
  const double left = principal.budget - principal.spent;
  principal.remaining_gauge->Set(left > 0.0 ? left : 0.0);
  principal.spend_events_counter->Increment();
  return Status::OK();
}

Status PrivacyBudgetAccountant::SyncRecoveredSpend(const std::string& name,
                                                   double total) {
  if (total < 0.0) {
    return Status::InvalidArgument("recovered spend must be >= 0");
  }
  auto it = principals_.find(name);
  if (it == principals_.end()) {
    return Status::NotFound("unknown budget principal");
  }
  Principal& principal = it->second;
  if (total <= principal.spent) return Status::OK();  // replay: already there
  principal.spent = total;
  principal.spent_gauge->Set(principal.spent);
  const double left = principal.budget - principal.spent;
  principal.remaining_gauge->Set(left > 0.0 ? left : 0.0);
  return Status::OK();
}

double PrivacyBudgetAccountant::spent(const std::string& name) const {
  auto it = principals_.find(name);
  return it == principals_.end() ? 0.0 : it->second.spent;
}

double PrivacyBudgetAccountant::remaining(const std::string& name) const {
  auto it = principals_.find(name);
  if (it == principals_.end()) return 0.0;
  const double left = it->second.budget - it->second.spent;
  return left > 0.0 ? left : 0.0;
}

}  // namespace obs
}  // namespace tripriv
