// Tests for query-log profiling and the discernibility metrics.

#include <gtest/gtest.h>

#include "querydb/profiling.h"
#include "querydb/protection.h"
#include "sdc/information_loss.h"
#include "sdc/microaggregation.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

std::vector<StatQuery> MakeLog(const std::vector<std::string>& sqls) {
  std::vector<StatQuery> log;
  for (const auto& sql : sqls) {
    auto q = ParseQuery(sql);
    EXPECT_TRUE(q.ok()) << sql;
    log.push_back(std::move(q).value());
  }
  return log;
}

TEST(ProfilingTest, CountsAttributeInterest) {
  auto log = MakeLog({
      "SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105",
      "SELECT AVG(blood_pressure) FROM t WHERE height < 165 AND weight > 105",
      "SELECT COUNT(*) FROM t WHERE height > 180",
  });
  UserProfile profile = ProfileQueryLog(log);
  EXPECT_EQ(profile.queries, 3u);
  EXPECT_EQ(profile.attribute_interest.at("height"), 3u);
  EXPECT_EQ(profile.attribute_interest.at("weight"), 2u);
  EXPECT_EQ(profile.TopInterest(), "height");
  EXPECT_EQ(profile.distinct_predicates, 2u);  // first two share a predicate
  EXPECT_EQ(profile.function_use.at("COUNT"), 2u);
  EXPECT_EQ(profile.function_use.at("AVG"), 1u);
}

TEST(ProfilingTest, EmptyAndPredicateFreeLogs) {
  EXPECT_DOUBLE_EQ(QueryLogVisibility({}), 0.0);
  auto log = MakeLog({"SELECT COUNT(*) FROM t"});
  EXPECT_DOUBLE_EQ(QueryLogVisibility(log), 0.0);  // nothing personal probed
  UserProfile profile = ProfileQueryLog(log);
  EXPECT_TRUE(profile.TopInterest().empty());
  EXPECT_EQ(profile.distinct_predicates, 1u);
}

TEST(ProfilingTest, FullVisibilityOnPlainChannel) {
  // The AOL scenario: a plaintext query channel exposes every predicate.
  ProtectionConfig config;
  config.mode = ProtectionMode::kNone;
  StatDatabase db(PaperDataset2(), config);
  ASSERT_TRUE(
      db.Query("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105")
          .ok());
  ASSERT_TRUE(db.Query("SELECT AVG(blood_pressure) FROM t WHERE aids = 'Y'")
                  .ok());
  EXPECT_DOUBLE_EQ(QueryLogVisibility(db.query_log()), 1.0);
  UserProfile profile = ProfileQueryLog(db.query_log());
  // The owner now knows this user is probing AIDS status.
  EXPECT_EQ(profile.attribute_interest.count("aids"), 1u);
  EXPECT_NE(profile.ToString().find("aids"), std::string::npos);
}

TEST(DiscernibilityTest, BoundsAndKnownValues) {
  // Dataset 1: classes of 3, 3, 4 -> DM = 9 + 9 + 16 = 34.
  EXPECT_DOUBLE_EQ(DiscernibilityMetric(PaperDataset1()), 34.0);
  // Dataset 2: all unique -> DM = n = 10 (the minimum).
  EXPECT_DOUBLE_EQ(DiscernibilityMetric(PaperDataset2()), 10.0);
  // One big class after heavy masking -> n^2.
  auto masked = MdavMicroaggregate(PaperDataset2(), 10);
  ASSERT_TRUE(masked.ok());
  EXPECT_DOUBLE_EQ(DiscernibilityMetric(masked->table), 100.0);
}

TEST(DiscernibilityTest, GrowsWithK) {
  DataTable data = MakeExtendedTrial(200, 7);
  double prev = DiscernibilityMetric(data);
  for (size_t k : {2u, 5u, 15u}) {
    auto masked = MdavMicroaggregate(data, k);
    ASSERT_TRUE(masked.ok());
    const double dm = DiscernibilityMetric(masked->table);
    EXPECT_GT(dm, prev);
    prev = dm;
  }
}

TEST(DiscernibilityTest, NormalizedAverageClassSize) {
  // Dataset 1 at k = 3: classes {3,3,4}, avg 10/3, normalized (10/3)/3.
  auto v = NormalizedAverageClassSize(
      PaperDataset1(), PaperDataset1().schema().QuasiIdentifierIndices(), 3);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 10.0 / 3.0 / 3.0, 1e-12);
  DataTable empty(PatientSchema());
  EXPECT_FALSE(NormalizedAverageClassSize(empty, {0, 1}, 3).ok());
  EXPECT_FALSE(NormalizedAverageClassSize(PaperDataset1(), {0, 1}, 0).ok());
}

}  // namespace
}  // namespace tripriv
