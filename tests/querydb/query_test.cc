// Tests for the query language parser and the execution engine.

#include <gtest/gtest.h>

#include "querydb/engine.h"
#include "querydb/query.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

TEST(ParserTest, ParsesPaperQueries) {
  auto q1 = ParseQuery(
      "SELECT COUNT(*) FROM Dataset2 WHERE height < 165 AND weight > 105");
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  EXPECT_EQ(q1->fn, AggregateFn::kCount);
  EXPECT_TRUE(q1->attribute.empty());
  EXPECT_EQ(q1->table, "Dataset2");
  EXPECT_EQ(q1->where.ToString(), "(height < 165 AND weight > 105)");

  auto q2 = ParseQuery(
      "SELECT AVG(blood_pressure) FROM Dataset2 WHERE height < 165 AND "
      "weight > 105");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->fn, AggregateFn::kAvg);
  EXPECT_EQ(q2->attribute, "blood_pressure");
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  auto q = ParseQuery("select sum(weight) from t where height >= 170;");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->fn, AggregateFn::kSum);
  EXPECT_EQ(q->attribute, "weight");
}

TEST(ParserTest, AllAggregates) {
  EXPECT_EQ(ParseQuery("SELECT MIN(x) FROM t")->fn, AggregateFn::kMin);
  EXPECT_EQ(ParseQuery("SELECT MAX(x) FROM t")->fn, AggregateFn::kMax);
  EXPECT_EQ(ParseQuery("SELECT AVG(x) FROM t")->fn, AggregateFn::kAvg);
  EXPECT_EQ(ParseQuery("SELECT COUNT(*) FROM t")->fn, AggregateFn::kCount);
}

TEST(ParserTest, MissingWhereMeansTrue) {
  auto q = ParseQuery("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.ToString(), "TRUE");
}

TEST(ParserTest, PrecedenceAndParentheses) {
  // AND binds tighter than OR.
  auto q = ParseQuery("SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.ToString(), "(a = 1 OR (b = 2 AND c = 3))");
  auto q2 =
      ParseQuery("SELECT COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND c = 3");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->where.ToString(), "((a = 1 OR b = 2) AND c = 3)");
}

TEST(ParserTest, NotAndStringsAndReals) {
  auto q = ParseQuery(
      "SELECT COUNT(*) FROM t WHERE NOT aids = 'Y' AND score <= 1.5");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.ToString(), "((NOT aids = 'Y') AND score <= 1.5)");
}

TEST(ParserTest, NegativeAndScientificNumbers) {
  auto q = ParseQuery("SELECT COUNT(*) FROM t WHERE x > -5 AND y < 1e3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.ToString(), "(x > -5 AND y < 1000)");
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(*) FROM t").ok());       // * needs COUNT
  EXPECT_FALSE(ParseQuery("SELECT COUNT(x FROM t").ok());      // missing )
  EXPECT_FALSE(ParseQuery("SELECT MEDIAN(x) FROM t").ok());    // unknown fn
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) WHERE x = 1").ok());  // no FROM
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM t WHERE x").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM t WHERE x = ").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM t WHERE x = 'open").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM t extra").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM t WHERE x ~ 3").ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  const std::string sql =
      "SELECT AVG(blood_pressure) FROM t WHERE (height < 165 AND weight > 105)";
  auto q = ParseQuery(sql);
  ASSERT_TRUE(q.ok());
  auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->ToString(), q->ToString());
}

TEST(EngineTest, PaperQueriesOnDataset2) {
  DataTable data = PaperDataset2();
  auto q1 = ParseQuery(
      "SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105");
  ASSERT_TRUE(q1.ok());
  auto a1 = ExecuteQuery(data, *q1);
  ASSERT_TRUE(a1.ok());
  EXPECT_DOUBLE_EQ(a1->value, 1.0);
  EXPECT_EQ(a1->query_set_size, 1u);

  auto q2 = ParseQuery(
      "SELECT AVG(blood_pressure) FROM t WHERE height < 165 AND weight > 105");
  ASSERT_TRUE(q2.ok());
  auto a2 = ExecuteQuery(data, *q2);
  ASSERT_TRUE(a2.ok());
  EXPECT_DOUBLE_EQ(a2->value, 146.0);
}

TEST(EngineTest, AllAggregatesComputeCorrectly) {
  DataTable data = PaperDataset1();
  auto run = [&](const std::string& sql) {
    auto q = ParseQuery(sql);
    EXPECT_TRUE(q.ok());
    auto a = ExecuteQuery(data, *q);
    EXPECT_TRUE(a.ok()) << sql;
    return a->value;
  };
  EXPECT_DOUBLE_EQ(run("SELECT COUNT(*) FROM t"), 10.0);
  EXPECT_DOUBLE_EQ(run("SELECT MIN(blood_pressure) FROM t"), 141.0);
  EXPECT_DOUBLE_EQ(run("SELECT MAX(blood_pressure) FROM t"), 170.0);
  EXPECT_DOUBLE_EQ(run("SELECT SUM(height) FROM t WHERE height = 160"), 640.0);
  EXPECT_DOUBLE_EQ(run("SELECT AVG(weight) FROM t WHERE height = 180"), 90.0);
}

TEST(EngineTest, EmptySelectionSemantics) {
  DataTable data = PaperDataset1();
  auto count = ParseQuery("SELECT COUNT(*) FROM t WHERE height > 999");
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(ExecuteQuery(data, *count)->value, 0.0);
  auto sum = ParseQuery("SELECT SUM(weight) FROM t WHERE height > 999");
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(ExecuteQuery(data, *sum)->value, 0.0);
  auto avg = ParseQuery("SELECT AVG(weight) FROM t WHERE height > 999");
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(ExecuteQuery(data, *avg).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EngineTest, ErrorsOnBadAttribute) {
  DataTable data = PaperDataset1();
  auto q = ParseQuery("SELECT SUM(aids) FROM t");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(ExecuteQuery(data, *q).ok());  // categorical
  auto q2 = ParseQuery("SELECT SUM(nothing) FROM t");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(ExecuteQuery(data, *q2).ok());
}

}  // namespace
}  // namespace tripriv
