// Tests for the tracker attack's FAILURE paths: when protection succeeds,
// TrackerAttackResult must degrade into a typed, explained failure — never
// garbage inferences — and FindTracker must admit defeat with nullopt.

#include <gtest/gtest.h>

#include "querydb/tracker.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

Predicate Section3Target() {
  return Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(165)),
      Predicate::Compare("weight", CompareOp::kGt, Value(105)));
}

TEST(TrackerFailureTest, NoTrackerExistsUnderCrushingThreshold) {
  // t = 6 on a 10-record table makes the answerable window [6, n - 6]
  // empty: every probe is refused, so no tracker candidate survives and
  // the finder must admit defeat instead of returning a stale candidate.
  ProtectionConfig config;
  config.mode = ProtectionMode::kQuerySetSize;
  config.min_query_set_size = 6;
  StatDatabase db(PaperDataset2(), config);
  auto tracker = FindTracker(&db, "height", 140.0, 205.0, 16);
  EXPECT_FALSE(tracker.has_value());
}

TEST(TrackerFailureTest, AllPiecesRefusedYieldsTypedFailureNotGarbage) {
  // Under an impossibly large threshold every padding query is refused;
  // the attack must report failure with a reason, not fabricate values.
  ProtectionConfig config;
  config.mode = ProtectionMode::kQuerySetSize;
  config.min_query_set_size = 6;  // > n/2: nothing is answerable
  StatDatabase db(PaperDataset2(), config);

  const Predicate tracker =
      Predicate::Compare("height", CompareOp::kLt, Value(170));
  auto attack =
      TrackerAttack(&db, Section3Target(), "blood_pressure", tracker);
  ASSERT_TRUE(attack.ok());  // the attack ran; it just did not succeed
  EXPECT_FALSE(attack->succeeded);
  EXPECT_FALSE(attack->failure_reason.empty());
  EXPECT_NE(attack->failure_reason.find("refused"), std::string::npos);
  // Inference fields stay at their zero-initialized values: a failed attack
  // must not leave plausible-looking numbers behind.
  EXPECT_DOUBLE_EQ(attack->inferred_count, 0.0);
  EXPECT_DOUBLE_EQ(attack->inferred_sum, 0.0);
  // The refused probes still hit the query log (a real attacker's trace).
  EXPECT_GT(attack->queries_used, 0u);
}

TEST(TrackerFailureTest, AuditModeBlocksTheAttackMidway) {
  // Overlap auditing lets early pieces through, then refuses a later piece
  // whose symmetric difference with an answered set is too small. The
  // attack must surface that refusal reason.
  ProtectionConfig config;
  config.mode = ProtectionMode::kAudit;
  config.min_query_set_size = 2;
  StatDatabase db(PaperDataset2(), config);

  const Predicate tracker =
      Predicate::Compare("height", CompareOp::kLt, Value(170));
  auto attack =
      TrackerAttack(&db, Section3Target(), "blood_pressure", tracker);
  ASSERT_TRUE(attack.ok());
  EXPECT_FALSE(attack->succeeded);
  EXPECT_FALSE(attack->failure_reason.empty());
  EXPECT_DOUBLE_EQ(attack->inferred_count, 0.0);
  EXPECT_DOUBLE_EQ(attack->inferred_sum, 0.0);
}

TEST(TrackerFailureTest, SucceedsAgainWhenProtectionIsWeak) {
  // Sanity inverse: with the paper's weak t = 2 threshold the same attack
  // succeeds — the failure paths above are the protection working, not the
  // attack being broken.
  ProtectionConfig config;
  config.mode = ProtectionMode::kQuerySetSize;
  config.min_query_set_size = 2;
  StatDatabase db(PaperDataset2(), config);
  auto tracker = FindTracker(&db, "height", 140.0, 205.0, 16);
  ASSERT_TRUE(tracker.has_value());
  auto attack =
      TrackerAttack(&db, Section3Target(), "blood_pressure", *tracker);
  ASSERT_TRUE(attack.ok());
  EXPECT_TRUE(attack->succeeded);
  EXPECT_TRUE(attack->failure_reason.empty());
  EXPECT_DOUBLE_EQ(attack->inferred_count, 1.0);
  EXPECT_DOUBLE_EQ(attack->inferred_sum, 146.0);
}

}  // namespace
}  // namespace tripriv
