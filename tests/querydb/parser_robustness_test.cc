// Robustness sweep: the query parser must return a Status — never crash,
// hang, or accept garbage — for arbitrary byte soup and truncations.

#include <string>

#include <gtest/gtest.h>

#include "querydb/query.h"
#include "util/random.h"

namespace tripriv {
namespace {

TEST(ParserRobustnessTest, RandomByteSoupNeverCrashes) {
  Rng rng(2026);
  for (int trial = 0; trial < 3000; ++trial) {
    const size_t len = rng.UniformU64(64);
    std::string soup;
    for (size_t i = 0; i < len; ++i) {
      soup += static_cast<char>(32 + rng.UniformU64(95));  // printable ASCII
    }
    IgnoreError(ParseQuery(soup).status());  // must simply return ok() or an error
  }
}

TEST(ParserRobustnessTest, TokenSoupNeverCrashes) {
  // Random sequences of VALID tokens are the adversarial middle ground.
  static const char* kTokens[] = {"SELECT", "COUNT",  "(",    ")",   "*",
                                  "FROM",   "WHERE",  "AND",  "OR",  "NOT",
                                  "height", "165",    "<",    ">=",  "'Y'",
                                  "3.5",    "-2",     "=",    "!=",  "t"};
  Rng rng(2027);
  for (int trial = 0; trial < 3000; ++trial) {
    const size_t len = rng.UniformU64(12);
    std::string q;
    for (size_t i = 0; i < len; ++i) {
      q += kTokens[rng.UniformU64(std::size(kTokens))];
      q += ' ';
    }
    IgnoreError(ParseQuery(q).status());
  }
}

TEST(ParserRobustnessTest, EveryPrefixOfAValidQueryIsHandled) {
  const std::string query =
      "SELECT AVG(blood_pressure) FROM trial WHERE (height < 165 AND "
      "weight > 105) OR NOT aids = 'Y'";
  for (size_t len = 0; len < query.size(); ++len) {
    // Every prefix must be handled without crashing; prefixes cut before
    // the table name cannot be complete queries.
    auto r = ParseQuery(query.substr(0, len));
    if (len < 33) {  // "...FROM t" is the shortest valid prefix
      EXPECT_FALSE(r.ok()) << "prefix length " << len;
    }
  }
  EXPECT_TRUE(ParseQuery(query).ok());
  // A prefix that truncates inside an identifier is still a valid query
  // over a shorter identifier — by design, not an error.
  EXPECT_TRUE(ParseQuery(query.substr(0, 36)).ok());  // "... FROM tria"
}

TEST(ParserRobustnessTest, DeeplyNestedParenthesesAreFine) {
  std::string q = "SELECT COUNT(*) FROM t WHERE ";
  for (int i = 0; i < 200; ++i) q += "(";
  q += "x = 1";
  for (int i = 0; i < 200; ++i) q += ")";
  auto r = ParseQuery(q);
  ASSERT_TRUE(r.ok());
  // Unbalanced versions fail cleanly.
  EXPECT_FALSE(ParseQuery(q + ")").ok());
  EXPECT_FALSE(ParseQuery(q.substr(0, q.size() - 1)).ok());
}

TEST(ParserRobustnessTest, PathologicalNumbersAndStrings) {
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM t WHERE x = 1e").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM t WHERE x = .").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM t WHERE x = -").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM t WHERE x = ''extra''").ok());
  EXPECT_TRUE(ParseQuery("SELECT COUNT(*) FROM t WHERE x = ''").ok());
  EXPECT_TRUE(ParseQuery("SELECT COUNT(*) FROM t WHERE x = 1e10").ok());
  EXPECT_TRUE(ParseQuery("SELECT COUNT(*) FROM t WHERE x = .5").ok());
}

}  // namespace
}  // namespace tripriv
