// Tests for the protected statistical database and the tracker attack.

#include <cmath>

#include <gtest/gtest.h>

#include "querydb/protection.h"
#include "querydb/tracker.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

TEST(StatDatabaseTest, NoneModeAnswersExactly) {
  ProtectionConfig config;
  config.mode = ProtectionMode::kNone;
  StatDatabase db(PaperDataset2(), config);
  auto a = db.Query("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105");
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->refused);
  EXPECT_DOUBLE_EQ(a->value, 1.0);
  // The owner saw everything: this is the no-user-privacy baseline.
  EXPECT_EQ(db.query_log().size(), 1u);
}

TEST(StatDatabaseTest, QuerySetSizeRefusesSmallSets) {
  ProtectionConfig config;
  config.mode = ProtectionMode::kQuerySetSize;
  config.min_query_set_size = 3;
  StatDatabase db(PaperDataset2(), config);
  // The paper's isolating query: refused.
  auto small = db.Query(
      "SELECT AVG(blood_pressure) FROM t WHERE height < 165 AND weight > 105");
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(small->refused);
  // Complements that would isolate via subtraction are refused too.
  auto large = db.Query(
      "SELECT COUNT(*) FROM t WHERE NOT (height < 165 AND weight > 105)");
  ASSERT_TRUE(large.ok());
  EXPECT_TRUE(large->refused);  // |QS| = 9 > n - t = 7
  // Mid-sized queries pass.
  auto mid = db.Query("SELECT COUNT(*) FROM t WHERE height < 175");
  ASSERT_TRUE(mid.ok());
  EXPECT_FALSE(mid->refused);
}

TEST(StatDatabaseTest, AuditBlocksDifferenceAttack) {
  ProtectionConfig config;
  config.mode = ProtectionMode::kAudit;
  config.min_query_set_size = 2;
  StatDatabase db(PaperDataset2(), config);
  // First query: heights below 172 (5 records: 168, 160, 171, 165, 158).
  auto first = db.Query("SELECT SUM(blood_pressure) FROM t WHERE height < 172");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->refused);
  // Second query differs by exactly one record (the 171 cm respondent):
  // answering it would disclose that individual by subtraction.
  auto second = db.Query("SELECT SUM(blood_pressure) FROM t WHERE height < 171");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->refused);
  // An unrelated query with healthy symmetric difference still passes.
  auto other = db.Query("SELECT SUM(blood_pressure) FROM t WHERE weight > 80");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->refused);
}

TEST(StatDatabaseTest, OutputNoisePerturbs) {
  ProtectionConfig config;
  config.mode = ProtectionMode::kOutputNoise;
  config.noise_fraction = 0.3;
  config.seed = 5;
  StatDatabase db(MakeClinicalTrial(300, 7), config);
  // Averages over repeated identical queries hover near the truth but
  // individual answers differ.
  const std::string sql = "SELECT AVG(blood_pressure) FROM t WHERE height > 150";
  std::vector<double> answers;
  for (int i = 0; i < 30; ++i) {
    auto a = db.Query(sql);
    ASSERT_TRUE(a.ok());
    EXPECT_FALSE(a->refused);
    answers.push_back(a->value);
  }
  bool any_different = false;
  for (size_t i = 1; i < answers.size(); ++i) {
    if (answers[i] != answers[0]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(StatDatabaseTest, CamouflageIntervalContainsTruth) {
  ProtectionConfig config;
  config.mode = ProtectionMode::kCamouflage;
  config.camouflage_fraction = 0.15;
  config.seed = 9;
  DataTable data = MakeClinicalTrial(100, 9);
  StatDatabase db(data, config);
  ProtectionConfig exact_config;
  exact_config.mode = ProtectionMode::kNone;
  StatDatabase exact(data, exact_config);
  for (const std::string sql :
       {"SELECT AVG(blood_pressure) FROM t WHERE height > 170",
        "SELECT COUNT(*) FROM t WHERE weight < 70",
        "SELECT SUM(weight) FROM t WHERE height < 180"}) {
    auto masked = db.Query(sql);
    auto truth = exact.Query(sql);
    ASSERT_TRUE(masked.ok() && truth.ok());
    EXPECT_LE(masked->interval_lo, truth->value) << sql;
    EXPECT_GE(masked->interval_hi, truth->value) << sql;
    EXPECT_LT(masked->interval_lo, masked->interval_hi);
  }
}

TEST(StatDatabaseTest, EveryQueryIsLoggedEvenWhenRefused) {
  ProtectionConfig config;
  config.mode = ProtectionMode::kQuerySetSize;
  config.min_query_set_size = 5;
  StatDatabase db(PaperDataset2(), config);
  ASSERT_TRUE(db.Query("SELECT COUNT(*) FROM t WHERE height < 150").ok());
  ASSERT_TRUE(db.Query("SELECT COUNT(*) FROM t WHERE height < 180").ok());
  EXPECT_EQ(db.query_log().size(), 2u);
  EXPECT_NE(db.query_log()[0].where.ToString(), "TRUE");
}

TEST(TrackerTest, FindTrackerLocatesUsablePadding) {
  ProtectionConfig config;
  config.mode = ProtectionMode::kQuerySetSize;
  config.min_query_set_size = 2;
  StatDatabase db(MakeClinicalTrial(60, 11), config);
  auto tracker = FindTracker(&db, "height", 140, 205);
  ASSERT_TRUE(tracker.has_value());
  // By construction both T and not-T are answerable.
  StatQuery probe;
  probe.fn = AggregateFn::kCount;
  probe.where = *tracker;
  auto a = db.Query(probe);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->refused);
}

TEST(TrackerTest, DefeatsQuerySetSizeControl) {
  // The Section 3 claim: size restriction alone cannot stop the tracker.
  ProtectionConfig config;
  config.mode = ProtectionMode::kQuerySetSize;
  config.min_query_set_size = 3;
  StatDatabase db(PaperDataset2(), config);

  const Predicate target = Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(165)),
      Predicate::Compare("weight", CompareOp::kGt, Value(105)));
  // Direct query refused.
  StatQuery direct;
  direct.fn = AggregateFn::kCount;
  direct.where = target;
  auto refused = db.Query(direct);
  ASSERT_TRUE(refused.ok());
  EXPECT_TRUE(refused->refused);

  auto tracker = FindTracker(&db, "height", 150, 200);
  ASSERT_TRUE(tracker.has_value());
  auto attack = TrackerAttack(&db, target, "blood_pressure", *tracker);
  ASSERT_TRUE(attack.ok());
  ASSERT_TRUE(attack->succeeded) << attack->failure_reason;
  EXPECT_DOUBLE_EQ(attack->inferred_count, 1.0);
  EXPECT_DOUBLE_EQ(attack->inferred_sum, 146.0);  // the paper's leak
  EXPECT_GE(attack->queries_used, 8u);
}

TEST(TrackerTest, AuditModeStopsOrDistortsTheAttack) {
  ProtectionConfig config;
  config.mode = ProtectionMode::kAudit;
  config.min_query_set_size = 3;
  StatDatabase db(PaperDataset2(), config);
  const Predicate target = Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(165)),
      Predicate::Compare("weight", CompareOp::kGt, Value(105)));
  auto tracker = FindTracker(&db, "height", 150, 200);
  if (!tracker.has_value()) {
    SUCCEED() << "no tracker found under audit: attack blocked earlier";
    return;
  }
  auto attack = TrackerAttack(&db, target, "blood_pressure", *tracker);
  ASSERT_TRUE(attack.ok());
  // Overlap auditing refuses the padded pair (C or T) / (C or not T): the
  // two sets differ by the singleton target.
  EXPECT_FALSE(attack->succeeded);
}

TEST(TrackerTest, NoiseModeBlursTheInference) {
  ProtectionConfig config;
  config.mode = ProtectionMode::kOutputNoise;
  config.noise_fraction = 0.5;
  config.seed = 13;
  StatDatabase db(PaperDataset2(), config);
  const Predicate target = Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(165)),
      Predicate::Compare("weight", CompareOp::kGt, Value(105)));
  const Predicate tracker =
      Predicate::Compare("height", CompareOp::kLt, Value(175));
  auto attack = TrackerAttack(&db, target, "blood_pressure", tracker);
  ASSERT_TRUE(attack.ok());
  ASSERT_TRUE(attack->succeeded);  // nothing refused...
  // ...but the inferred value is off the true 146 (noise accumulates over
  // the 4 sum queries; exact agreement would be a miracle).
  EXPECT_GT(std::fabs(attack->inferred_sum - 146.0), 0.5);
}

}  // namespace
}  // namespace tripriv
