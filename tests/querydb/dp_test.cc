// Tests for the differential-privacy protection mode (the library's
// future-work extension of the paper's interactive-database strategies).

#include <cmath>

#include <gtest/gtest.h>

#include "querydb/protection.h"
#include "querydb/tracker.h"
#include "stats/descriptive.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

ProtectionConfig DpConfig(double epsilon, uint64_t seed = 3) {
  ProtectionConfig config;
  config.mode = ProtectionMode::kDifferentialPrivacy;
  config.epsilon = epsilon;
  config.seed = seed;
  return config;
}

TEST(DpTest, CountNoiseMatchesLaplaceScale) {
  DataTable data = MakeCensus(800, 3);
  StatDatabase db(data, DpConfig(0.5, 7));
  ProtectionConfig exact_config;
  exact_config.mode = ProtectionMode::kNone;
  StatDatabase exact(data, exact_config);
  const std::string sql = "SELECT COUNT(*) FROM c WHERE age >= 50";
  const double truth = exact.Query(sql)->value;
  std::vector<double> noise;
  for (int i = 0; i < 2000; ++i) {
    auto a = db.Query(sql);
    ASSERT_TRUE(a.ok());
    ASSERT_FALSE(a->refused);
    noise.push_back(a->value - truth);
  }
  // Laplace(1/0.5 = 2): mean 0, sd = sqrt(2)*2 ~ 2.83 (plus rounding).
  EXPECT_NEAR(Mean(noise), 0.0, 0.25);
  EXPECT_NEAR(SampleStddev(noise), std::sqrt(2.0) * 2.0, 0.5);
}

TEST(DpTest, LargerEpsilonMeansLessNoise) {
  DataTable data = MakeCensus(800, 5);
  const std::string sql = "SELECT COUNT(*) FROM c WHERE age < 40";
  auto spread = [&](double epsilon) {
    StatDatabase db(data, DpConfig(epsilon, 11));
    std::vector<double> answers;
    for (int i = 0; i < 400; ++i) answers.push_back(db.Query(sql)->value);
    return SampleStddev(answers);
  };
  EXPECT_GT(spread(0.1), spread(1.0));
  EXPECT_GT(spread(1.0), spread(10.0));
}

TEST(DpTest, CountsAreNonNegativeIntegers) {
  DataTable data = MakeCensus(100, 7);
  StatDatabase db(data, DpConfig(0.05, 13));  // very noisy
  for (int i = 0; i < 200; ++i) {
    auto a = db.Query("SELECT COUNT(*) FROM c WHERE age = 30");
    ASSERT_TRUE(a.ok());
    EXPECT_GE(a->value, 0.0);
    EXPECT_DOUBLE_EQ(a->value, std::round(a->value));
  }
}

TEST(DpTest, SumUsesRangeSensitivity) {
  DataTable data = MakeCensus(2000, 9);
  StatDatabase db(data, DpConfig(1.0, 17));
  ProtectionConfig exact_config;
  exact_config.mode = ProtectionMode::kNone;
  StatDatabase exact(data, exact_config);
  const std::string sql = "SELECT SUM(income) FROM c WHERE age >= 40";
  const double truth = exact.Query(sql)->value;
  std::vector<double> noise;
  for (int i = 0; i < 500; ++i) noise.push_back(db.Query(sql)->value - truth);
  const auto incomes = data.NumericColumn("income").value();
  const double range = Max(incomes) - Min(incomes);
  // Laplace(range / 1.0): sd = sqrt(2) * range.
  EXPECT_NEAR(SampleStddev(noise) / (std::sqrt(2.0) * range), 1.0, 0.2);
}

TEST(DpTest, AvgSplitsBudgetAndStaysReasonable) {
  DataTable data = MakeCensus(2000, 11);
  StatDatabase db(data, DpConfig(2.0, 19));
  ProtectionConfig exact_config;
  exact_config.mode = ProtectionMode::kNone;
  StatDatabase exact(data, exact_config);
  const std::string sql = "SELECT AVG(income) FROM c WHERE education >= 10";
  const double truth = exact.Query(sql)->value;
  std::vector<double> answers;
  for (int i = 0; i < 200; ++i) {
    auto a = db.Query(sql);
    ASSERT_TRUE(a.ok());
    if (!a->refused) answers.push_back(a->value);
  }
  ASSERT_GT(answers.size(), 150u);
  // The average over many noisy answers should approach the truth.
  EXPECT_NEAR(Mean(answers) / truth, 1.0, 0.1);
}

TEST(DpTest, ConstantColumnSumIsStillNoised) {
  // A constant column has range 0; if the range were used verbatim as the
  // sensitivity, the Laplace scale would collapse to 0 and SUM would come
  // back exact — leaking the true value. The mechanism must fall back to a
  // sensitivity of 1 and keep noising.
  Schema schema({{"id", AttributeType::kInteger, AttributeRole::kIdentifier},
                 {"dose", AttributeType::kReal, AttributeRole::kConfidential}});
  DataTable data(schema);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(data.AppendRow({Value(int64_t{i}), Value(2.5)}).ok());
  }
  StatDatabase db(data, DpConfig(1.0, 23));
  const double truth = 50 * 2.5;
  int exact_hits = 0;
  for (int i = 0; i < 200; ++i) {
    auto a = db.Query("SELECT SUM(dose) FROM t");
    ASSERT_TRUE(a.ok());
    ASSERT_FALSE(a->refused);
    if (a->value == truth) ++exact_hits;
  }
  // Laplace(1/1.0) noise makes an exact hit measure-zero; a streak of them
  // means the noise collapsed.
  EXPECT_LT(exact_hits, 5);
}

TEST(DpTest, MinMaxAreRefused) {
  DataTable data = MakeCensus(100, 13);
  StatDatabase db(data, DpConfig(1.0));
  auto min = db.Query("SELECT MIN(income) FROM c");
  auto max = db.Query("SELECT MAX(income) FROM c");
  ASSERT_TRUE(min.ok() && max.ok());
  EXPECT_TRUE(min->refused);
  EXPECT_TRUE(max->refused);
}

TEST(DpTest, InvalidEpsilonFails) {
  DataTable data = MakeCensus(50, 15);
  StatDatabase db(data, DpConfig(0.0));
  auto a = db.Query("SELECT COUNT(*) FROM c");
  EXPECT_FALSE(a.ok());
}

TEST(DpTest, TrackerInferenceIsBlurred) {
  // Unlike size restriction, DP answers everything — but the tracker's
  // arithmetic no longer recovers the exact respondent value.
  DataTable data = MakeClinicalTrial(120, 17);
  ASSERT_TRUE(data.AppendRow({Value(160), Value(110), Value(146), Value("N")})
                  .ok());
  StatDatabase db(data, DpConfig(1.0, 21));
  const Predicate target = Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(165)),
      Predicate::Compare("weight", CompareOp::kGt, Value(105)));
  const Predicate tracker =
      Predicate::Compare("height", CompareOp::kLt, Value(172));
  auto attack = TrackerAttack(&db, target, "blood_pressure", tracker);
  ASSERT_TRUE(attack.ok());
  ASSERT_TRUE(attack->succeeded);
  EXPECT_GT(std::fabs(attack->inferred_sum - 146.0), 1.0);
}

}  // namespace
}  // namespace tripriv
