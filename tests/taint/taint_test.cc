// tripriv_taint golden fixtures: each seeded flow under
// tests/taint/fixtures/ must fire exactly its rule at exactly its line, and
// the sanitized flow must stay silent. The fixtures are real files (not
// inline strings) so they double as readable documentation of what the
// analyzer catches — and so the paths in the assertions match what a CI
// SARIF consumer would see.

#include "taint/analyzer.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace tripriv {
namespace taint {
namespace {

/// Analyzes one fixture file as its own program.
AnalysisResult AnalyzeFixture(const std::string& name) {
  const std::string dir = TRIPRIV_TAINT_FIXTURE_DIR;
  AnalysisResult result;
  std::string error;
  EXPECT_TRUE(AnalyzePaths(dir, {dir + "/" + name}, &result, &error)) << error;
  return result;
}

TEST(TaintFixtureTest, TwoHopLeakFiresAtTheCallSite) {
  // ReadCell (source) -> RenderRow (return propagation) -> LogLine (derived
  // sink via EmitLine): neither hop is annotated, yet the meeting point in
  // Handle is a finding — the interprocedural case a lexical lint cannot see.
  const auto result = AnalyzeFixture("two_hop_leak.cc");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  const auto& d = result.diagnostics[0];
  EXPECT_EQ(d.file, "two_hop_leak.cc");
  EXPECT_EQ(d.line, 30);
  EXPECT_EQ(d.rule, "taint-flow-to-sink");
  EXPECT_NE(d.message.find("LogLine"), std::string::npos);
  // The wrapper was discovered, not declared: LogLine carries no TRIPRIV_SINK
  // annotation of its own.
  EXPECT_GE(result.stats.derived_sinks, 1u);
}

TEST(TaintFixtureTest, SanitizedDigestFlowIsClean) {
  // Digest64 caps the record-level cell at aggregate before EmitLine sees
  // it, so the identical call shape produces no finding.
  const auto result = AnalyzeFixture("sanitized_digest.cc");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.stats.sanitizers, 1u);
}

TEST(TaintFixtureTest, UnorderedIterationIntoDigestFires) {
  const auto result = AnalyzeFixture("unordered_digest.cc");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  const auto& d = result.diagnostics[0];
  EXPECT_EQ(d.file, "unordered_digest.cc");
  EXPECT_EQ(d.line, 21);
  EXPECT_EQ(d.rule, "taint-unordered-digest");
  EXPECT_NE(d.message.find("counts"), std::string::npos);
}

TEST(TaintFixtureTest, RngDrawInParallelForFires) {
  const auto result = AnalyzeFixture("rng_in_parallel.cc");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  const auto& d = result.diagnostics[0];
  EXPECT_EQ(d.file, "rng_in_parallel.cc");
  EXPECT_EQ(d.line, 24);
  EXPECT_EQ(d.rule, "taint-rng-in-parallel");
  EXPECT_NE(d.message.find("Laplace"), std::string::npos);
}

TEST(TaintFixtureTest, CorpusAnalyzedTogetherYieldsExactlyTheThreeSeeds) {
  // Same-named helpers across fixtures (Table, EmitLine) merge
  // conservatively; the merged program still reports exactly the three
  // seeded findings, sorted by file then line.
  const std::string dir = TRIPRIV_TAINT_FIXTURE_DIR;
  AnalysisResult result;
  std::string error;
  ASSERT_TRUE(AnalyzePaths(dir,
                           {dir + "/rng_in_parallel.cc",
                            dir + "/sanitized_digest.cc",
                            dir + "/two_hop_leak.cc",
                            dir + "/unordered_digest.cc"},
                           &result, &error))
      << error;
  ASSERT_EQ(result.diagnostics.size(), 3u);
  EXPECT_EQ(result.diagnostics[0].rule, "taint-rng-in-parallel");
  EXPECT_EQ(result.diagnostics[1].rule, "taint-flow-to-sink");
  EXPECT_EQ(result.diagnostics[2].rule, "taint-unordered-digest");
}

TEST(TaintSuppressionTest, NamedNolintSilencesTheSinkFinding) {
  // The escape hatch for sanctioned carriers: a NOLINTNEXTLINE directly
  // above the reported call stops the finding (and, at a sink seam, would
  // stop derived-sink propagation through that edge).
  const std::string src =
      "#include \"core/annotations.h\"\n"
      "TRIPRIV_SINK(wire)\n"
      "void Emit(const std::string& line);\n"
      "TRIPRIV_SENSITIVE(record)\n"
      "std::string ReadCell();\n"
      "void Spill() {\n"
      "  // NOLINTNEXTLINE(taint-flow-to-sink): sanctioned carrier\n"
      "  Emit(ReadCell());\n"
      "}\n";
  const AnalysisResult suppressed =
      Analyze({ParseFile("inline_fixture.cc", src)});
  EXPECT_TRUE(suppressed.diagnostics.empty());
  // Without the marker the identical program is a finding.
  std::string bare = src;
  const std::string marker =
      "  // NOLINTNEXTLINE(taint-flow-to-sink): sanctioned carrier\n";
  bare.erase(bare.find(marker), marker.size());
  const AnalysisResult reported =
      Analyze({ParseFile("inline_fixture.cc", bare)});
  ASSERT_EQ(reported.diagnostics.size(), 1u);
  EXPECT_EQ(reported.diagnostics[0].rule, "taint-flow-to-sink");
  EXPECT_EQ(reported.diagnostics[0].line, 7);
}

TEST(TaintRuleNamesTest, RuleNamesAreStable) {
  const std::vector<std::string> expected = {
      "taint-flow-to-sink", "taint-unordered-digest", "taint-rng-in-parallel"};
  EXPECT_EQ(TaintRuleNames(), expected);
}

}  // namespace
}  // namespace taint
}  // namespace tripriv
