// Golden fixture: a record-level cell crosses two clean-looking hops —
// RenderRow propagates the source's sensitivity through its return value,
// LogLine forwards its parameter into the annotated sink (derived sink) —
// so the one finding is the call in Handle where the two chains meet.
#include "core/annotations.h"

#include <cstddef>
#include <string>

namespace fixture {

class Table {
 public:
  TRIPRIV_SENSITIVE(record)
  std::string ReadCell(std::size_t r, std::size_t c) const;
};

TRIPRIV_SINK(wire)
void EmitLine(const std::string& line);

std::string RenderRow(const Table& t, std::size_t r) {
  return t.ReadCell(r, 0) + "|" + t.ReadCell(r, 1);
}

void LogLine(const std::string& line) {
  EmitLine("row: " + line);
}

void Handle(const Table& t) {
  LogLine(RenderRow(t, 0));  // the two-hop leak: the only finding
}

}  // namespace fixture
