// Golden fixture: determinism rule 2. Drawing from the seeded Rng inside a
// ParallelFor shard ties the noise stream to the thread schedule; the draw
// must happen serially, before the parallel section, with results passed in.
#include "core/annotations.h"

#include <cstddef>

namespace fixture {

class Rng {
 public:
  TRIPRIV_SENSITIVE(record)
  double Laplace(double mu, double b);
};

class ThreadPool {
 public:
  void ParallelFor(std::size_t n, void (*fn)(std::size_t, std::size_t));
};

void Perturb(ThreadPool* pool, Rng* rng, double* out, std::size_t n) {
  pool->ParallelFor(n, [rng, out](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = rng->Laplace(0.0, 1.0);  // schedule-dependent draw: finding
    }
  });
}

}  // namespace fixture
