// Golden fixture: the same source-to-sink shape as two_hop_leak.cc, but
// Digest64 caps the record-level cell at aggregate (TRIPRIV_SANITIZES)
// before emission — the whole file must analyze clean.
#include "core/annotations.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace fixture {

class Table {
 public:
  TRIPRIV_SENSITIVE(record)
  std::string ReadCell(std::size_t r, std::size_t c) const;
};

TRIPRIV_SANITIZES(aggregate, digest)
std::uint64_t Digest64(const std::string& bytes);

TRIPRIV_SINK(wire)
void EmitLine(const std::string& line);

void Publish(const Table& t) {
  const std::uint64_t d = Digest64(t.ReadCell(0, 0));
  EmitLine("cell digest: " + std::to_string(d));
}

}  // namespace fixture
