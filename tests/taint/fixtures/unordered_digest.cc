// Golden fixture: determinism rule 1. CountFingerprint folds an unordered
// map's elements into an order-sensitive digest, so its value depends on
// hash order; the finding is the Mix64 call inside the loop.
#include "core/annotations.h"

#include <cstdint>
#include <string>
#include <unordered_map>

namespace fixture {

TRIPRIV_SANITIZES(aggregate, digest)
std::uint64_t Mix64(std::uint64_t h, std::uint64_t v);

std::unordered_map<std::string, std::uint64_t> CollectCounts();

std::uint64_t CountFingerprint() {
  std::unordered_map<std::string, std::uint64_t> counts = CollectCounts();
  std::uint64_t h = 14695981039346656037ull;
  for (const auto& kv : counts) {
    h = Mix64(h, kv.second);  // hash-order-dependent digest: the finding
  }
  return h;
}

}  // namespace fixture
