// Tests for descriptive statistics, histograms, and linear algebra.

#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/linalg.h"
#include "util/random.h"

namespace tripriv {
namespace {

TEST(DescriptiveTest, MeanVarianceKnownValues) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(PopulationVariance(v), 4.0);
  EXPECT_NEAR(SampleVariance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(SampleStddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, CovarianceAndCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z{10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(SampleCovariance(x, y), 5.0);
  // Constant vector: correlation defined as 0.
  std::vector<double> c{3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, c), 0.0);
}

TEST(DescriptiveTest, QuantilesAndMedian) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(Median({7.0}), 7.0);
}

TEST(DescriptiveTest, MinMax) {
  std::vector<double> v{3, -1, 7, 0};
  EXPECT_DOUBLE_EQ(Min(v), -1.0);
  EXPECT_DOUBLE_EQ(Max(v), 7.0);
}

TEST(DescriptiveTest, MatrixStats) {
  std::vector<std::vector<double>> m{{1, 10}, {2, 20}, {3, 30}};
  EXPECT_EQ(ColumnMeans(m), (std::vector<double>{2, 20}));
  auto cov = CovarianceMatrix(m);
  EXPECT_DOUBLE_EQ(cov[0][0], 1.0);
  EXPECT_DOUBLE_EQ(cov[1][1], 100.0);
  EXPECT_DOUBLE_EQ(cov[0][1], 10.0);
  EXPECT_DOUBLE_EQ(cov[0][1], cov[1][0]);
  auto corr = CorrelationMatrix(m);
  EXPECT_NEAR(corr[0][1], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(corr[0][0], 1.0);
}

TEST(DescriptiveTest, Distances) {
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  std::vector<std::vector<double>> a{{1, 2}, {3, 4}};
  std::vector<std::vector<double>> b{{1, 2}, {3, 6}};
  EXPECT_DOUBLE_EQ(MatrixSse(a, b), 4.0);
}

TEST(HistogramTest, BinAssignmentAndClamping) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.BinIndex(0.0), 0u);
  EXPECT_EQ(h.BinIndex(1.99), 0u);
  EXPECT_EQ(h.BinIndex(2.0), 1u);
  EXPECT_EQ(h.BinIndex(9.99), 4u);
  EXPECT_EQ(h.BinIndex(10.0), 4u);   // clamped
  EXPECT_EQ(h.BinIndex(-5.0), 0u);   // clamped
  EXPECT_EQ(h.BinIndex(100.0), 4u);  // clamped
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(4), 9.0);
}

TEST(HistogramTest, ProbabilitiesSumToOne) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.Normal(5, 2));
  Histogram h = Histogram::FromValues(values, -5, 15, 40);
  auto p = h.Probabilities();
  double sum = 0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(h.ApproxMean(), 5.0, 0.3);
  EXPECT_DOUBLE_EQ(h.total(), 1000.0);
}

TEST(HistogramTest, EmptyHistogramUniformProbabilities) {
  Histogram h(0, 1, 4);
  auto p = h.Probabilities();
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(DistanceTest, TotalVariation) {
  EXPECT_DOUBLE_EQ(TotalVariation({1, 0}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(TotalVariation({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(TotalVariation({0.75, 0.25}, {0.25, 0.75}), 0.5);
}

TEST(DistanceTest, KsStatistic) {
  std::vector<double> a{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(KsStatistic(a, a), 0.0);
  std::vector<double> b{101, 102, 103};
  EXPECT_DOUBLE_EQ(KsStatistic(a, b), 1.0);  // disjoint supports
  Rng rng(5);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 4000; ++i) {
    x.push_back(rng.Normal(0, 1));
    y.push_back(rng.Normal(0, 1));
  }
  EXPECT_LT(KsStatistic(x, y), 0.05);  // same distribution
}

TEST(DistanceTest, ChiSquare) {
  EXPECT_DOUBLE_EQ(ChiSquareStatistic({10, 10}, {10, 10}), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquareStatistic({12, 8}, {10, 10}), 0.8);
  // Zero expected bins are skipped rather than dividing by zero.
  EXPECT_DOUBLE_EQ(ChiSquareStatistic({5, 5}, {0, 10}), 2.5);
}

TEST(DistanceTest, Hellinger) {
  EXPECT_DOUBLE_EQ(HellingerDistance({1, 0}, {1, 0}), 0.0);
  EXPECT_NEAR(HellingerDistance({1, 0}, {0, 1}), 1.0, 1e-12);
  EXPECT_GT(HellingerDistance({0.6, 0.4}, {0.4, 0.6}), 0.0);
}

TEST(LinalgTest, CholeskyReconstructs) {
  std::vector<std::vector<double>> a{{4, 2}, {2, 3}};
  auto l = CholeskyDecompose(a);
  ASSERT_TRUE(l.ok());
  // L L^T == A
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      double s = 0;
      for (size_t k = 0; k < 2; ++k) s += (*l)[i][k] * (*l)[j][k];
      EXPECT_NEAR(s, a[i][j], 1e-12);
    }
  }
  EXPECT_DOUBLE_EQ((*l)[0][1], 0.0);  // lower triangular
}

TEST(LinalgTest, CholeskySemidefiniteGetsJitter) {
  // Rank-1 matrix (semidefinite): jitter should rescue it.
  std::vector<std::vector<double>> a{{1, 1}, {1, 1}};
  EXPECT_TRUE(CholeskyDecompose(a).ok());
}

TEST(LinalgTest, CholeskyRejectsIndefinite) {
  std::vector<std::vector<double>> a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyDecompose(a).ok());
  std::vector<std::vector<double>> ragged{{1, 2}};
  EXPECT_FALSE(CholeskyDecompose(ragged).ok());
}

TEST(LinalgTest, MultivariateNormalMatchesMoments) {
  std::vector<std::vector<double>> cov{{2.0, 0.8}, {0.8, 1.0}};
  auto l = CholeskyDecompose(cov);
  ASSERT_TRUE(l.ok());
  Rng rng(11);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(MultivariateNormalSample({5.0, -3.0}, *l, &rng));
  }
  const auto means = ColumnMeans(samples);
  EXPECT_NEAR(means[0], 5.0, 0.05);
  EXPECT_NEAR(means[1], -3.0, 0.05);
  const auto est = CovarianceMatrix(samples);
  EXPECT_NEAR(est[0][0], 2.0, 0.1);
  EXPECT_NEAR(est[0][1], 0.8, 0.05);
  EXPECT_NEAR(est[1][1], 1.0, 0.05);
}

TEST(LinalgTest, MatVecAndFrobenius) {
  std::vector<std::vector<double>> m{{1, 2}, {3, 4}};
  EXPECT_EQ(MatVec(m, {1, 1}), (std::vector<double>{3, 7}));
  EXPECT_NEAR(FrobeniusNorm(m), std::sqrt(30.0), 1e-12);
}

}  // namespace
}  // namespace tripriv
