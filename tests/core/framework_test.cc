// Tests for the framework enums, technology classes, and the advisor.

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/framework.h"
#include "core/technology.h"
#include "sdc/anonymity.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

TEST(FrameworkTest, GradeBands) {
  EXPECT_EQ(GradeFromScore(0.0), Grade::kNone);
  EXPECT_EQ(GradeFromScore(0.19), Grade::kNone);
  EXPECT_EQ(GradeFromScore(0.2), Grade::kLow);
  EXPECT_EQ(GradeFromScore(0.45), Grade::kMedium);
  EXPECT_EQ(GradeFromScore(0.65), Grade::kMediumHigh);
  EXPECT_EQ(GradeFromScore(0.8), Grade::kHigh);
  EXPECT_EQ(GradeFromScore(1.0), Grade::kHigh);
}

TEST(FrameworkTest, GradeAgreementIsWithinOneBand) {
  EXPECT_TRUE(GradesAgree(Grade::kMedium, Grade::kMedium));
  EXPECT_TRUE(GradesAgree(Grade::kMedium, Grade::kMediumHigh));
  EXPECT_TRUE(GradesAgree(Grade::kMedium, Grade::kLow));
  EXPECT_FALSE(GradesAgree(Grade::kNone, Grade::kMedium));
  EXPECT_FALSE(GradesAgree(Grade::kHigh, Grade::kMedium));
}

TEST(FrameworkTest, Names) {
  EXPECT_STREQ(DimensionToString(Dimension::kRespondent), "respondent");
  EXPECT_STREQ(DimensionToString(Dimension::kOwner), "owner");
  EXPECT_STREQ(DimensionToString(Dimension::kUser), "user");
  EXPECT_STREQ(GradeToString(Grade::kMediumHigh), "medium-high");
  EXPECT_STREQ(GradeToString(Grade::kNone), "none");
}

TEST(TechnologyTest, PirMembershipAndBase) {
  EXPECT_FALSE(IncludesPir(TechnologyClass::kSdc));
  EXPECT_FALSE(IncludesPir(TechnologyClass::kCryptoPpdm));
  EXPECT_TRUE(IncludesPir(TechnologyClass::kPir));
  EXPECT_TRUE(IncludesPir(TechnologyClass::kSdcPlusPir));
  EXPECT_EQ(BaseClass(TechnologyClass::kSdcPlusPir), TechnologyClass::kSdc);
  EXPECT_EQ(BaseClass(TechnologyClass::kGenericNonCryptoPpdmPlusPir),
            TechnologyClass::kGenericNonCryptoPpdm);
  EXPECT_EQ(BaseClass(TechnologyClass::kSdc), TechnologyClass::kSdc);
}

TEST(TechnologyTest, CompositionRules) {
  auto sdc = ComposeWithPir(TechnologyClass::kSdc);
  ASSERT_TRUE(sdc.ok());
  EXPECT_EQ(*sdc, TechnologyClass::kSdcPlusPir);
  // Section 4: crypto PPDM cannot compose with PIR.
  auto crypto = ComposeWithPir(TechnologyClass::kCryptoPpdm);
  ASSERT_FALSE(crypto.ok());
  EXPECT_EQ(crypto.status().code(), StatusCode::kFailedPrecondition);
  // Idempotence guard.
  EXPECT_FALSE(ComposeWithPir(TechnologyClass::kPir).ok());
  EXPECT_FALSE(ComposeWithPir(TechnologyClass::kSdcPlusPir).ok());
}

TEST(TechnologyTest, Table2ClaimsTranscribedFaithfully) {
  // Spot-check the verbatim Table 2 transcription.
  EXPECT_EQ(PaperClaimedGrade(TechnologyClass::kSdc, Dimension::kRespondent),
            Grade::kMediumHigh);
  EXPECT_EQ(PaperClaimedGrade(TechnologyClass::kSdc, Dimension::kUser),
            Grade::kNone);
  EXPECT_EQ(PaperClaimedGrade(TechnologyClass::kCryptoPpdm, Dimension::kOwner),
            Grade::kHigh);
  EXPECT_EQ(PaperClaimedGrade(TechnologyClass::kPir, Dimension::kRespondent),
            Grade::kNone);
  EXPECT_EQ(PaperClaimedGrade(TechnologyClass::kPir, Dimension::kUser),
            Grade::kHigh);
  EXPECT_EQ(PaperClaimedGrade(TechnologyClass::kUseSpecificNonCryptoPpdmPlusPir,
                              Dimension::kUser),
            Grade::kMedium);
  EXPECT_EQ(PaperClaimedGrade(TechnologyClass::kGenericNonCryptoPpdmPlusPir,
                              Dimension::kUser),
            Grade::kHigh);
}

TEST(AdvisorTest, SingleDimensionRecommendations) {
  PrivacyRequirements user_only;
  user_only.user = true;
  auto r = RecommendTechnology(user_only);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->technology, TechnologyClass::kPir);

  PrivacyRequirements owner_only;
  owner_only.owner = true;
  r = RecommendTechnology(owner_only);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->technology, TechnologyClass::kCryptoPpdm);

  PrivacyRequirements resp_only;
  resp_only.respondent = true;
  r = RecommendTechnology(resp_only);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->technology, TechnologyClass::kSdc);
}

TEST(AdvisorTest, PairsFollowSection6) {
  PrivacyRequirements resp_owner;
  resp_owner.respondent = true;
  resp_owner.owner = true;
  auto r = RecommendTechnology(resp_owner);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->technology, TechnologyClass::kGenericNonCryptoPpdm);

  PrivacyRequirements resp_user;
  resp_user.respondent = true;
  resp_user.user = true;
  r = RecommendTechnology(resp_user);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->technology, TechnologyClass::kSdcPlusPir);

  PrivacyRequirements owner_user;
  owner_user.owner = true;
  owner_user.user = true;
  r = RecommendTechnology(owner_user);
  ASSERT_TRUE(r.ok());
  // Crypto PPDM ruled out by user privacy.
  EXPECT_EQ(r->technology, TechnologyClass::kGenericNonCryptoPpdmPlusPir);
  EXPECT_FALSE(IncludesPir(TechnologyClass::kCryptoPpdm));
}

TEST(AdvisorTest, AllThreeDimensionsGiveTheSection6Recipe) {
  PrivacyRequirements all;
  all.respondent = all.owner = all.user = true;
  auto r = RecommendTechnology(all);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->technology, TechnologyClass::kGenericNonCryptoPpdmPlusPir);
  EXPECT_FALSE(r->rationale.empty());
}

TEST(AdvisorTest, NoRequirementsRejected) {
  EXPECT_FALSE(RecommendTechnology(PrivacyRequirements{}).ok());
}

TEST(AdvisorTest, Section6RecipeDeliversKAnonymity) {
  DataTable data = MakeClinicalTrial(120, 5);
  for (size_t k : {3u, 6u}) {
    auto deployment = ApplySection6Recipe(data, k);
    ASSERT_TRUE(deployment.ok()) << deployment.status().ToString();
    EXPECT_GE(deployment->anonymity_level, k);
    EXPECT_GE(AnonymityLevel(deployment->release), k);
    EXPECT_EQ(deployment->release.num_rows(), data.num_rows());
  }
}

}  // namespace
}  // namespace tripriv
