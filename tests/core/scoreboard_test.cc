// Remaining coverage for the evaluator's rendering and the crypto-PPDM
// scoring path.

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

TEST(ScoreboardTest, NoClaimsVariantOmitsPaperColumn) {
  PrivacyEvaluator::Options options;
  options.pir_trials = 8;
  PrivacyEvaluator evaluator(MakeExtendedTrial(120, 3), options);
  auto eval = evaluator.Evaluate(TechnologyClass::kPir);
  ASSERT_TRUE(eval.ok());
  const std::string board =
      PrivacyEvaluator::FormatScoreboard({*eval}, /*with_claims=*/false);
  EXPECT_EQ(board.find("paper:"), std::string::npos);
  EXPECT_NE(board.find("PIR"), std::string::npos);
  EXPECT_NE(board.find("respondent"), std::string::npos);
  EXPECT_NE(board.find("user"), std::string::npos);
}

TEST(ScoreboardTest, AgreesWithPaperHelper) {
  PrivacyEvaluator::Options options;
  options.pir_trials = 8;
  PrivacyEvaluator evaluator(MakeExtendedTrial(150, 5), options);
  auto eval = evaluator.Evaluate(TechnologyClass::kCryptoPpdm);
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval->AgreesWithPaper());
}

TEST(ScoreboardTest, CryptoScoresDeterministicInSeed) {
  PrivacyEvaluator::Options options;
  options.seed = 17;
  PrivacyEvaluator a(MakeExtendedTrial(120, 7), options);
  PrivacyEvaluator b(MakeExtendedTrial(120, 7), options);
  auto ea = a.Evaluate(TechnologyClass::kCryptoPpdm);
  auto eb = b.Evaluate(TechnologyClass::kCryptoPpdm);
  ASSERT_TRUE(ea.ok() && eb.ok());
  EXPECT_DOUBLE_EQ(ea->scores.respondent, eb->scores.respondent);
  EXPECT_DOUBLE_EQ(ea->scores.owner, eb->scores.owner);
  EXPECT_DOUBLE_EQ(ea->scores.user, eb->scores.user);
}

TEST(ScoreboardTest, DimensionScoresAccessor) {
  DimensionScores scores;
  scores.respondent = 0.1;
  scores.owner = 0.2;
  scores.user = 0.3;
  EXPECT_DOUBLE_EQ(scores.of(Dimension::kRespondent), 0.1);
  EXPECT_DOUBLE_EQ(scores.of(Dimension::kOwner), 0.2);
  EXPECT_DOUBLE_EQ(scores.of(Dimension::kUser), 0.3);
}

TEST(ScoreboardTest, MorePirTrialsSharpenUserScore) {
  // With a 120-row release, the owner's guessing success is ~1/120 per
  // trial; the user score must stay high for any trial count.
  for (size_t trials : {4u, 16u, 64u}) {
    PrivacyEvaluator::Options options;
    options.pir_trials = trials;
    PrivacyEvaluator evaluator(MakeExtendedTrial(120, 9), options);
    auto eval = evaluator.Evaluate(TechnologyClass::kSdcPlusPir);
    ASSERT_TRUE(eval.ok());
    EXPECT_GE(eval->scores.user, 0.8) << trials;
  }
}

}  // namespace
}  // namespace tripriv
