// Tests for the empirical Table 2 scoring engine.

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

PrivacyEvaluator::Options FastOptions() {
  PrivacyEvaluator::Options options;
  options.pir_trials = 16;
  return options;
}

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() : evaluator_(MakeExtendedTrial(300, 11), FastOptions()) {}
  PrivacyEvaluator evaluator_;
};

TEST_F(EvaluatorTest, ScoresAreInRange) {
  for (TechnologyClass t : kAllTechnologyClasses) {
    auto eval = evaluator_.Evaluate(t);
    ASSERT_TRUE(eval.ok()) << TechnologyClassToString(t) << ": "
                           << eval.status().ToString();
    for (Dimension d : kAllDimensions) {
      const double s = eval->scores.of(d);
      EXPECT_GE(s, 0.0) << TechnologyClassToString(t);
      EXPECT_LE(s, 1.0) << TechnologyClassToString(t);
    }
  }
}

TEST_F(EvaluatorTest, PirAloneProtectsOnlyUsers) {
  auto eval = evaluator_.Evaluate(TechnologyClass::kPir);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->MeasuredGrade(Dimension::kRespondent), Grade::kNone);
  EXPECT_EQ(eval->MeasuredGrade(Dimension::kOwner), Grade::kNone);
  EXPECT_EQ(eval->MeasuredGrade(Dimension::kUser), Grade::kHigh);
}

TEST_F(EvaluatorTest, CryptoPpdmProtectsOwnersNotUsers) {
  auto eval = evaluator_.Evaluate(TechnologyClass::kCryptoPpdm);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->MeasuredGrade(Dimension::kOwner), Grade::kHigh);
  EXPECT_EQ(eval->MeasuredGrade(Dimension::kRespondent), Grade::kHigh);
  EXPECT_EQ(eval->MeasuredGrade(Dimension::kUser), Grade::kNone);
}

TEST_F(EvaluatorTest, SdcRespondentBeatsItsOwner) {
  // SDC masks the quasi-identifiers but publishes exact confidentials:
  // respondent protection must exceed owner protection (Table 2's
  // medium-high vs medium).
  auto eval = evaluator_.Evaluate(TechnologyClass::kSdc);
  ASSERT_TRUE(eval.ok());
  EXPECT_GT(eval->scores.respondent, eval->scores.owner);
  EXPECT_EQ(eval->MeasuredGrade(Dimension::kUser), Grade::kNone);
}

TEST_F(EvaluatorTest, PpdmOwnerBeatsSdcOwner) {
  // PPDM perturbs everything (including confidentials): its owner privacy
  // must exceed SDC's (Table 2's medium-high vs medium).
  auto sdc = evaluator_.Evaluate(TechnologyClass::kSdc);
  auto ppdm = evaluator_.Evaluate(TechnologyClass::kUseSpecificNonCryptoPpdm);
  ASSERT_TRUE(sdc.ok() && ppdm.ok());
  EXPECT_GT(ppdm->scores.owner, sdc->scores.owner);
}

TEST_F(EvaluatorTest, AddingPirOnlyChangesUserDimension) {
  auto base = evaluator_.Evaluate(TechnologyClass::kSdc);
  auto with_pir = evaluator_.Evaluate(TechnologyClass::kSdcPlusPir);
  ASSERT_TRUE(base.ok() && with_pir.ok());
  EXPECT_DOUBLE_EQ(base->scores.respondent, with_pir->scores.respondent);
  EXPECT_DOUBLE_EQ(base->scores.owner, with_pir->scores.owner);
  EXPECT_LT(base->scores.user, with_pir->scores.user);
  EXPECT_EQ(with_pir->MeasuredGrade(Dimension::kUser), Grade::kHigh);
}

TEST_F(EvaluatorTest, UseSpecificPirGivesMediumUserPrivacy) {
  auto eval =
      evaluator_.Evaluate(TechnologyClass::kUseSpecificNonCryptoPpdmPlusPir);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->MeasuredGrade(Dimension::kUser), Grade::kMedium);
}

TEST_F(EvaluatorTest, AllRowsAgreeWithPaperWithinOneBand) {
  // The headline Table 2 reproduction: every measured grade within one band
  // of the paper's claim.
  auto evals = evaluator_.EvaluateAll();
  ASSERT_TRUE(evals.ok()) << evals.status().ToString();
  ASSERT_EQ(evals->size(), 8u);
  for (const auto& eval : *evals) {
    for (Dimension d : kAllDimensions) {
      EXPECT_TRUE(GradesAgree(eval.ClaimedGrade(d), eval.MeasuredGrade(d)))
          << TechnologyClassToString(eval.technology) << " / "
          << DimensionToString(d) << ": measured "
          << GradeToString(eval.MeasuredGrade(d)) << " (" << eval.scores.of(d)
          << "), paper claims " << GradeToString(eval.ClaimedGrade(d));
    }
  }
}

TEST_F(EvaluatorTest, ScoreboardRendersAllRows) {
  auto evals = evaluator_.EvaluateAll();
  ASSERT_TRUE(evals.ok());
  const std::string board = PrivacyEvaluator::FormatScoreboard(*evals, true);
  for (TechnologyClass t : kAllTechnologyClasses) {
    EXPECT_NE(board.find(TechnologyClassToString(t)), std::string::npos);
  }
  EXPECT_NE(board.find("paper:"), std::string::npos);
}

TEST(EvaluatorEdgeTest, TinyTableRejected) {
  PrivacyEvaluator tiny(MakeExtendedTrial(5, 1), PrivacyEvaluator::Options{});
  EXPECT_FALSE(tiny.Evaluate(TechnologyClass::kSdc).ok());
}

}  // namespace
}  // namespace tripriv
