// Thread-count invariance for every attack (satellite S3): each attack's
// rendered outcome — and the whole empirical Table 2 — must be
// byte-identical at 0, 1, 2, and 8 worker threads. Attacks follow the
// serial-draw -> parallel-pure -> serial-merge discipline; this suite is
// the proof, and the TSan CI leg races it.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "attack/fingerprint.h"
#include "attack/linkage.h"
#include "attack/nussbaum.h"
#include "attack/profiling.h"
#include "attack/scoreboard.h"
#include "sdc/microaggregation.h"
#include "service/traffic/simulator.h"
#include "table/datasets.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace attack {
namespace {

constexpr size_t kThreadCounts[] = {0, 1, 2, 8};

/// Runs `fn(ctx)` at every thread count and asserts the rendered outcomes
/// are byte-identical.
template <typename Fn>
void ExpectThreadInvariant(Fn&& fn) {
  std::string reference;
  for (size_t threads : kThreadCounts) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    AttackContext ctx;
    ctx.pool = pool.get();
    Result<AttackOutcome> outcome = fn(ctx);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    const std::string rendered = OutcomeToJson(*outcome);
    if (reference.empty()) {
      reference = rendered;
    } else {
      EXPECT_EQ(rendered, reference) << "at " << threads << " threads";
    }
  }
}

TEST(AttackDeterminismTest, RecordLinkageExactAndBlocked) {
  const DataTable original = MakeCensusScale(600, 17);
  std::vector<size_t> qis;
  for (size_t c : original.schema().QuasiIdentifierIndices()) {
    if (original.schema().attribute(c).type != AttributeType::kCategorical) {
      qis.push_back(c);
    }
  }
  auto masked = MdavMicroaggregate(original, 5, qis, nullptr);
  ASSERT_TRUE(masked.ok());
  for (size_t bins : {size_t{0}, size_t{16}}) {
    LinkageConfig config;
    config.qi_cols = qis;
    config.block_bins = bins;
    ExpectThreadInvariant([&](const AttackContext& ctx) {
      return RunRecordLinkageAttack(original, masked->table, config, ctx);
    });
  }
}

TEST(AttackDeterminismTest, AttributeDisclosure) {
  const DataTable original = MakeCensusScale(500, 19);
  std::vector<size_t> qis;
  for (size_t c : original.schema().QuasiIdentifierIndices()) {
    if (original.schema().attribute(c).type != AttributeType::kCategorical) {
      qis.push_back(c);
    }
  }
  auto masked = MdavMicroaggregate(original, 4, qis, nullptr);
  ASSERT_TRUE(masked.ok());
  AttributeDisclosureConfig config;
  config.linkage.qi_cols = qis;
  config.linkage.block_bins = 12;
  auto income = original.schema().IndexOf("income");
  ASSERT_TRUE(income.ok());
  config.confidential_col = *income;
  ExpectThreadInvariant([&](const AttackContext& ctx) {
    return RunAttributeDisclosureAttack(original, masked->table, config, ctx);
  });
}

TEST(AttackDeterminismTest, MinMaxAndBucketReconstruction) {
  const DataTable original = MakeCensusScale(700, 23);
  auto income = original.schema().IndexOf("income");
  ASSERT_TRUE(income.ok());
  MinMaxQueryConfig minmax;
  minmax.order_col = original.schema().QuasiIdentifierIndices()[0];
  minmax.target_col = *income;
  minmax.window = 6;
  ExpectThreadInvariant([&](const AttackContext& ctx) {
    return RunMinMaxQueryAttack(original, original, minmax, ctx);
  });

  std::vector<size_t> bucket_of_row(original.num_rows());
  for (size_t r = 0; r < bucket_of_row.size(); ++r) bucket_of_row[r] = r / 50;
  BucketReconstructionConfig bucket;
  bucket.target_col = *income;
  ExpectThreadInvariant([&](const AttackContext& ctx) {
    return RunBucketReconstructionAttack(original, original, bucket_of_row,
                                         bucket, ctx);
  });
}

TEST(AttackDeterminismTest, FingerprintCollusion) {
  const DataTable base = MakeCensusScale(600, 29);
  CollusionAttackConfig config;
  config.codec.marks = 1024;
  config.codec.num_recipients = 12;
  config.colluders = 4;
  config.strategy = CollusionStrategy::kMajority;
  config.flip_fraction = 0.1;
  config.trials = 3;
  ExpectThreadInvariant([&](const AttackContext& ctx) {
    return RunCollusionAttack(base, config, ctx);
  });
}

TEST(AttackDeterminismTest, ProfilingAndSelectionView) {
  traffic::SimulatorConfig sim;
  sim.profile = traffic::TrafficProfile::Steady(31);
  sim.profile.num_principals = 64;
  sim.num_windows = 8;
  sim.record_access_trail = true;
  auto report = traffic::RunTrafficSimulation(sim, nullptr, nullptr);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->access_trail.empty());
  for (bool blinded : {false, true}) {
    ProfilingConfig config;
    config.pir_blinded = blinded;
    ExpectThreadInvariant([&](const AttackContext& ctx) {
      return RunQueryLogProfilingAttack(report->access_trail, config, ctx);
    });
  }
  for (bool pir : {false, true}) {
    SelectionViewConfig config;
    config.num_records = 128;
    config.trials = 24;
    config.pir = pir;
    ExpectThreadInvariant([&](const AttackContext& ctx) {
      return RunSelectionViewGuessingAttack(config, ctx);
    });
  }
}

TEST(AttackDeterminismTest, EmpiricalTable2RendersByteIdentical) {
  EmpiricalTable2Config config;
  config.rows = 800;
  config.fingerprint_marks = 512;
  config.fingerprint_trials = 2;
  config.traffic_windows = 6;
  config.selection_trials = 8;
  std::string text_ref;
  std::string json_ref;
  for (size_t threads : kThreadCounts) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    AttackContext ctx;
    ctx.pool = pool.get();
    auto board = RunEmpiricalTable2(config, ctx);
    ASSERT_TRUE(board.ok()) << board.status().ToString();
    if (text_ref.empty()) {
      text_ref = board->RenderText();
      json_ref = board->RenderJson();
    } else {
      EXPECT_EQ(board->RenderText(), text_ref)
          << "at " << threads << " threads";
      EXPECT_EQ(board->RenderJson(), json_ref)
          << "at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace attack
}  // namespace tripriv
