// The adversary harness: closed-form anchors, the risk.cc reconciliation
// (satellite S1), and the fingerprint codec's detection guarantees.

#include <gtest/gtest.h>

#include <cmath>

#include "attack/equivocation.h"
#include "attack/fingerprint.h"
#include "attack/linkage.h"
#include "attack/nussbaum.h"
#include "attack/profiling.h"
#include "attack/scoreboard.h"
#include "sdc/microaggregation.h"
#include "sdc/noise.h"
#include "sdc/risk.h"
#include "table/datasets.h"

namespace tripriv {
namespace attack {
namespace {

std::vector<size_t> NumericQis(const DataTable& t) {
  std::vector<size_t> out;
  for (size_t c : t.schema().QuasiIdentifierIndices()) {
    if (t.schema().attribute(c).type != AttributeType::kCategorical) {
      out.push_back(c);
    }
  }
  return out;
}

// --- equivocation closed forms (satellite S3) ---------------------------

TEST(EquivocationTest, UniformPriorIsLogN) {
  EXPECT_DOUBLE_EQ(UniformBits(1), 0.0);
  EXPECT_DOUBLE_EQ(UniformBits(2), 1.0);
  EXPECT_DOUBLE_EQ(UniformBits(1024), 10.0);
  // EntropyBits of a uniform histogram must agree exactly.
  EXPECT_DOUBLE_EQ(EntropyBits({1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(EntropyBits(std::vector<double>(8, 3.5)), 3.0);
}

TEST(EquivocationTest, DeterministicReleaseIsZero) {
  EXPECT_DOUBLE_EQ(EntropyBits({42.0}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyBits({0.0, 0.0, 7.0}), 0.0);  // one-hot
  EXPECT_DOUBLE_EQ(EntropyBits({}), 0.0);
  // Never the negative zero that would break byte-stable rendering.
  EXPECT_FALSE(std::signbit(EntropyBits({5.0})));
}

TEST(EquivocationTest, MeanCandidateBits) {
  // Tie sets of 1 and 4: (0 + 2) / 2.
  EXPECT_DOUBLE_EQ(MeanCandidateBits({1, 4}), 1.0);
  EXPECT_DOUBLE_EQ(MeanCandidateBits({}), 0.0);
}

// --- S1: the attack-side linkage must reconcile bitwise with sdc/risk.cc

TEST(LinkageReconciliationTest, ExactModeMatchesRiskBitwise) {
  const DataTable original = MakeCensusScale(400, 11);
  const std::vector<size_t> qis = NumericQis(original);
  auto masked = MdavMicroaggregate(original, 4, qis, nullptr);
  ASSERT_TRUE(masked.ok());

  auto risk = DistanceLinkageAttack(original, masked->table, qis);
  ASSERT_TRUE(risk.ok());

  LinkageConfig config;
  config.qi_cols = qis;
  config.block_bins = 0;  // exact mode: same scan as risk.cc
  AttackContext ctx;
  auto outcome = RunRecordLinkageAttack(original, masked->table, config, ctx);
  ASSERT_TRUE(outcome.ok());

  // Bitwise, not approximate: both sides standardize jointly, use the same
  // 1e-12 tie epsilon, and accumulate serially in row order.
  EXPECT_EQ(outcome->successes, risk->expected_correct);
  EXPECT_EQ(outcome->success_rate(), risk->correct_fraction);
  EXPECT_EQ(outcome->trials, risk->total);
  // And the drift risk.h documents: `correct` is a rounded rendering, so
  // deriving a rate from it would disagree whenever the expectation is
  // fractional. The attack side must never do that.
  EXPECT_EQ(risk->correct,
            static_cast<size_t>(std::llround(risk->expected_correct)));
}

TEST(LinkageReconciliationTest, BlockedModeNeverInflatesExactTies) {
  // On a verbatim release every link is an exact singleton tie; the blocked
  // attack must reproduce the perfect linkage, not approximate it away.
  const DataTable original = MakeCensusScale(300, 3);
  LinkageConfig config;
  config.qi_cols = NumericQis(original);
  config.block_bins = 16;
  AttackContext ctx;
  auto outcome = RunRecordLinkageAttack(original, original, config, ctx);
  ASSERT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome->success_rate(), 1.0);
  EXPECT_DOUBLE_EQ(outcome->equivocation_bits, 0.0);
}

TEST(LinkageTest, AttributeDisclosureWindowSemantics) {
  const DataTable original = MakeCensusScale(300, 5);
  AttributeDisclosureConfig config;
  config.linkage.qi_cols = NumericQis(original);
  config.linkage.block_bins = 0;
  auto income = original.schema().IndexOf("income");
  ASSERT_TRUE(income.ok());
  config.confidential_col = *income;
  AttackContext ctx;
  // Verbatim release: every tie-set mean is the true value.
  auto outcome = RunAttributeDisclosureAttack(original, original, config, ctx);
  ASSERT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome->success_rate(), 1.0);
}

// --- Nussbaum-Segal ------------------------------------------------------

TEST(NussbaumTest, MinMaxDifferencingRecoversVerbatimRelease) {
  const DataTable original = MakeCensusScale(500, 9);
  MinMaxQueryConfig config;
  config.order_col = NumericQis(original)[0];
  auto income = original.schema().IndexOf("income");
  ASSERT_TRUE(income.ok());
  config.target_col = *income;
  config.window = 5;
  AttackContext ctx;
  auto outcome = RunMinMaxQueryAttack(original, original, config, ctx);
  ASSERT_TRUE(outcome.ok());
  // Sliding-extreme differencing pins a large fraction of an unprotected
  // sequence; the paper's point is that size-restricted query interfaces
  // alone are not protection.
  EXPECT_GT(outcome->success_rate(), 0.5);
  EXPECT_EQ(outcome->trials, original.num_rows());
}

TEST(NussbaumTest, NoiseDefeatsDifferencing) {
  const DataTable original = MakeCensusScale(500, 9);
  auto income = original.schema().IndexOf("income");
  ASSERT_TRUE(income.ok());
  auto noised = AddUncorrelatedNoise(original, 1.0, {*income}, 21);
  ASSERT_TRUE(noised.ok());
  MinMaxQueryConfig config;
  config.order_col = NumericQis(original)[0];
  config.target_col = *income;
  config.window = 5;
  AttackContext ctx;
  auto clean = RunMinMaxQueryAttack(original, original, config, ctx);
  auto masked = RunMinMaxQueryAttack(original, *noised, config, ctx);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(masked.ok());
  EXPECT_LT(masked->success_rate(), clean->success_rate());
}

TEST(NussbaumTest, BucketReconstructionOnGroupedRelease) {
  const DataTable original = MakeCensusScale(400, 13);
  auto income = original.schema().IndexOf("income");
  ASSERT_TRUE(income.ok());
  // Trivial bucketing: 4 contiguous groups of 100.
  std::vector<size_t> bucket_of_row(original.num_rows());
  for (size_t r = 0; r < bucket_of_row.size(); ++r) bucket_of_row[r] = r / 100;
  BucketReconstructionConfig config;
  config.target_col = *income;
  AttackContext ctx;
  auto outcome = RunBucketReconstructionAttack(original, original,
                                               bucket_of_row, config, ctx);
  ASSERT_TRUE(outcome.ok());
  // Rank extremes are pinned exactly on a verbatim release, so success is
  // at least 2 rows per bucket / 100.
  EXPECT_GE(outcome->success_rate(), 8.0 / 400.0);
  EXPECT_EQ(outcome->records_total, original.num_rows());
}

// --- fingerprinting ------------------------------------------------------

TEST(FingerprintTest, CodewordsDifferAcrossSameParityRecipients) {
  // Regression: raw FNV-1a's low bit is a parity of input-byte low bits, so
  // without a finalizer recipients 0 and 2 would share every codeword bit.
  const DataTable base = MakeCensusScale(200, 7);
  FingerprintConfig config;
  config.marks = 256;
  config.num_recipients = 4;
  auto codec = FingerprintCodec::Create(base, config);
  ASSERT_TRUE(codec.ok());
  size_t differing = 0;
  for (size_t m = 0; m < config.marks; ++m) {
    if (codec->CodewordBit(0, m) != codec->CodewordBit(2, m)) ++differing;
  }
  // ~Binomial(256, 1/2); zero is the bug, and < 64 is astronomically
  // unlikely for an unbiased PRF.
  EXPECT_GT(differing, 64u);
  EXPECT_LT(differing, 192u);
}

TEST(FingerprintTest, DetectTracesSingleLeaker) {
  const DataTable base = MakeCensusScale(500, 7);
  FingerprintConfig config;
  config.marks = 1024;
  config.num_recipients = 10;
  auto codec = FingerprintCodec::Create(base, config);
  ASSERT_TRUE(codec.ok());
  auto copy = codec->Release(6);
  ASSERT_TRUE(copy.ok());
  auto detection = codec->Detect(*copy, nullptr);
  ASSERT_TRUE(detection.ok());
  EXPECT_TRUE(detection->accused);
  EXPECT_EQ(detection->recipient, 6u);
  EXPECT_DOUBLE_EQ(detection->score, 1024.0);  // perfect correlation
}

TEST(FingerprintTest, SurvivesMajorityCollusionWithFlips) {
  // The S6 gate's core claim at unit scale: 5-party majority collusion plus
  // 10% bit flips still traces a colluder on every trial.
  const DataTable base = MakeCensusScale(800, 7);
  CollusionAttackConfig config;
  config.codec.marks = 2048;
  config.codec.num_recipients = 20;
  config.colluders = 5;
  config.strategy = CollusionStrategy::kMajority;
  config.flip_fraction = 0.10;
  config.trials = 6;
  AttackContext ctx;
  auto outcome = RunCollusionAttack(base, config, ctx);
  ASSERT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome->success_rate(), 0.0);  // adversary never wins
  EXPECT_DOUBLE_EQ(outcome->equivocation_bits, 0.0);
}

TEST(FingerprintTest, HeavyFlippingErasesTheMark) {
  // Flipping every embedded bit at 50% destroys the correlation, so the
  // detector must stay below threshold instead of framing an innocent.
  const DataTable base = MakeCensusScale(500, 7);
  CollusionAttackConfig config;
  config.codec.marks = 1024;
  config.codec.num_recipients = 12;
  config.colluders = 1;
  config.strategy = CollusionStrategy::kRandom;
  config.flip_fraction = 0.5;
  config.trials = 4;
  AttackContext ctx;
  auto outcome = RunCollusionAttack(base, config, ctx);
  ASSERT_TRUE(outcome.ok());
  // With the mark gone the adversary keeps full deniability.
  EXPECT_DOUBLE_EQ(outcome->success_rate(), 1.0);
  EXPECT_DOUBLE_EQ(outcome->equivocation_bits,
                   UniformBits(config.codec.num_recipients));
}

// --- profiling / selection view ------------------------------------------

TEST(ProfilingTest, UnblindedLogDisclosesEverything) {
  std::vector<traffic::AccessEvent> trail;
  for (uint64_t i = 0; i < 30; ++i) {
    traffic::AccessEvent e;
    e.principal = i % 3;
    e.query_key = 100 + i % 7;
    trail.push_back(e);
  }
  AttackContext ctx;
  auto outcome = RunQueryLogProfilingAttack(trail, {}, ctx);
  ASSERT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome->success_rate(), 1.0);
  EXPECT_DOUBLE_EQ(outcome->equivocation_bits, 0.0);
  EXPECT_EQ(outcome->trials, trail.size());
}

TEST(ProfilingTest, BlindedLogScoresAtTheUniformPrior) {
  std::vector<traffic::AccessEvent> trail;
  for (uint64_t i = 0; i < 32; ++i) {
    traffic::AccessEvent e;
    e.principal = i % 4;
    e.query_key = i % 8;  // 8 distinct keys
    trail.push_back(e);
  }
  ProfilingConfig config;
  config.pir_blinded = true;
  AttackContext ctx;
  auto outcome = RunQueryLogProfilingAttack(trail, config, ctx);
  ASSERT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome->success_rate(), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(outcome->equivocation_bits, 3.0);  // log2(8)
  EXPECT_DOUBLE_EQ(outcome->prior_bits, 3.0);
}

TEST(SelectionViewTest, DirectReadsExposeTheTarget) {
  SelectionViewConfig config;
  config.num_records = 64;
  config.trials = 16;
  config.pir = false;
  AttackContext ctx;
  auto outcome = RunSelectionViewGuessingAttack(config, ctx);
  ASSERT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome->success_rate(), 1.0);
  EXPECT_DOUBLE_EQ(outcome->equivocation_bits, 0.0);
}

TEST(SelectionViewTest, PirViewIsUniform) {
  SelectionViewConfig config;
  config.num_records = 64;
  config.trials = 32;
  config.pir = true;
  AttackContext ctx;
  auto outcome = RunSelectionViewGuessingAttack(config, ctx);
  ASSERT_TRUE(outcome.ok());
  // One replica's view is marginally uniform; success collapses toward
  // chance (1/64) and the posterior stays at the full prior.
  EXPECT_LT(outcome->success_rate(), 0.2);
  EXPECT_DOUBLE_EQ(outcome->equivocation_bits, 6.0);
}

// --- scoreboard ----------------------------------------------------------

TEST(ScoreboardTest, EmptyCellFailsClosed) {
  Scoreboard board;
  for (TechnologyClass t : kScoreboardTechnologies) {
    for (Dimension d : kAllDimensions) {
      EXPECT_EQ(board.row(t).MeasuredGrade(d), Grade::kNone);
    }
  }
}

TEST(ScoreboardTest, AddRoutesByDimension) {
  Scoreboard board;
  AttackOutcome outcome;
  outcome.attack = "probe";
  outcome.dimension = Dimension::kOwner;
  outcome.trials = 10;
  outcome.successes = 1.0;
  board.Add(TechnologyClass::kPir, outcome);
  EXPECT_EQ(board.row(TechnologyClass::kPir).cells[1].outcomes.size(), 1u);
  EXPECT_EQ(board.row(TechnologyClass::kPir).MeasuredGrade(Dimension::kOwner),
            Grade::kHigh);  // 1 - 0.1 = 0.9
  EXPECT_EQ(board.row(TechnologyClass::kPir).MeasuredGrade(Dimension::kUser),
            Grade::kNone);  // untouched cell stays fail-closed
}

TEST(ScoreboardTest, EmpiricalTable2SmallRunAgreesOnAnchors) {
  EmpiricalTable2Config config;
  config.rows = 1500;
  config.fingerprint_marks = 1024;
  config.fingerprint_trials = 2;
  config.traffic_windows = 8;
  config.selection_trials = 16;
  AttackContext ctx;
  auto board = RunEmpiricalTable2(config, ctx);
  ASSERT_TRUE(board.ok());
  // The anchor cells the paper's Table 2 is unambiguous about.
  EXPECT_EQ(board->row(TechnologyClass::kCryptoPpdm)
                .MeasuredGrade(Dimension::kRespondent),
            Grade::kHigh);
  EXPECT_EQ(board->row(TechnologyClass::kPir).MeasuredGrade(Dimension::kUser),
            Grade::kHigh);
  EXPECT_EQ(
      board->row(TechnologyClass::kPir).MeasuredGrade(Dimension::kRespondent),
      Grade::kNone);
  EXPECT_EQ(
      board->row(TechnologyClass::kSdc).MeasuredGrade(Dimension::kUser),
      Grade::kNone);
  // Fingerprinting: the collusion battery must not dent traceability.
  EXPECT_EQ(board->row(TechnologyClass::kFingerprinting)
                .MeasuredGrade(Dimension::kOwner),
            Grade::kHigh);
  // Rendering mentions every row and the outcome log.
  const std::string text = board->RenderText();
  EXPECT_NE(text.find("Database fingerprinting"), std::string::npos);
  EXPECT_NE(text.find("attack outcomes:"), std::string::npos);
  const std::string json = board->RenderJson();
  EXPECT_NE(json.find("\"technology\":\"SDC\""), std::string::npos);
  EXPECT_NE(json.find("\"paper_row\":false"), std::string::npos);
}

TEST(AttackOutcomeTest, ProtectionScoreClampsAndFormats) {
  AttackOutcome outcome;
  outcome.trials = 4;
  outcome.successes = 5.0;  // expectation may exceed trials transiently
  EXPECT_DOUBLE_EQ(outcome.protection_score(), 0.0);
  EXPECT_EQ(FormatFixed(-0.0), "0.000000");
  AttackOutcome empty;
  EXPECT_DOUBLE_EQ(empty.success_rate(), 0.0);
}

}  // namespace
}  // namespace attack
}  // namespace tripriv
