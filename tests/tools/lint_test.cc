// tripriv_lint rule fixtures: one seeded violation per rule proves each rule
// fires at the right line with the right name; a clean fixture proves the
// absence of false positives on idiomatic project code; NOLINT fixtures
// prove every suppression form silences exactly the named rule.
//
// The fixtures are in-memory sources fed to LintSource with a chosen
// relative path, because rule applicability is path-scoped (e.g. wall clocks
// are legal in bench/, raw sends are legal in the fabric files).

#include "lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace tripriv {
namespace lint {
namespace {

/// All findings for `rule` in the result set.
std::vector<Diagnostic> ForRule(const std::vector<Diagnostic>& diags,
                                const std::string& rule) {
  std::vector<Diagnostic> out;
  for (const auto& d : diags) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

TEST(LintRuleTest, NoRawRngFires) {
  const std::string src =
      "#include <random>\n"
      "int Draw() {\n"
      "  std::mt19937 gen(42);\n"
      "  return static_cast<int>(gen());\n"
      "}\n";
  const auto diags = LintSource("src/sdc/bad_rng.cc", src);
  const auto hits = ForRule(diags, "no-raw-rng");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_NE(hits[0].message.find("mt19937"), std::string::npos);
}

TEST(LintRuleTest, NoRawRngAllowsTheRngImplementationItself) {
  // src/util/random.* is the one sanctioned home for generator internals.
  const std::string src = "std::mt19937 reference_check;\n";
  EXPECT_TRUE(ForRule(LintSource("src/util/random.cc", src), "no-raw-rng")
                  .empty());
  EXPECT_FALSE(
      ForRule(LintSource("src/util/other.cc", src), "no-raw-rng").empty());
}

TEST(LintRuleTest, NoWallClockFires) {
  const std::string src =
      "#include <chrono>\n"
      "long Now() {\n"
      "  return std::chrono::system_clock::now().time_since_epoch().count();\n"
      "}\n";
  const auto hits =
      ForRule(LintSource("src/smc/bad_clock.cc", src), "no-wall-clock");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_NE(hits[0].message.find("system_clock"), std::string::npos);
}

TEST(LintRuleTest, NoWallClockFlagsBareTimeCallButNotMembers) {
  const auto hits = ForRule(
      LintSource("src/util/t.cc", "long f() { return time(nullptr); }\n"),
      "no-wall-clock");
  ASSERT_EQ(hits.size(), 1u);
  // A member named time() is someone's simulated clock, not the libc call.
  EXPECT_TRUE(ForRule(LintSource("src/util/t.cc",
                                 "long g(Net* n) { return n->time(); }\n"),
                      "no-wall-clock")
                  .empty());
}

TEST(LintRuleTest, NoWallClockIsLegalInBench) {
  const std::string src =
      "#include <chrono>\n"
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(
      ForRule(LintSource("bench/bench_x.cc", src), "no-wall-clock").empty());
}

TEST(LintRuleTest, NoSensitiveLoggingFires) {
  const std::string src =
      "#include <iostream>\n"
      "void Dump(int secret) {\n"
      "  std::cout << secret;\n"
      "}\n";
  const auto diags = LintSource("src/querydb/bad_log.cc", src);
  const auto hits = ForRule(diags, "no-sensitive-logging");
  ASSERT_EQ(hits.size(), 2u);  // the include and the stream write
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_EQ(hits[1].line, 3);
}

TEST(LintRuleTest, NoSensitiveLoggingScopedToPrivacyLibraries) {
  // The same code is legal in tools/ (CLI output is the caller's business).
  const std::string src =
      "#include <iostream>\n"
      "void Report(int k) { std::cout << k; }\n";
  EXPECT_TRUE(ForRule(LintSource("tools/report.cc", src),
                      "no-sensitive-logging")
                  .empty());
  EXPECT_TRUE(ForRule(LintSource("src/table/x.cc", src),
                      "no-sensitive-logging")
                  .empty());
  EXPECT_FALSE(ForRule(LintSource("src/pir/x.cc", src),
                       "no-sensitive-logging")
                   .empty());
}

TEST(LintRuleTest, NoSensitiveLoggingCoversTheServiceLayer) {
  // The service layer holds query audit trails and WAL contents: an ad-hoc
  // <fstream> dump or stream write there is a record-level leak.
  const std::string src =
      "#include <fstream>\n"
      "void Spill(int row) {\n"
      "  printf(\"%d\", row);\n"
      "}\n";
  const auto hits =
      ForRule(LintSource("src/service/bad_audit.cc", src),
              "no-sensitive-logging");
  ASSERT_EQ(hits.size(), 2u);  // the include and the printf
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_EQ(hits[1].line, 3);
  // Clean service code — Status/Result only — stays clean.
  const std::string clean =
      "#include \"util/status.h\"\n"
      "tripriv::Status Ok() { return tripriv::Status::Ok(); }\n";
  EXPECT_TRUE(ForRule(LintSource("src/service/query_service.cc", clean),
                      "no-sensitive-logging")
                  .empty());
}

TEST(LintRuleTest, NoSensitiveLabelsFires) {
  // Rendering a predicate into a metric label is the canonical violation:
  // the runtime allowlist would likely reject the string, but the lint
  // refuses the rendering itself, at build time.
  const std::string src =
      "void Track(MetricsRegistry* r, const Predicate& p) {\n"
      "  r->RegisterCounter(\"tripriv_q_total\", \"h\",\n"
      "                     {{\"query\", p.ToString()}});\n"
      "}\n";
  const auto hits =
      ForRule(LintSource("src/obs/bad_labels.cc", src), "no-sensitive-labels");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_NE(hits[0].message.find("ToString"), std::string::npos);
}

TEST(LintRuleTest, NoSensitiveLabelsCoversSpansAndPrincipals) {
  // Span names and budget principals reach the same export channel.
  EXPECT_EQ(ForRule(LintSource("src/service/s.cc",
                               "void f(TraceRecorder* t, const Value& v) {\n"
                               "  t->StartSpan(v.ToString());\n"
                               "}\n"),
                    "no-sensitive-labels")
                .size(),
            1u);
  EXPECT_EQ(ForRule(LintSource("src/obs/b.cc",
                               "void g(PrivacyBudgetAccountant* a, int id) {\n"
                               "  a->RecordSpend(std::to_string(id), 0.5);\n"
                               "}\n"),
                    "no-sensitive-labels")
                .size(),
            1u);
}

TEST(LintRuleTest, NoSensitiveLabelsSparesConstantsAndSuppressions) {
  // Constant labels — string literals, named constants, config fields — are
  // the sanctioned shape and stay unflagged.
  const std::string clean =
      "void Ok(MetricsRegistry* r, const Options& opts) {\n"
      "  r->RegisterCounter(\"tripriv_a_total\", \"h\", {{\"tier\", "
      "\"refused\"}});\n"
      "  r->AllowLabelValue(\"principal\", opts.principal);\n"
      "}\n";
  EXPECT_TRUE(ForRule(LintSource("src/obs/ok_labels.cc", clean),
                      "no-sensitive-labels")
                  .empty());
  // A renderer NEAR but not INSIDE a label call is out of scope.
  EXPECT_TRUE(ForRule(LintSource("src/obs/near.cc",
                                 "std::string s = v.ToString();\n"),
                      "no-sensitive-labels")
                  .empty());
  // Tests may build data-shaped fixtures freely.
  EXPECT_TRUE(ForRule(LintSource("tests/obs/fixture.cc",
                                 "r->AllowValue(\"k\", v.ToString());\n"),
                      "no-sensitive-labels")
                  .empty());
  // NOLINT suppression works like every other rule.
  EXPECT_TRUE(ForRule(LintSource("src/obs/b.cc",
                                 "t->StartSpan(v.ToString());  "
                                 "// NOLINT(no-sensitive-labels)\n"),
                      "no-sensitive-labels")
                  .empty());
}

TEST(LintRuleTest, NoSensitiveLoggingCoversObs) {
  // src/obs is an export path: ad-hoc stream output there bypasses the
  // escaped, allowlisted exporters.
  const std::string src =
      "#include <iostream>\n"
      "void Dump(double v) { std::cout << v; }\n";
  const auto hits =
      ForRule(LintSource("src/obs/bad_dump.cc", src), "no-sensitive-logging");
  ASSERT_EQ(hits.size(), 2u);  // the include and the stream write
}

TEST(LintRuleTest, HeaderHygieneFires) {
  const auto hits = ForRule(
      LintSource("src/sdc/no_pragma.h", "int x;\n"), "header-hygiene");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_TRUE(ForRule(LintSource("src/sdc/good.h", "#pragma once\nint x;\n"),
                      "header-hygiene")
                  .empty());
  // Rule is header-only: a .cc without the pragma is fine.
  EXPECT_TRUE(ForRule(LintSource("src/sdc/impl.cc", "int x;\n"),
                      "header-hygiene")
                  .empty());
}

TEST(LintRuleTest, NoChannelBypassFires) {
  const std::string src =
      "Status Run(PartyNetwork* net) {\n"
      "  return net->Send(0, 1, \"t\", {});\n"
      "}\n";
  const auto hits =
      ForRule(LintSource("src/smc/bad_proto.cc", src), "no-channel-bypass");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 2);
}

TEST(LintRuleTest, NoChannelBypassCoversAccessorAndMemberForms) {
  EXPECT_EQ(ForRule(LintSource("src/smc/p.cc",
                               "void f(Channel* ch) { ch->net()->Receive(0); }\n"),
                    "no-channel-bypass")
                .size(),
            1u);
  EXPECT_EQ(ForRule(LintSource("src/smc/p.cc",
                               "void g() { net_.Send(0, 1, \"t\", {}); }\n"),
                    "no-channel-bypass")
                .size(),
            1u);
  // Channel sends are the sanctioned path.
  EXPECT_TRUE(ForRule(LintSource("src/smc/p.cc",
                                 "void h(Channel* ch) { ch->Send(0,1,\"t\",{}); }\n"),
                      "no-channel-bypass")
                  .empty());
}

TEST(LintRuleTest, NoChannelBypassExemptsTheFabricItself) {
  const std::string src = "Status S() { return net_->Send(0, 1, \"t\", {}); }\n";
  EXPECT_TRUE(ForRule(LintSource("src/smc/reliable_channel.cc", src),
                      "no-channel-bypass")
                  .empty());
  EXPECT_TRUE(
      ForRule(LintSource("src/smc/party.cc", src), "no-channel-bypass")
          .empty());
  // ... and only the fabric: tests under tests/smc are out of scope too.
  EXPECT_TRUE(
      ForRule(LintSource("tests/smc/x.cc", src), "no-channel-bypass").empty());
}

TEST(LintRuleTest, NoUnguardedSharedMutationFires) {
  const std::string src =
      "void Fan(ThreadPool* pool) {\n"
      "  pool->ParallelFor(n_, [&](size_t, size_t begin, size_t end) {\n"
      "    for (size_t i = begin; i < end; ++i) total_ += Cost(i);\n"
      "  });\n"
      "}\n";
  const auto hits = ForRule(LintSource("src/service/bad_batch.cc", src),
                            "no-unguarded-shared-mutation");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_NE(hits[0].message.find("total_"), std::string::npos);
}

TEST(LintRuleTest, NoUnguardedSharedMutationCoversAllMutationShapes) {
  // Plain assignment, compound assignment, and increment all count.
  EXPECT_EQ(ForRule(LintSource("src/service/b.cc",
                               "auto f = [&] { state_ = 1; };\n"),
                    "no-unguarded-shared-mutation")
                .size(),
            1u);
  EXPECT_EQ(ForRule(LintSource("src/service/b.cc",
                               "auto f = [&] { ++count_; };\n"),
                    "no-unguarded-shared-mutation")
                .size(),
            1u);
  // Reads and comparisons of members do not count.
  EXPECT_TRUE(ForRule(LintSource("src/service/b.cc",
                                 "auto f = [&] { return count_ == limit_; };\n"),
                      "no-unguarded-shared-mutation")
                  .empty());
}

TEST(LintRuleTest, NoUnguardedSharedMutationCoversTheEpochTableLayer) {
  // src/table hosts the epoch-versioned snapshots that readers pin across
  // flips; an unguarded by-ref mutation there is the same race shape.
  const std::string bad =
      "auto f = [&] { current_ = next; };\n";
  ASSERT_EQ(ForRule(LintSource("src/table/versioned_table.cc", bad),
                    "no-unguarded-shared-mutation")
                .size(),
            1u);
  // The idiomatic manager code takes a guard and stays clean.
  EXPECT_TRUE(ForRule(LintSource("src/table/versioned_table.cc",
                                 "auto f = [&] {\n"
                                 "  std::lock_guard<std::mutex> lock(mu_);\n"
                                 "  current_ = next;\n"
                                 "};\n"),
                      "no-unguarded-shared-mutation")
                  .empty());
}

TEST(LintRuleTest, NoUnguardedSharedMutationSparesGuardedAndExplicit) {
  // A visible lock makes the blanket capture acceptable.
  EXPECT_TRUE(
      ForRule(LintSource("src/util/thread_pool.cc",
                         "auto f = [&] {\n"
                         "  std::lock_guard<std::mutex> lock(mu_);\n"
                         "  ++remaining_;\n"
                         "};\n"),
              "no-unguarded-shared-mutation")
          .empty());
  // Explicit captures are deliberate and stay unflagged.
  EXPECT_TRUE(ForRule(LintSource("src/service/b.cc",
                                 "auto f = [&acc] { acc.total_ += 1; };\n"),
                      "no-unguarded-shared-mutation")
                  .empty());
  // Out of scope: the heuristic only polices the parallel-execution layer.
  EXPECT_TRUE(ForRule(LintSource("src/sdc/x.cc",
                                 "auto f = [&] { total_ += 1; };\n"),
                      "no-unguarded-shared-mutation")
                  .empty());
  // NOLINT suppression works like every other rule.
  EXPECT_TRUE(ForRule(LintSource("src/service/b.cc",
                                 "auto f = [&] { total_ += 1; };  "
                                 "// NOLINT(no-unguarded-shared-mutation)\n"),
                      "no-unguarded-shared-mutation")
                  .empty());
}

TEST(LintCleanFixtureTest, IdiomaticProjectCodeIsClean) {
  // A miniature protocol file in house style: seeded Rng, Channel traffic,
  // Status returns, no I/O, banned names appearing only in comments and
  // string literals (which the lexer strips).
  const std::string src =
      "// Uses Rng, never mt19937; \"std::rand\" in prose is fine.\n"
      "#include \"smc/reliable_channel.h\"\n"
      "#include \"util/random.h\"\n"
      "namespace tripriv {\n"
      "Status Ping(Channel* ch, Rng* rng) {\n"
      "  const char* kTag = \"uses system_clock in a string\";\n"
      "  return ch->Send(0, 1, kTag, {BigInt::FromU64(rng->NextU64())});\n"
      "}\n"
      "}  // namespace tripriv\n";
  EXPECT_TRUE(LintSource("src/smc/ping.cc", src).empty());
}

TEST(LintSuppressionTest, NolintSilencesOnlyTheNamedRule) {
  const std::string src =
      "#include <random>\n"
      "std::mt19937 a;  // NOLINT(no-raw-rng)\n"
      "std::mt19937 b;  // NOLINT(no-wall-clock) wrong rule, still fires\n";
  const auto diags = LintSource("src/stats/x.cc", src);
  const auto hits = ForRule(diags, "no-raw-rng");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
}

TEST(LintSuppressionTest, BareNolintAndNextlineForms) {
  const std::string src =
      "#include <random>\n"
      "std::mt19937 a;  // NOLINT\n"
      "// NOLINTNEXTLINE(no-raw-rng)\n"
      "std::mt19937 b;\n"
      "std::mt19937 c;\n";
  const auto hits = ForRule(LintSource("src/stats/x.cc", src), "no-raw-rng");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 5);
}

TEST(LintSuppressionTest, BareNolintIsItselfAFinding) {
  // The bare marker on line 2 still silences no-raw-rng (previous test),
  // but the marker itself is reported: suppressions must name their rule.
  const std::string src =
      "#include <random>\n"
      "std::mt19937 a;  // NOLINT\n"
      "// NOLINTNEXTLINE\n"
      "std::mt19937 b;\n";
  const auto hits =
      ForRule(LintSource("src/stats/x.cc", src), "nolint-requires-rule");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_EQ(hits[1].line, 3);
  EXPECT_NE(hits[1].message.find("NOLINTNEXTLINE"), std::string::npos);
}

TEST(LintSuppressionTest, NolintRequiresRuleIsNotSelfSuppressible) {
  // A bare NOLINT silences every *other* rule on its line; it cannot excuse
  // the rule that bans bare NOLINTs — nor can a named marker on the line.
  const std::string bare = "int x;  // NOLINT\n";
  EXPECT_EQ(ForRule(LintSource("src/util/x.cc", bare), "nolint-requires-rule")
                .size(),
            1u);
  const std::string named =
      "int x;  // NOLINT(nolint-requires-rule) NOLINT\n";
  EXPECT_EQ(
      ForRule(LintSource("src/util/x.cc", named), "nolint-requires-rule")
          .size(),
      1u);
}

TEST(LintSuppressionTest, ProseMentionOfNolintIsNotAMarker) {
  // A doc comment that merely talks about NOLINT markers neither suppresses
  // nor fires; a trailing explanation after ':' keeps the marker a marker.
  const std::string src =
      "// The NOLINT inventory is greppable.\n"
      "#include <random>\n"
      "std::mt19937 a;\n"
      "std::mt19937 b;  // NOLINT: justified escape\n";
  const auto diags = LintSource("src/stats/x.cc", src);
  EXPECT_EQ(ForRule(diags, "no-raw-rng").size(), 1u);      // line 3 only
  const auto bare = ForRule(diags, "nolint-requires-rule");
  ASSERT_EQ(bare.size(), 1u);                              // line 4 only
  EXPECT_EQ(bare[0].line, 4);
}

TEST(LintSuppressionTest, ListSuppressionsFormat) {
  const SuppressionEntry entry{
      "src/a.cc", 7, 8, true, {"no-raw-rng", "no-wall-clock"}};
  EXPECT_EQ(FormatSuppression(entry),
            "src/a.cc:7: NOLINTNEXTLINE(no-raw-rng, no-wall-clock)");
  const SuppressionEntry bare{"src/b.cc", 3, 3, false, {}};
  EXPECT_EQ(FormatSuppression(bare), "src/b.cc:3: NOLINT()");
}

TEST(LintFormatTest, DiagnosticFormatIsFileLineRuleMessage) {
  const Diagnostic d{"src/a.cc", 7, "no-raw-rng", "boom"};
  EXPECT_EQ(FormatDiagnostic(d), "src/a.cc:7: [no-raw-rng] boom");
}

TEST(LintRunnerTest, FindingsAreOrderedByLine) {
  const std::string src =
      "#include <iostream>\n"
      "#include <random>\n"
      "std::mt19937 g;\n"
      "void f() { std::cout << 1; }\n";
  const auto diags = LintSource("src/sdc/multi.cc", src);
  ASSERT_GE(diags.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      diags.begin(), diags.end(),
      [](const Diagnostic& a, const Diagnostic& b) { return a.line < b.line; }));
}

TEST(LintRunnerTest, RuleNamesAreStable) {
  const std::vector<std::string> expected = {
      "no-raw-rng",          "no-wall-clock",
      "no-sensitive-logging", "no-sensitive-labels",
      "header-hygiene",       "no-channel-bypass",
      "no-unguarded-shared-mutation", "nolint-requires-rule"};
  EXPECT_EQ(RuleNames(), expected);
}

}  // namespace
}  // namespace lint
}  // namespace tripriv
