// Epoch determinism contract, end to end: pinned PIR batch reads and MDAV
// maintenance are bit-identical at 0/1/2/8 threads, a whole mutation
// history replays to byte-identical epochs at any worker count, and reads
// pinned across concurrent flips always decode one consistent snapshot —
// never a torn mix of epochs. This suite is the TSan leg's payload
// (ctest -L epoch).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pir/epoch_pir.h"
#include "service/epoch_service.h"
#include "table/datasets.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

constexpr uint64_t kSeed = 0xEF0C5;

EpochConfig TestConfig() {
  EpochConfig config;
  config.k = 3;
  config.qi_cols = {0, 1};
  return config;
}

/// A deterministic 12-flip history: inserts, updates, and deletes of rows
/// that are always present (uids 0..4 are never deleted).
void DriveHistory(EpochedDatabase* db, ThreadPool* workers) {
  uint64_t inserted_uid = 0;
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(db->SubmitMutation(RowMutation::Update(
                      static_cast<uint64_t>(i) % 5,
                      {165 + (i % 11), 64 + (i % 13), 150, "N"}))
                    .ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(db->SubmitMutation(RowMutation::Insert(
                        {170 + i, 70 + i, 140 + i, i % 2 ? "Y" : "N"}))
                      .ok());
    }
    if (i % 4 == 3) {
      // Delete the insert from three flips ago (uid = 20 + its ordinal).
      ASSERT_TRUE(
          db->SubmitMutation(RowMutation::Delete(20 + inserted_uid)).ok());
      ++inserted_uid;
    }
    auto flipped = db->Flip(workers);
    ASSERT_TRUE(flipped.ok()) << "flip " << i << ": "
                              << flipped.status().ToString();
  }
}

TEST(EpochDeterminismTest, MutationHistoryReplaysByteIdenticalAtAnyThreadCount) {
  uint64_t serial_checksum = 0;
  std::vector<uint8_t> serial_wal;
  for (size_t threads : {0u, 1u, 2u, 8u}) {
    MemWalIo wal;
    EpochStore store;
    auto db = EpochedDatabase::Create(MakeClinicalTrial(20, 5), TestConfig(),
                                      &wal, &store);
    ASSERT_TRUE(db.ok());
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    DriveHistory(&*db, pool.get());

    EXPECT_EQ(db->epoch(), 13u);
    const uint64_t checksum = db->Pin()->protected_checksum;
    auto wal_bytes = wal.ReadAll();
    ASSERT_TRUE(wal_bytes.ok());
    if (threads == 0) {
      serial_checksum = checksum;
      serial_wal = *wal_bytes;
      continue;
    }
    // Bit-identical epochs AND a byte-identical WAL stream: the entire
    // flip pipeline is a pure function of the mutation sequence.
    EXPECT_EQ(checksum, serial_checksum) << "threads=" << threads;
    EXPECT_EQ(*wal_bytes, serial_wal) << "threads=" << threads;
  }
}

TEST(EpochDeterminismTest, PinnedPirBatchesAreBitIdenticalAtAnyThreadCount) {
  MemWalIo wal;
  EpochStore store;
  auto db = EpochedDatabase::Create(MakeClinicalTrial(24, 9), TestConfig(),
                                    &wal, &store);
  ASSERT_TRUE(db.ok());
  const std::vector<size_t> indices = {0, 7, 3, 23, 7, 11};

  std::vector<std::vector<uint8_t>> serial_answers;
  for (size_t threads : {0u, 1u, 2u, 8u}) {
    EpochPirReader reader(db->manager());
    Rng rng(kSeed);
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    auto answers = reader.ReadBatch(indices, &rng, pool.get());
    ASSERT_TRUE(answers.ok()) << "threads=" << threads;
    if (threads == 0) {
      serial_answers = *answers;
      continue;
    }
    EXPECT_EQ(*answers, serial_answers) << "threads=" << threads;
  }

  // The answers decode to the actual protected rows.
  const auto expected = SnapshotRecords(db->Pin()->protected_table);
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(serial_answers[i], expected[indices[i]]) << "read " << i;
  }
}

/// One deterministic writer step of the concurrent-flip scenario.
RowMutation ConcurrentStep(int i) {
  return RowMutation::Update(static_cast<uint64_t>(i) % 15,
                             {158 + (i % 23), 61 + (i % 17), 150, "N"});
}

TEST(EpochDeterminismTest, ReadsPinnedAcrossConcurrentFlipsSeeOneSnapshot) {
  // Dry run the whole 40-flip history serially and record every epoch's
  // expected protected snapshot. Flips are deterministic, so the
  // concurrent run below must reproduce these epochs byte for byte.
  std::map<uint64_t, std::vector<std::vector<uint8_t>>> snapshots;
  {
    MemWalIo wal;
    EpochStore store;
    auto dry = EpochedDatabase::Create(MakeClinicalTrial(15, 11), TestConfig(),
                                       &wal, &store);
    ASSERT_TRUE(dry.ok());
    snapshots[1] = SnapshotRecords(dry->Pin()->protected_table);
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(dry->SubmitMutation(ConcurrentStep(i)).ok());
      ASSERT_TRUE(dry->Flip().ok());
      PinnedEpoch pinned = dry->Pin();
      snapshots[pinned->epoch] = SnapshotRecords(pinned->protected_table);
    }
  }

  MemWalIo wal;
  EpochStore store;
  auto db = EpochedDatabase::Create(MakeClinicalTrial(15, 11), TestConfig(),
                                    &wal, &store);
  ASSERT_TRUE(db.ok());
  std::thread writer([&db] {
    for (int i = 0; i < 40; ++i) {
      Status submitted = db->SubmitMutation(ConcurrentStep(i));
      TRIPRIV_CHECK(submitted.ok());
      auto flipped = db->Flip();
      TRIPRIV_CHECK(flipped.ok()) << flipped.status().ToString();
    }
  });

  EpochPirReader reader(db->manager());
  Rng rng(kSeed);
  const std::vector<size_t> indices = {2, 9, 5, 14, 0};
  for (int batch = 0; batch < 40; ++batch) {
    auto answers = reader.ReadBatch(indices, &rng, nullptr);
    ASSERT_TRUE(answers.ok()) << "batch " << batch;
    const uint64_t epoch = reader.last_served_epoch();
    auto it = snapshots.find(epoch);
    ASSERT_NE(it, snapshots.end()) << "batch " << batch << " epoch " << epoch;
    for (size_t i = 0; i < indices.size(); ++i) {
      // Every answer in the batch comes from the SAME epoch's bytes: a
      // flip mid-batch can never leak newer rows into it.
      EXPECT_EQ((*answers)[i], it->second[indices[i]])
          << "batch " << batch << " read " << i << " epoch " << epoch;
    }
  }
  writer.join();
  EXPECT_EQ(db->epoch(), 41u);
}

}  // namespace
}  // namespace tripriv
