// Reproducibility contract: every randomized component is deterministic in
// its seed (the README claim the experiment harness depends on), and
// different seeds genuinely change the randomness.

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "ppdm/randomized_response.h"
#include "sdc/condensation.h"
#include "sdc/noise.h"
#include "sdc/pram.h"
#include "sdc/rank_swap.h"
#include "smc/psi.h"
#include "smc/secure_sum.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

TEST(DeterminismTest, AllMaskersReproduceBitForBit) {
  const DataTable data = MakeExtendedTrial(80, 55);
  const auto qi = data.schema().QuasiIdentifierIndices();
  {
    auto a = AddUncorrelatedNoise(data, 0.4, qi, 9);
    auto b = AddUncorrelatedNoise(data, 0.4, qi, 9);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);
  }
  {
    auto a = AddCorrelatedNoise(data, 0.4, qi, 9);
    auto b = AddCorrelatedNoise(data, 0.4, qi, 9);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);
  }
  {
    auto a = AddNoiseWithVarianceRestoration(data, 0.4, qi, 9);
    auto b = AddNoiseWithVarianceRestoration(data, 0.4, qi, 9);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);
  }
  {
    auto a = RankSwap(data, 10.0, qi, 9);
    auto b = RankSwap(data, 10.0, qi, 9);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);
  }
  {
    auto a = Condense(data, 5, 9);
    auto b = Condense(data, 5, 9);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->table, b->table);
  }
  {
    auto a = RandomizedResponseMask(data, 5, 0.7, 9);
    auto b = RandomizedResponseMask(data, 5, 0.7, 9);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);
  }
  {
    const PramSpec spec = RetentionPramSpec({"Y", "N"}, 0.7);
    auto a = PramMask(data, 5, spec, 9);
    auto b = PramMask(data, 5, spec, 9);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);
  }
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  const DataTable data = MakeExtendedTrial(80, 57);
  const auto qi = data.schema().QuasiIdentifierIndices();
  auto a = AddUncorrelatedNoise(data, 0.4, qi, 1);
  auto b = AddUncorrelatedNoise(data, 0.4, qi, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(*a == *b);
}

TEST(DeterminismTest, ProtocolsReproduceTranscripts) {
  // Two runs of the same protocol with the same seed produce identical
  // transcripts (and results); the masked values on the wire are pseudo-
  // random, not nondeterministic.
  std::vector<std::vector<uint64_t>> counts{{3, 1}, {4, 1}, {5, 9}};
  PartyNetwork net_a(3, 77);
  PartyNetwork net_b(3, 77);
  auto sum_a = SecureSumCounts(&net_a, counts);
  auto sum_b = SecureSumCounts(&net_b, counts);
  ASSERT_TRUE(sum_a.ok() && sum_b.ok());
  EXPECT_EQ(*sum_a, *sum_b);
  ASSERT_EQ(net_a.transcript().size(), net_b.transcript().size());
  for (size_t i = 0; i < net_a.transcript().size(); ++i) {
    EXPECT_EQ(net_a.transcript()[i].payload, net_b.transcript()[i].payload);
  }

  PartyNetwork psi_a(2, 99);
  PartyNetwork psi_b(2, 99);
  auto r_a = PrivateSetIntersection(&psi_a, {1, 2, 3}, {2, 3, 4}, 96);
  auto r_b = PrivateSetIntersection(&psi_b, {1, 2, 3}, {2, 3, 4}, 96);
  ASSERT_TRUE(r_a.ok() && r_b.ok());
  EXPECT_EQ(r_a->intersection, r_b->intersection);
  EXPECT_EQ(psi_a.bytes_transferred(), psi_b.bytes_transferred());
}

TEST(DeterminismTest, EvaluatorScoresReproduce) {
  PrivacyEvaluator::Options options;
  options.pir_trials = 8;
  options.seed = 21;
  PrivacyEvaluator a(MakeExtendedTrial(120, 59), options);
  PrivacyEvaluator b(MakeExtendedTrial(120, 59), options);
  for (TechnologyClass t :
       {TechnologyClass::kSdc, TechnologyClass::kGenericNonCryptoPpdmPlusPir}) {
    auto ea = a.Evaluate(t);
    auto eb = b.Evaluate(t);
    ASSERT_TRUE(ea.ok() && eb.ok());
    EXPECT_DOUBLE_EQ(ea->scores.respondent, eb->scores.respondent);
    EXPECT_DOUBLE_EQ(ea->scores.owner, eb->scores.owner);
    EXPECT_DOUBLE_EQ(ea->scores.user, eb->scores.user);
  }
}

}  // namespace
}  // namespace tripriv
