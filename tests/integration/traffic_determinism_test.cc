// The determinism contract of the million-principal simulator: one config,
// any thread count, byte-identical outcome. Scheduler decisions (FNV
// digest), WAL bytes, per-class totals, and the rendered obs export must
// all match across 0, 1, 2, and 8 worker threads — the parallel Prepare
// fan-out is pure, and everything stateful runs in one serial loop.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/instruments.h"
#include "obs/metrics.h"
#include "service/traffic/simulator.h"
#include "service/traffic/traffic_profile.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace traffic {
namespace {

SimulatorConfig AdversarialMillionPrincipalConfig() {
  // The full gauntlet: diurnal wave + correlated bursts + 100x flood +
  // slow loris, over the default million-principal universe.
  SimulatorConfig config;
  config.profile = TrafficProfile::Mixed(99);
  config.scheduler.high_watermark = 128;
  config.scheduler.by_class[obs::kClassAbusive].queue_capacity = 512;
  config.num_windows = 32;
  config.drain_windows = 8;
  config.table_rows = 128;
  return config;
}

struct RunOutput {
  SimulationReport report;
  bool ok = false;
};

RunOutput RunWith(ThreadPool* pool) {
  obs::MetricsRegistry registry;
  auto report =
      RunTrafficSimulation(AdversarialMillionPrincipalConfig(), pool, &registry);
  RunOutput out;
  out.ok = report.ok();
  if (report.ok()) out.report = *std::move(report);
  return out;
}

void ExpectIdentical(const SimulationReport& a, const SimulationReport& b,
                     const char* what) {
  EXPECT_EQ(a.scheduler_digest, b.scheduler_digest) << what;
  EXPECT_EQ(a.wal_bytes, b.wal_bytes) << what;
  EXPECT_EQ(a.total_events, b.total_events) << what;
  EXPECT_EQ(a.final_tick, b.final_tick) << what;
  EXPECT_EQ(a.metrics_json, b.metrics_json) << what;
  for (size_t cls = 0; cls < obs::kNumTenantClasses; ++cls) {
    const ClassTotals& x = a.by_class[cls];
    const ClassTotals& y = b.by_class[cls];
    EXPECT_EQ(x.arrivals, y.arrivals) << what << " class " << cls;
    EXPECT_EQ(x.shed_queue_full, y.shed_queue_full) << what << " class " << cls;
    EXPECT_EQ(x.shed_overload, y.shed_overload) << what << " class " << cls;
    EXPECT_EQ(x.shed_deadline, y.shed_deadline) << what << " class " << cls;
    EXPECT_EQ(x.protected_answers, y.protected_answers)
        << what << " class " << cls;
    EXPECT_EQ(x.dp_answers, y.dp_answers) << what << " class " << cls;
    EXPECT_EQ(x.refusals, y.refusals) << what << " class " << cls;
    EXPECT_EQ(x.latency_ticks_sum, y.latency_ticks_sum)
        << what << " class " << cls;
    EXPECT_EQ(x.served, y.served) << what << " class " << cls;
  }
}

TEST(TrafficDeterminismTest, ReportIsByteIdenticalAcrossThreadCounts) {
  const RunOutput serial = RunWith(nullptr);
  ASSERT_TRUE(serial.ok);
  // The run did real work on all fronts, so the comparisons below compare
  // something: arrivals, sheds, servings, and a non-empty export.
  EXPECT_GT(serial.report.total_arrivals(), 1000u);
  EXPECT_GT(serial.report.total_scheduler_sheds(), 0u);
  EXPECT_GT(serial.report.wal_bytes, 0u);
#ifndef TRIPRIV_OBS_DISABLED
  EXPECT_FALSE(serial.report.metrics_json.empty());
#endif

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    const RunOutput parallel = RunWith(&pool);
    ASSERT_TRUE(parallel.ok) << threads << " threads";
    ExpectIdentical(serial.report, parallel.report,
                    threads == 1   ? "1 thread"
                    : threads == 2 ? "2 threads"
                                   : "8 threads");
  }
}

TEST(TrafficDeterminismTest, DistinctSeedsActuallyDiverge) {
  // Guard against a digest that is constant by accident: a different seed
  // must produce a different schedule.
  SimulatorConfig a = AdversarialMillionPrincipalConfig();
  SimulatorConfig b = AdversarialMillionPrincipalConfig();
  b.profile = TrafficProfile::Mixed(100);
  auto ra = RunTrafficSimulation(a, nullptr, nullptr);
  auto rb = RunTrafficSimulation(b, nullptr, nullptr);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_NE(ra->scheduler_digest, rb->scheduler_digest);
}

}  // namespace
}  // namespace traffic
}  // namespace tripriv
