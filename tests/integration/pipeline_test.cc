// Integration tests: cross-module pipelines a deployment would actually
// run, from masking through query serving and attack.

#include <cmath>

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/evaluator.h"
#include "pir/aggregate.h"
#include "ppdm/decision_tree.h"
#include "querydb/tracker.h"
#include "sdc/anonymity.h"
#include "sdc/condensation.h"
#include "sdc/microaggregation.h"
#include "table/datasets.h"
#include "table/io.h"

namespace tripriv {
namespace {

TEST(PipelineTest, Section6RecipeServesCorrectPrivateAggregates) {
  // k-anonymize, serve through PIR, and check the private answers equal
  // plain execution on the same release.
  const DataTable registry = MakeExtendedTrial(120, 5);
  auto deployment = ApplySection6Recipe(registry, 4);
  ASSERT_TRUE(deployment.ok());
  std::vector<GridAxis> grid{{"age", 25, 85, 1}, {"weight", 40, 160, 1}};
  auto server = PrivateAggregateServer::Build(deployment->release, grid);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = PrivateAggregateClient::Create(192, 7);
  ASSERT_TRUE(client.ok());
  for (int64_t threshold : {50, 65, 80}) {
    Predicate p = Predicate::Compare("age", CompareOp::kLt, Value(threshold));
    auto private_count = client->Count(*server, p);
    ASSERT_TRUE(private_count.ok());
    auto plain = p.MatchingRows(deployment->release);
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(*private_count, plain->size()) << threshold;
  }
}

TEST(PipelineTest, TrackerCannotIsolateAfterMasking) {
  // The full respondent-privacy story: the tracker defeats query controls
  // on raw data, but after k-anonymization there is no size-1 target set
  // to isolate in the first place.
  DataTable raw = MakeClinicalTrial(80, 9);
  ASSERT_TRUE(raw.AppendRow({Value(160), Value(110), Value(146), Value("N")})
                  .ok());
  const Predicate target = Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(165)),
      Predicate::Compare("weight", CompareOp::kGt, Value(105)));

  ProtectionConfig config;
  config.mode = ProtectionMode::kQuerySetSize;
  config.min_query_set_size = 3;

  // On raw data: the attack recovers the secret value exactly.
  StatDatabase raw_db(raw, config);
  auto tracker = FindTracker(&raw_db, "height", 140, 205, 24);
  ASSERT_TRUE(tracker.has_value());
  auto raw_attack = TrackerAttack(&raw_db, target, "blood_pressure", *tracker);
  ASSERT_TRUE(raw_attack.ok());
  ASSERT_TRUE(raw_attack->succeeded);
  EXPECT_DOUBLE_EQ(raw_attack->inferred_count, 1.0);
  EXPECT_DOUBLE_EQ(raw_attack->inferred_sum, 146.0);

  // On the 3-anonymized release: the tracker still works arithmetically,
  // but the inferred count is 0 or >= 3 — no respondent is isolated.
  auto masked = MdavMicroaggregate(raw, 3);
  ASSERT_TRUE(masked.ok());
  StatDatabase masked_db(masked->table, config);
  auto masked_tracker = FindTracker(&masked_db, "height", 140, 205, 24);
  if (masked_tracker.has_value()) {
    auto masked_attack =
        TrackerAttack(&masked_db, target, "blood_pressure", *masked_tracker);
    ASSERT_TRUE(masked_attack.ok());
    if (masked_attack->succeeded) {
      EXPECT_TRUE(masked_attack->inferred_count < 0.5 ||
                  masked_attack->inferred_count >= 2.5)
          << masked_attack->inferred_count;
    }
  }
}

TEST(PipelineTest, CondensedDataStillTrainsUsableClassifier) {
  // The utility claim behind [1]: condensation preserves enough structure
  // for downstream mining. Train on condensed, test on original.
  DataTable train = MakeClassification(2500, 2, 13);
  DataTable test = MakeClassification(600, 2, 14);
  auto condensed = Condense(train, 10, {0, 1, 2}, 15);
  ASSERT_TRUE(condensed.ok());
  auto tree_orig = DecisionTree::Train(train, "group");
  auto tree_cond = DecisionTree::Train(condensed->table, "group");
  ASSERT_TRUE(tree_orig.ok() && tree_cond.ok());
  const double acc_orig = *tree_orig->Accuracy(test);
  const double acc_cond = *tree_cond->Accuracy(test);
  EXPECT_GT(acc_cond, 0.75);
  EXPECT_GT(acc_cond, acc_orig - 0.2);
}

TEST(PipelineTest, MaskedReleaseSurvivesCsvRoundTrip) {
  // Publish path: mask -> serialize -> reload -> verify guarantees hold on
  // what was actually shipped.
  DataTable data = MakeExtendedTrial(90, 17);
  auto masked = MdavMicroaggregate(data, 5);
  ASSERT_TRUE(masked.ok());
  const std::string csv = TableToCsv(masked->table);
  auto reloaded = TableFromCsv(masked->table.schema(), csv);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(*reloaded, masked->table);
  EXPECT_GE(AnonymityLevel(*reloaded), 5u);
}

TEST(PipelineTest, AdvisorRecommendationsSurviveEvaluation) {
  // What the advisor recommends for "all three dimensions" must actually
  // measure >= medium on every dimension with the evaluator's attacks.
  PrivacyRequirements all;
  all.respondent = all.owner = all.user = true;
  auto rec = RecommendTechnology(all);
  ASSERT_TRUE(rec.ok());
  PrivacyEvaluator::Options options;
  options.pir_trials = 12;
  PrivacyEvaluator evaluator(MakeExtendedTrial(250, 19), options);
  auto eval = evaluator.Evaluate(rec->technology);
  ASSERT_TRUE(eval.ok());
  for (Dimension d : kAllDimensions) {
    EXPECT_GE(eval->scores.of(d), 0.4)
        << DimensionToString(d) << " under "
        << TechnologyClassToString(rec->technology);
  }
}

}  // namespace
}  // namespace tripriv
