// Recursive d-dimensional PIR: geometry, seed expansion, retrieval,
// sublinear upload, canonical flat transcripts (padding and overhang),
// preprocessing equivalence, session reuse, epoch invalidation, and the
// thread-count invariance contract (this file carries the parallel label —
// the TSan leg's payload for `ctest -L pir`).

#include <gtest/gtest.h>

#include <memory>

#include "pir/epoch_pir.h"
#include "pir/recursive_pir.h"
#include "service/epoch_service.h"
#include "table/datasets.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

std::vector<std::vector<uint8_t>> MakeRecords(size_t n, size_t size) {
  std::vector<std::vector<uint8_t>> records(n, std::vector<uint8_t>(size));
  Rng rng(99);
  for (auto& r : records) {
    for (auto& b : r) b = static_cast<uint8_t>(rng.NextU64());
  }
  return records;
}

/// 2^d independent replicas of `records` plus the pointer vector the read
/// API takes.
struct Fleet {
  std::vector<XorPirServer> servers;
  std::vector<XorPirServer*> ptrs;
};

Fleet MakeFleet(const std::vector<std::vector<uint8_t>>& records, size_t d,
                bool preprocess = false) {
  Fleet fleet;
  const size_t count = size_t{1} << d;
  fleet.servers.reserve(count);
  for (size_t s = 0; s < count; ++s) {
    auto server = XorPirServer::Create(records);
    TRIPRIV_CHECK(server.ok());
    if (preprocess) server->Preprocess();
    fleet.servers.push_back(std::move(*server));
  }
  for (auto& server : fleet.servers) fleet.ptrs.push_back(&server);
  return fleet;
}

bool GetBit(const std::vector<uint8_t>& bits, size_t i) {
  return (bits[i / 8] >> (i % 8)) & 1u;
}

TEST(HypercubeGeometryTest, BalancedPicksSmallestSide) {
  struct Case {
    size_t n, d, side;
  };
  for (const Case& c : std::initializer_list<Case>{{1, 1, 1},
                                                   {1024, 2, 32},
                                                   {1025, 2, 33},
                                                   {27, 3, 3},
                                                   {28, 3, 4},
                                                   {30, 2, 6},
                                                   {1048576, 2, 1024},
                                                   {1048576, 3, 102}}) {
    auto g = HypercubeGeometry::Balanced(c.n, c.d);
    ASSERT_TRUE(g.ok()) << c.n << " " << c.d;
    EXPECT_EQ(g->side, c.side) << c.n << " " << c.d;
    EXPECT_EQ(g->num_servers(), size_t{1} << c.d);
  }
  EXPECT_FALSE(HypercubeGeometry::Balanced(0, 2).ok());
  EXPECT_FALSE(HypercubeGeometry::Balanced(10, 0).ok());
  EXPECT_FALSE(HypercubeGeometry::Balanced(10, 9).ok());
}

TEST(HypercubeGeometryTest, CoordinatesRoundTrip) {
  auto g = HypercubeGeometry::Balanced(30, 3);  // side 4, 64 cells
  ASSERT_TRUE(g.ok());
  for (size_t i = 0; i < g->n; ++i) {
    const auto coords = g->Coordinates(i);
    ASSERT_EQ(coords.size(), 3u);
    size_t back = 0;
    for (size_t k = 0; k < 3; ++k) back = back * g->side + coords[k];
    EXPECT_EQ(back, i);
  }
}

TEST(RecursivePirTest, RetrievesEveryIndexAtD2AndD3) {
  // 30 records: side 6 at d=2 (6 overhang cells) and side 4 at d=3 (34
  // overhang cells) — awkward on purpose.
  auto records = MakeRecords(30, 16);
  for (size_t d : {2u, 3u}) {
    auto g = HypercubeGeometry::Balanced(records.size(), d);
    ASSERT_TRUE(g.ok());
    Fleet fleet = MakeFleet(records, d);
    Rng rng(5 + d);
    for (size_t i = 0; i < records.size(); ++i) {
      auto got = RecursivePirRead(fleet.ptrs, *g, i, &rng);
      ASSERT_TRUE(got.ok()) << "d=" << d << " i=" << i;
      EXPECT_EQ(*got, records[i]) << "d=" << d << " i=" << i;
    }
  }
}

TEST(RecursivePirTest, UploadIsSeedPlusAxisBits) {
  auto records = MakeRecords(4096, 8);
  auto g = HypercubeGeometry::Balanced(records.size(), 2);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->side, 64u);
  Fleet fleet = MakeFleet(records, 2);
  Rng rng(7);
  PirStats stats;
  ASSERT_TRUE(RecursivePirRead(fleet.ptrs, *g, 123, &rng, nullptr, &stats).ok());
  // Server 0 gets the 64-bit seed; the other three get d*side explicit bits.
  EXPECT_EQ(stats.upload_bits, 64u + 3 * 2 * 64u);
  EXPECT_EQ(stats.download_bits, 4 * 8 * 8u);
  // Sublinear in n: a flat 2-server read ships 2n bits.
  EXPECT_LT(stats.upload_bits, 2 * records.size() / 10);
}

TEST(RecursivePirTest, SeedExpansionIsPureAndDrawsOneWord) {
  auto g = HypercubeGeometry::Balanced(100, 2);
  ASSERT_TRUE(g.ok());
  const auto once = ExpandAxisSelections(42, *g);
  const auto twice = ExpandAxisSelections(42, *g);
  EXPECT_EQ(once, twice);
  ASSERT_EQ(once.size(), 2u);

  // BuildHypercubeQueries draws exactly ONE word from the caller's rng:
  // two generators from one seed stay in lockstep iff the counts match.
  Rng rng_a(31);
  Rng rng_b(31);
  ASSERT_TRUE(BuildHypercubeQueries(*g, 55, &rng_a).ok());
  (void)rng_b.NextU64();
  EXPECT_EQ(rng_a.NextU64(), rng_b.NextU64());
}

TEST(RecursivePirTest, OnlyTheUnflippedServerHoldsTheSeed) {
  // Privacy invariant: a seed plus a flipped axis bitmap would let one
  // replica difference out the target coordinate, so the seed form must go
  // only to server 0, whose explicit expansion matches the base bitmaps
  // every other server's bitmaps are one flip away from.
  auto g = HypercubeGeometry::Balanced(100, 2);
  ASSERT_TRUE(g.ok());
  const size_t index = 57;
  Rng rng(13);
  Rng shadow(13);
  auto queries = BuildHypercubeQueries(*g, index, &rng);
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), 4u);
  EXPECT_TRUE((*queries)[0].seed_only);
  const auto base = ExpandAxisSelections(shadow.NextU64(), *g);
  const auto coords = g->Coordinates(index);
  for (size_t s = 1; s < 4; ++s) {
    const auto& q = (*queries)[s];
    EXPECT_FALSE(q.seed_only);
    ASSERT_EQ(q.axis_bits.size(), 2u);
    for (size_t k = 0; k < 2; ++k) {
      auto expected = base[k];
      if ((s >> k) & 1u) FlipSelectionBit(&expected, coords[k]);
      EXPECT_EQ(q.axis_bits[k], expected) << "s=" << s << " k=" << k;
    }
  }
}

TEST(RecursivePirTest, FlatExpansionIsCanonicalAcrossPaddingAndOverhang) {
  // side = 6: axis bitmaps carry 2 padding bits per byte, and the 36-cell
  // square overhangs a 30-record database by 6 cells. Observed flat
  // queries must keep padding bits zero and never select overhang cells,
  // or bytes_xored() popcount accounting counts phantom work.
  auto records = MakeRecords(30, 8);
  auto g = HypercubeGeometry::Balanced(records.size(), 2);
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->side, 6u);
  Fleet fleet = MakeFleet(records, 2);
  for (auto* s : fleet.ptrs) s->EnableObservationLog(8);
  Rng rng(17);
  uint64_t selected_bits = 0;
  for (size_t i : {0u, 7u, 29u}) {
    auto got = RecursivePirRead(fleet.ptrs, *g, i, &rng);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, records[i]);
  }
  for (auto* server : fleet.ptrs) {
    ASSERT_EQ(server->num_observed(), 3u);
    for (size_t q = 0; q < server->num_observed(); ++q) {
      const auto& flat = server->observed_query(q);
      ASSERT_EQ(flat.size(), (records.size() + 7) / 8);
      // Padding bits of the last byte are zero (30 % 8 == 6).
      EXPECT_EQ(flat.back() & ~((1u << (30 % 8)) - 1u), 0u);
      for (size_t bit = 0; bit < records.size(); ++bit) {
        selected_bits += GetBit(flat, bit);
      }
    }
  }
  // bytes_xored is derived from exactly those canonical selections.
  uint64_t total_xored = 0;
  for (auto* server : fleet.ptrs) total_xored += server->bytes_xored();
  EXPECT_EQ(total_xored, selected_bits * 8u);
}

TEST(RecursivePirTest, RejectsNonCanonicalAxisPadding) {
  auto records = MakeRecords(30, 8);
  auto g = HypercubeGeometry::Balanced(records.size(), 2);
  ASSERT_TRUE(g.ok());
  auto server = XorPirServer::Create(records);
  ASSERT_TRUE(server.ok());
  HypercubeQuery query;
  query.axis_bits = ExpandAxisSelections(3, *g);
  auto ok = AnswerHypercubeQuery(&*server, query, *g);
  EXPECT_TRUE(ok.ok());
  query.axis_bits[1].back() |= 0x80;  // bit 7 of a 6-bit axis byte
  auto bad = AnswerHypercubeQuery(&*server, query, *g);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecursivePirTest, PreprocessedAnswersAreByteIdentical) {
  // The parity layout changes the sweep, never the bytes: every index, odd
  // and even record counts, plain vs preprocessed, with and without a pool.
  for (size_t n : {29u, 30u, 31u}) {
    auto records = MakeRecords(n, 24);
    auto g = HypercubeGeometry::Balanced(n, 2);
    ASSERT_TRUE(g.ok());
    Fleet plain = MakeFleet(records, 2, /*preprocess=*/false);
    Fleet pre = MakeFleet(records, 2, /*preprocess=*/true);
    EXPECT_GT(pre.ptrs[0]->preprocess_bytes(), 0u);
    ThreadPool pool(2);
    Rng rng_plain(23);
    Rng rng_pre(23);
    for (size_t i = 0; i < n; ++i) {
      auto a = RecursivePirRead(plain.ptrs, *g, i, &rng_plain);
      auto b = RecursivePirRead(pre.ptrs, *g, i, &rng_pre, &pool);
      ASSERT_TRUE(a.ok() && b.ok()) << "n=" << n << " i=" << i;
      EXPECT_EQ(*a, *b) << "n=" << n << " i=" << i;
      EXPECT_EQ(*a, records[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(RecursivePirTest, TranscriptsAreByteIdenticalAtAnyThreadCount) {
  auto records = MakeRecords(61, 32);
  auto g = HypercubeGeometry::Balanced(records.size(), 2);
  ASSERT_TRUE(g.ok());
  const std::vector<size_t> indices = {0, 17, 5, 60, 17, 33};

  std::vector<std::vector<uint8_t>> serial_answers;
  std::vector<std::vector<std::vector<uint8_t>>> serial_views;
  for (size_t threads : {0u, 1u, 2u, 8u}) {
    Fleet fleet = MakeFleet(records, 2, /*preprocess=*/true);
    for (auto* s : fleet.ptrs) s->EnableObservationLog(indices.size());
    Rng rng(29);
    PirSessionRegistry sessions;
    auto* session = sessions.Establish(/*tenant_class=*/1, *g, /*epoch=*/1);
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    auto answers = RecursivePirBatchRead(fleet.ptrs, *g, indices, &rng,
                                         pool.get(), nullptr, session);
    ASSERT_TRUE(answers.ok()) << "threads=" << threads;
    std::vector<std::vector<std::vector<uint8_t>>> views;
    for (auto* server : fleet.ptrs) {
      std::vector<std::vector<uint8_t>> view;
      for (size_t q = 0; q < server->num_observed(); ++q) {
        view.push_back(server->observed_query(q));
      }
      views.push_back(std::move(view));
    }
    if (threads == 0) {
      serial_answers = *answers;
      serial_views = views;
      for (size_t i = 0; i < indices.size(); ++i) {
        EXPECT_EQ(serial_answers[i], records[indices[i]]) << "read " << i;
      }
      continue;
    }
    EXPECT_EQ(*answers, serial_answers) << "threads=" << threads;
    EXPECT_EQ(views, serial_views) << "threads=" << threads;
  }
}

TEST(PirSessionRegistryTest, SessionsReuseScratchAndSurviveCounters) {
  auto records = MakeRecords(50, 8);
  auto g = HypercubeGeometry::Balanced(records.size(), 2);
  ASSERT_TRUE(g.ok());
  Fleet fleet = MakeFleet(records, 2);
  PirSessionRegistry sessions;
  auto* session = sessions.Establish(/*tenant_class=*/2, *g, /*epoch=*/1);
  Rng rng(37);
  PirStats stats;
  auto answers = RecursivePirBatchRead(fleet.ptrs, *g, {1, 2, 3}, &rng,
                                       nullptr, &stats, session);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(session->reads, 3u);
  EXPECT_EQ(session->upload_bits, stats.upload_bits);
  EXPECT_GT(session->expanded_cells, 0u);
  EXPECT_EQ(session->flat_scratch.size(), (records.size() + 7) / 8);
  EXPECT_EQ(sessions.num_sessions(), 1u);
  EXPECT_EQ(sessions.total_reads(), 3u);

  // Epoch moves on: scratch and geometry invalidate, counters survive.
  sessions.InvalidateBefore(2);
  EXPECT_EQ(session->flat_scratch.size(), 0u);
  EXPECT_EQ(session->geometry.n, 0u);
  EXPECT_EQ(session->reads, 3u);
  auto* refreshed = sessions.Establish(2, *g, /*epoch=*/2);
  EXPECT_EQ(refreshed, session);
  ASSERT_TRUE(
      RecursivePirRead(fleet.ptrs, *g, 4, &rng, nullptr, nullptr, refreshed)
          .ok());
  EXPECT_EQ(refreshed->reads, 4u);
  EXPECT_EQ(sessions.Find(3), nullptr);
}

TEST(EpochRecursivePirTest, RecursiveReaderServesFlipsAndInvalidates) {
  MemWalIo wal;
  EpochStore store;
  EpochConfig config;
  config.k = 3;
  config.qi_cols = {0, 1};
  // Large enough that the seed's fixed 64-bit overhead amortizes: flat
  // ships 2n = 400 bits per read, recursive 64 + 3*d*side.
  auto db = EpochedDatabase::Create(MakeClinicalTrial(200, 9), config, &wal,
                                    &store);
  ASSERT_TRUE(db.ok());

  EpochPirOptions options;
  options.dimensions = 2;
  options.preprocess = true;
  options.tenant_class = 1;
  EpochPirReader reader(db->manager(), options);
  EpochPirReader flat_reader(db->manager());
  Rng rng(41);
  Rng flat_rng(43);

  // Both schemes decode the same protected rows of the pinned epoch.
  const auto expected = SnapshotRecords(db->Pin()->protected_table);
  for (size_t i : {0u, 5u, 23u}) {
    auto rec = reader.Read(i, &rng);
    ASSERT_TRUE(rec.ok()) << i;
    EXPECT_EQ(*rec, expected[i]) << i;
    auto flat = flat_reader.Read(i, &flat_rng);
    ASSERT_TRUE(flat.ok()) << i;
    EXPECT_EQ(*flat, expected[i]) << i;
  }
  EXPECT_GT(reader.preprocess_bytes(), 0u);
  EXPECT_EQ(reader.sessions().num_sessions(), 1u);
  EXPECT_EQ(reader.sessions().total_reads(), 3u);
  // Recursive upload is well under the flat path's O(n) bits.
  EXPECT_LT(reader.stats().upload_bits, flat_reader.stats().upload_bits);

  // Flip the epoch: the reader rebuilds replicas, re-preprocesses, and
  // invalidates stale session scratch, and reads stay correct.
  ASSERT_TRUE(
      db->SubmitMutation(RowMutation::Update(0, {170, 70, 150, "N"})).ok());
  ASSERT_TRUE(db->Flip().ok());
  const uint64_t builds_before = reader.replica_builds();
  auto batch = reader.ReadBatch({1, 4, 1, 9}, &rng);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(reader.replica_builds(), builds_before + 1);
  EXPECT_EQ(reader.last_served_epoch(), db->Pin()->epoch);
  const auto flipped = SnapshotRecords(db->Pin()->protected_table);
  EXPECT_EQ((*batch)[0], flipped[1]);
  EXPECT_EQ((*batch)[3], flipped[9]);
  EXPECT_EQ(reader.sessions().total_reads(), 7u);
}

}  // namespace
}  // namespace tripriv
