// Tests for information-theoretic PIR, computational PIR, and keyword PIR.

#include <gtest/gtest.h>

#include "pir/cpir.h"
#include "pir/it_pir.h"
#include "pir/keyword_pir.h"

namespace tripriv {
namespace {

std::vector<std::vector<uint8_t>> MakeRecords(size_t n, size_t size) {
  std::vector<std::vector<uint8_t>> records(n, std::vector<uint8_t>(size));
  Rng rng(99);
  for (auto& r : records) {
    for (auto& b : r) b = static_cast<uint8_t>(rng.NextU64());
  }
  return records;
}

TEST(TwoServerPirTest, RetrievesEveryIndex) {
  auto records = MakeRecords(37, 16);
  auto a = XorPirServer::Create(records);
  auto b = XorPirServer::Create(records);
  ASSERT_TRUE(a.ok() && b.ok());
  Rng rng(1);
  for (size_t i = 0; i < records.size(); ++i) {
    auto got = TwoServerPirRead(&*a, &*b, i, &rng);
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, records[i]) << i;
  }
}

TEST(TwoServerPirTest, StatsAreReported) {
  auto records = MakeRecords(64, 8);
  auto a = XorPirServer::Create(records);
  auto b = XorPirServer::Create(records);
  ASSERT_TRUE(a.ok() && b.ok());
  Rng rng(2);
  PirStats stats;
  ASSERT_TRUE(TwoServerPirRead(&*a, &*b, 5, &rng, &stats).ok());
  EXPECT_EQ(stats.upload_bits, 2 * 64u);
  EXPECT_EQ(stats.download_bits, 2 * 8 * 8u);
}

TEST(TwoServerPirTest, SingleServerViewIsTargetIndependent) {
  // Empirical privacy check: the marginal distribution of each selection
  // bit seen by server A must be ~Bernoulli(1/2) regardless of the target.
  auto records = MakeRecords(16, 4);
  auto a = XorPirServer::Create(records);
  auto b = XorPirServer::Create(records);
  ASSERT_TRUE(a.ok() && b.ok());
  a->EnableObservationLog(1);
  Rng rng(3);
  const size_t trials = 600;
  std::vector<size_t> bit_counts(16, 0);
  for (size_t t = 0; t < trials; ++t) {
    ASSERT_TRUE(TwoServerPirRead(&*a, &*b, /*index=*/7, &rng).ok());
    const auto& view = a->last_observed_query();
    for (size_t i = 0; i < 16; ++i) {
      bit_counts[i] += (view[i / 8] >> (i % 8)) & 1u;
    }
  }
  for (size_t i = 0; i < 16; ++i) {
    const double freq = static_cast<double>(bit_counts[i]) / trials;
    EXPECT_NEAR(freq, 0.5, 0.08) << "bit " << i;
  }
}

TEST(RandomSelectionBitsTest, PaddingBitsAreZeroAtAwkwardSizes) {
  // Regression: the word-filled generator must still zero the padding bits
  // of the last byte, or observed queries stop being canonical and the
  // out-of-range record positions get selected.
  for (size_t n : {1u, 7u, 13u, 37u, 63u, 65u, 127u, 1000u}) {
    Rng rng(21 + n);
    for (int trial = 0; trial < 50; ++trial) {
      const auto bits = RandomSelectionBits(n, &rng);
      ASSERT_EQ(bits.size(), (n + 7) / 8);
      if (n % 8 != 0) {
        EXPECT_EQ(bits.back() & ~((1u << (n % 8)) - 1u), 0u) << "n=" << n;
      }
    }
  }
}

TEST(RandomSelectionBitsTest, FillsEightBytesPerDraw) {
  // Regression for the draw-per-byte bug: 64 selection bits must cost
  // exactly one NextU64, 65 bits exactly two. Two generators from the same
  // seed stay in lockstep iff the draw counts match.
  Rng rng_a(31);
  Rng rng_b(31);
  (void)RandomSelectionBits(64, &rng_a);
  (void)rng_b.NextU64();
  EXPECT_EQ(rng_a.NextU64(), rng_b.NextU64());

  Rng rng_c(33);
  Rng rng_d(33);
  (void)RandomSelectionBits(65, &rng_c);
  (void)rng_d.NextU64();
  (void)rng_d.NextU64();
  EXPECT_EQ(rng_c.NextU64(), rng_d.NextU64());
}

TEST(XorPirServerTest, ObservationLogIsOptInAndBounded) {
  auto records = MakeRecords(24, 4);
  auto server = XorPirServer::Create(records);
  ASSERT_TRUE(server.ok());
  Rng rng(41);

  // Off by default: queries are counted but nothing is retained.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server->Answer(RandomSelectionBits(24, &rng)).ok());
  }
  EXPECT_FALSE(server->observation_enabled());
  EXPECT_EQ(server->queries_answered(), 5u);
  EXPECT_EQ(server->num_observed(), 0u);

  // Enabled with capacity 3: the ring keeps the 3 most recent selections,
  // oldest first, while the counter keeps the full total.
  server->EnableObservationLog(3);
  std::vector<std::vector<uint8_t>> sent;
  for (int i = 0; i < 7; ++i) {
    sent.push_back(RandomSelectionBits(24, &rng));
    ASSERT_TRUE(server->Answer(sent.back()).ok());
  }
  EXPECT_TRUE(server->observation_enabled());
  EXPECT_EQ(server->queries_answered(), 12u);
  ASSERT_EQ(server->num_observed(), 3u);
  EXPECT_EQ(server->observed_query(0), sent[4]);
  EXPECT_EQ(server->observed_query(1), sent[5]);
  EXPECT_EQ(server->observed_query(2), sent[6]);
  EXPECT_EQ(server->last_observed_query(), sent[6]);
}

TEST(TwoServerPirTest, RejectsBadInput) {
  auto records = MakeRecords(8, 4);
  auto a = XorPirServer::Create(records);
  auto b = XorPirServer::Create(MakeRecords(9, 4));
  ASSERT_TRUE(a.ok() && b.ok());
  Rng rng(4);
  EXPECT_FALSE(TwoServerPirRead(&*a, &*b, 0, &rng).ok());  // size mismatch
  auto b2 = XorPirServer::Create(records);
  ASSERT_TRUE(b2.ok());
  EXPECT_FALSE(TwoServerPirRead(&*a, &*b2, 8, &rng).ok());  // out of range
  EXPECT_FALSE(XorPirServer::Create({}).ok());
  EXPECT_FALSE(XorPirServer::Create({{}}).ok());
  EXPECT_FALSE(XorPirServer::Create({{1, 2}, {3}}).ok());
}

TEST(FourServerCubePirTest, RetrievesEveryIndex) {
  auto records = MakeRecords(30, 8);  // non-square count exercises padding
  std::vector<XorPirServer> servers;
  for (int i = 0; i < 4; ++i) {
    auto s = XorPirServer::Create(records);
    ASSERT_TRUE(s.ok());
    servers.push_back(std::move(*s));
  }
  Rng rng(5);
  std::array<XorPirServer*, 4> ptrs{&servers[0], &servers[1], &servers[2],
                                    &servers[3]};
  for (size_t i = 0; i < records.size(); ++i) {
    PirStats stats;
    auto got = FourServerCubePirRead(ptrs, i, &rng, &stats);
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, records[i]) << i;
    // Upload is O(sqrt(n)) per the compact per-axis accounting.
    EXPECT_LT(stats.upload_bits, 4 * 2 * 8u * 2);
  }
}

TEST(CpirTest, RetrievesEveryEntry) {
  std::vector<uint64_t> db;
  for (uint64_t i = 0; i < 23; ++i) db.push_back(i * i + 1);
  auto server = CpirServer::Create(db);
  ASSERT_TRUE(server.ok());
  auto client = CpirClient::Create(192, 7);
  ASSERT_TRUE(client.ok());
  for (size_t i = 0; i < db.size(); ++i) {
    auto got = client->Read(&*server, i);
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, db[i]) << i;
  }
  EXPECT_EQ(server->queries_served(), db.size());
}

TEST(CpirTest, CommunicationIsSquareRootShaped) {
  std::vector<uint64_t> db(100, 5);
  auto server = CpirServer::Create(db);
  ASSERT_TRUE(server.ok());
  auto client = CpirClient::Create(192, 9);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Read(&*server, 42).ok());
  EXPECT_EQ(client->last_upload_ciphertexts(), 10u);   // rows
  EXPECT_EQ(client->last_download_ciphertexts(), 10u); // cols
}

TEST(CpirTest, HandlesZeroEntriesAndColumns) {
  std::vector<uint64_t> db{0, 0, 7, 0, 0, 0};
  auto server = CpirServer::Create(db);
  ASSERT_TRUE(server.ok());
  auto client = CpirClient::Create(192, 11);
  ASSERT_TRUE(client.ok());
  for (size_t i = 0; i < db.size(); ++i) {
    auto got = client->Read(&*server, i);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, db[i]);
  }
}

TEST(CpirTest, RejectsBadInput) {
  EXPECT_FALSE(CpirServer::Create({}).ok());
  std::vector<uint64_t> db{1, 2, 3};
  auto server = CpirServer::Create(db);
  ASSERT_TRUE(server.ok());
  auto client = CpirClient::Create(192, 13);
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(client->Read(&*server, 3).ok());
}

TEST(KeywordPirTest, LookupsHitAndMiss) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t k = 0; k < 50; ++k) entries.emplace_back(k * 10, k * 1000);
  auto store = KeywordPirStore::Create(entries);
  ASSERT_TRUE(store.ok());
  Rng rng(15);
  for (uint64_t k = 0; k < 50; ++k) {
    auto hit = store->Lookup(k * 10, &rng);
    ASSERT_TRUE(hit.ok());
    ASSERT_TRUE(hit->has_value());
    EXPECT_EQ(**hit, k * 1000);
  }
  auto miss = store->Lookup(5, &rng);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->has_value());
  auto miss2 = store->Lookup(9999, &rng);
  ASSERT_TRUE(miss2.ok());
  EXPECT_FALSE(miss2->has_value());
}

TEST(KeywordPirTest, LogarithmicQueryCount) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t k = 0; k < 128; ++k) entries.emplace_back(k, k);
  auto store = KeywordPirStore::Create(entries);
  ASSERT_TRUE(store.ok());
  Rng rng(17);
  PirStats stats;
  auto hit = store->Lookup(64, &rng, &stats);
  ASSERT_TRUE(hit.ok());
  // Binary search over 128 keys: <= 8 reads of 2x128 bits upload each.
  EXPECT_LE(stats.upload_bits, 8 * 2 * 128u);
  EXPECT_GT(stats.upload_bits, 0u);
}

TEST(KeywordPirTest, RejectsBadInput) {
  EXPECT_FALSE(KeywordPirStore::Create({}).ok());
  EXPECT_FALSE(KeywordPirStore::Create({{1, 2}, {1, 3}}).ok());  // dup key
}

}  // namespace
}  // namespace tripriv
