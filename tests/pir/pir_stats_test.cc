// Regressions for the PirStats accounting contract and the batch error
// path.
//
//   * PirStats: every read path must ACCUMULATE into the caller's struct
//     with `+=`. The old single-read paths overwrote with `=`, so
//     interleaving a single read after a batch silently clobbered the
//     running totals.
//   * TwoServerPirBatchRead: a per-slot compute failure used to abort the
//     whole process via TRIPRIV_CHECK inside the ParallelFor region; it
//     must instead surface as the batch's typed error after the join.

#include <gtest/gtest.h>

#include "pir/it_pir.h"
#include "pir/recursive_pir.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

std::vector<std::vector<uint8_t>> MakeRecords(size_t n, size_t size) {
  std::vector<std::vector<uint8_t>> records(n, std::vector<uint8_t>(size));
  Rng rng(77);
  for (auto& r : records) {
    for (auto& b : r) b = static_cast<uint8_t>(rng.NextU64());
  }
  return records;
}

TEST(PirStatsTest, InterleavedReadPathsAccumulateIntoOneStruct) {
  const size_t n = 64;
  const size_t size = 8;
  auto records = MakeRecords(n, size);
  auto a = XorPirServer::Create(records);
  auto b = XorPirServer::Create(records);
  std::vector<XorPirServer> cube_servers;
  for (int i = 0; i < 4; ++i) {
    cube_servers.push_back(*XorPirServer::Create(records));
  }
  std::array<XorPirServer*, 4> cube{&cube_servers[0], &cube_servers[1],
                                    &cube_servers[2], &cube_servers[3]};
  Rng rng(1);
  PirStats stats;

  // Batch of 3, then a single 2-server read, then a cube read, then a
  // recursive read — one running total across all four paths.
  ASSERT_TRUE(TwoServerPirBatchRead(&*a, &*b, {1, 2, 3}, &rng, nullptr,
                                    &stats)
                  .ok());
  size_t expected_up = 3 * 2 * n;
  size_t expected_down = 3 * 2 * 8 * size;
  EXPECT_EQ(stats.upload_bits, expected_up);
  EXPECT_EQ(stats.download_bits, expected_down);

  // Regression: this single read used to OVERWRITE the batch totals.
  ASSERT_TRUE(TwoServerPirRead(&*a, &*b, 5, &rng, &stats).ok());
  expected_up += 2 * n;
  expected_down += 2 * 8 * size;
  EXPECT_EQ(stats.upload_bits, expected_up);
  EXPECT_EQ(stats.download_bits, expected_down);

  // Cube read: rows = cols = 8 for n = 64.
  ASSERT_TRUE(FourServerCubePirRead(cube, 9, &rng, &stats).ok());
  expected_up += 4 * (8 + 8);
  expected_down += 4 * 8 * size;
  EXPECT_EQ(stats.upload_bits, expected_up);
  EXPECT_EQ(stats.download_bits, expected_down);

  // Recursive read: 64 seed bits + 3 explicit 2-axis queries of side 8.
  auto g = HypercubeGeometry::Balanced(n, 2);
  ASSERT_TRUE(g.ok());
  std::vector<XorPirServer*> fleet{&cube_servers[0], &cube_servers[1],
                                   &cube_servers[2], &cube_servers[3]};
  ASSERT_TRUE(RecursivePirRead(fleet, *g, 11, &rng, nullptr, &stats).ok());
  expected_up += 64 + 3 * 2 * 8;
  expected_down += 4 * 8 * size;
  EXPECT_EQ(stats.upload_bits, expected_up);
  EXPECT_EQ(stats.download_bits, expected_down);

  stats.Reset();
  EXPECT_EQ(stats.upload_bits, 0u);
  EXPECT_EQ(stats.download_bits, 0u);
}

TEST(PirBatchErrorTest, ComputeFaultBecomesTypedErrorNotAbort) {
  auto records = MakeRecords(32, 8);
  auto a = XorPirServer::Create(records);
  auto b = XorPirServer::Create(records);
  ASSERT_TRUE(a.ok() && b.ok());

  // Replica b diverges mid-batch: every ComputeAnswer fails. The batch
  // must return the first slot's failure as a typed error — never abort
  // the process from inside the ParallelFor region.
  b->InjectComputeFault(Status::Unavailable("replica b diverged"));
  Rng rng(3);
  auto serial = TwoServerPirBatchRead(&*a, &*b, {4, 5, 6}, &rng, nullptr);
  ASSERT_FALSE(serial.ok());
  EXPECT_EQ(serial.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(serial.status().message().find("slot 0"), std::string::npos);
  EXPECT_NE(serial.status().message().find("replica b diverged"),
            std::string::npos);

  // Same through the pool path — the fault fires on worker threads.
  ThreadPool pool(2);
  auto pooled = TwoServerPirBatchRead(&*a, &*b, {1, 2, 3, 4, 5, 6, 7, 8},
                                      &rng, &pool);
  ASSERT_FALSE(pooled.ok());
  EXPECT_EQ(pooled.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(pooled.status().message().find("slot 0"), std::string::npos);

  // Disarm: the same servers serve the batch again.
  b->InjectComputeFault(Status());
  PirStats stats;
  auto healed = TwoServerPirBatchRead(&*a, &*b, {4, 5}, &rng, &pool, &stats);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ((*healed)[0], records[4]);
  EXPECT_EQ((*healed)[1], records[5]);
  EXPECT_EQ(stats.upload_bits, 2 * 2 * 32u);
}

TEST(PirBatchErrorTest, FailedBatchDoesNotTouchStats) {
  auto records = MakeRecords(16, 4);
  auto a = XorPirServer::Create(records);
  auto b = XorPirServer::Create(records);
  ASSERT_TRUE(a.ok() && b.ok());
  a->InjectComputeFault(Status::Internal("wedged"));
  Rng rng(5);
  PirStats stats;
  stats.upload_bits = 123;
  auto failed = TwoServerPirBatchRead(&*a, &*b, {0, 1}, &rng, nullptr, &stats);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  // The failed batch accumulated nothing.
  EXPECT_EQ(stats.upload_bits, 123u);
}

}  // namespace
}  // namespace tripriv
