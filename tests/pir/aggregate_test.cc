// Tests for private aggregate queries — the Section 3 scenario end to end.

#include <gtest/gtest.h>

#include "pir/aggregate.h"
#include "sdc/microaggregation.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

constexpr size_t kTestKeyBits = 192;

std::vector<GridAxis> PatientGrid() {
  return {
      {"height", 140, 205, 1},
      {"weight", 40, 160, 1},
  };
}

Predicate Section3Predicate() {
  return Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(165)),
      Predicate::Compare("weight", CompareOp::kGt, Value(105)));
}

TEST(PrivateAggregateTest, PaperSection3AttackSucceedsOnDataset2) {
  // The COUNT isolates one respondent; the AVG leaks their blood pressure
  // (146) — while the server sees only ciphertexts.
  auto server = PrivateAggregateServer::Build(PaperDataset2(), PatientGrid());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = PrivateAggregateClient::Create(kTestKeyBits, 3);
  ASSERT_TRUE(client.ok());

  auto count = client->Count(*server, Section3Predicate());
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 1u);

  auto avg = client->Average(*server, "blood_pressure", Section3Predicate());
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(*avg, 146.0);
}

TEST(PrivateAggregateTest, AttackNeutralizedByKAnonymization) {
  // Section 3's flip side: on (3-anonymized) data no predicate over the key
  // attributes isolates a single respondent.
  auto masked = MdavMicroaggregate(PaperDataset2(), 3);
  ASSERT_TRUE(masked.ok());
  auto server = PrivateAggregateServer::Build(masked->table, PatientGrid());
  ASSERT_TRUE(server.ok());
  auto client = PrivateAggregateClient::Create(kTestKeyBits, 5);
  ASSERT_TRUE(client.ok());
  auto count = client->Count(*server, Section3Predicate());
  ASSERT_TRUE(count.ok());
  EXPECT_TRUE(*count == 0 || *count >= 3) << *count;
}

TEST(PrivateAggregateTest, CountMatchesPlainExecution) {
  DataTable data = MakeClinicalTrial(60, 7);
  auto server = PrivateAggregateServer::Build(data, PatientGrid());
  ASSERT_TRUE(server.ok());
  auto client = PrivateAggregateClient::Create(kTestKeyBits, 9);
  ASSERT_TRUE(client.ok());
  Predicate p = Predicate::Compare("height", CompareOp::kGe, Value(175));
  auto priv_count = client->Count(*server, p);
  ASSERT_TRUE(priv_count.ok());
  auto plain_rows = p.MatchingRows(data);
  ASSERT_TRUE(plain_rows.ok());
  EXPECT_EQ(*priv_count, plain_rows->size());
}

TEST(PrivateAggregateTest, SumMatchesPlainExecution) {
  DataTable data = MakeClinicalTrial(40, 11);
  auto server = PrivateAggregateServer::Build(data, PatientGrid());
  ASSERT_TRUE(server.ok());
  auto client = PrivateAggregateClient::Create(kTestKeyBits, 13);
  ASSERT_TRUE(client.ok());
  Predicate p = Predicate::Compare("weight", CompareOp::kLt, Value(70));
  auto priv_sum = client->Sum(*server, "blood_pressure", p);
  ASSERT_TRUE(priv_sum.ok());
  auto rows = p.MatchingRows(data);
  ASSERT_TRUE(rows.ok());
  uint64_t expected = 0;
  const size_t bp = *data.schema().FindIndex("blood_pressure");
  for (size_t r : *rows) expected += static_cast<uint64_t>(data.at(r, bp).AsInt());
  EXPECT_EQ(*priv_sum, expected);
}

TEST(PrivateAggregateTest, EmptySelection) {
  DataTable data = PaperDataset1();
  auto server = PrivateAggregateServer::Build(data, PatientGrid());
  ASSERT_TRUE(server.ok());
  auto client = PrivateAggregateClient::Create(kTestKeyBits, 15);
  ASSERT_TRUE(client.ok());
  Predicate impossible =
      Predicate::Compare("height", CompareOp::kLt, Value(141));
  auto count = client->Count(*server, impossible);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
  EXPECT_EQ(client->Average(*server, "blood_pressure", impossible)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(PrivateAggregateTest, CoarserGridStillExact) {
  // Step-5 cells: predicates aligned to cell boundaries remain exact.
  DataTable data = PaperDataset2();
  std::vector<GridAxis> grid{{"height", 140, 205, 5}, {"weight", 40, 160, 5}};
  auto server = PrivateAggregateServer::Build(data, grid);
  ASSERT_TRUE(server.ok());
  EXPECT_LT(server->num_cells(), 400u);
  auto client = PrivateAggregateClient::Create(kTestKeyBits, 17);
  ASSERT_TRUE(client.ok());
  Predicate aligned = Predicate::Compare("height", CompareOp::kLt, Value(165));
  auto count = client->Count(*server, aligned);
  ASSERT_TRUE(count.ok());
  auto plain = aligned.MatchingRows(data);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(*count, plain->size());
}

TEST(PrivateAggregateTest, ServerViewIsCiphertextOnly) {
  auto server = PrivateAggregateServer::Build(PaperDataset2(), PatientGrid());
  ASSERT_TRUE(server.ok());
  auto client = PrivateAggregateClient::Create(kTestKeyBits, 19);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Count(*server, Section3Predicate()).ok());
  // The server cannot tell which cells were selected: all it stored is the
  // number of queries answered. (The selector ciphertexts are semantically
  // secure; PaillierTest.EncryptionIsRandomized covers the crypto side.)
  EXPECT_EQ(server->queries_served(), 1u);
}

TEST(PrivateAggregateTest, DpCountIsNoisyButCentered) {
  // The DP-over-PIR composition: server adds Laplace noise homomorphically.
  DataTable data = MakeClinicalTrial(80, 21);
  // Coarse grid keeps the per-trial selector small (and the test fast).
  std::vector<GridAxis> grid{{"height", 140, 205, 5}, {"weight", 40, 160, 5}};
  auto server = PrivateAggregateServer::Build(data, grid);
  ASSERT_TRUE(server.ok());
  auto client = PrivateAggregateClient::Create(kTestKeyBits, 23);
  ASSERT_TRUE(client.ok());
  Predicate p = Predicate::Compare("height", CompareOp::kGe, Value(170));
  auto exact = client->Count(*server, p);
  ASSERT_TRUE(exact.ok());
  Rng server_rng(29);
  double sum = 0.0;
  bool any_noise = false;
  const int trials = 8;
  for (int i = 0; i < trials; ++i) {
    auto noisy = client->DpCount(*server, p, 0.5, &server_rng);
    ASSERT_TRUE(noisy.ok()) << noisy.status().ToString();
    sum += static_cast<double>(*noisy);
    if (*noisy != static_cast<int64_t>(*exact)) any_noise = true;
  }
  EXPECT_TRUE(any_noise);  // epsilon = 0.5 noise is clearly visible
  EXPECT_NEAR(sum / trials, static_cast<double>(*exact), 4.0);
}

TEST(PrivateAggregateTest, DpCountHandlesNegativeResults) {
  // An empty selection plus Laplace noise can go negative: the modular
  // encoding must decode it as a signed value, not a huge positive one.
  DataTable data = PaperDataset1();
  std::vector<GridAxis> grid{{"height", 140, 205, 5}, {"weight", 40, 160, 5}};
  auto server = PrivateAggregateServer::Build(data, grid);
  ASSERT_TRUE(server.ok());
  auto client = PrivateAggregateClient::Create(kTestKeyBits, 31);
  ASSERT_TRUE(client.ok());
  Predicate impossible =
      Predicate::Compare("height", CompareOp::kLt, Value(140));
  Rng server_rng(37);
  bool saw_negative = false;
  for (int i = 0; i < 12; ++i) {
    auto noisy = client->DpCount(*server, impossible, 0.3, &server_rng);
    ASSERT_TRUE(noisy.ok());
    EXPECT_LT(std::abs(*noisy), 100);  // sane magnitude either sign
    if (*noisy < 0) saw_negative = true;
  }
  EXPECT_TRUE(saw_negative);
}

TEST(PrivateAggregateTest, DpCountRejectsBadEpsilon) {
  DataTable data = PaperDataset1();
  std::vector<GridAxis> grid{{"height", 140, 205, 5}, {"weight", 40, 160, 5}};
  auto server = PrivateAggregateServer::Build(data, grid);
  ASSERT_TRUE(server.ok());
  auto client = PrivateAggregateClient::Create(kTestKeyBits, 41);
  ASSERT_TRUE(client.ok());
  Rng server_rng(43);
  EXPECT_FALSE(
      client->DpCount(*server, Predicate::True(), 0.0, &server_rng).ok());
  EXPECT_FALSE(
      client->DpCount(*server, Predicate::True(), -1.0, &server_rng).ok());
}

TEST(PrivateAggregateTest, BuildValidatesInput) {
  EXPECT_FALSE(
      PrivateAggregateServer::Build(PaperDataset1(), {}).ok());
  // Out-of-domain record.
  std::vector<GridAxis> narrow{{"height", 150, 160, 1}, {"weight", 40, 160, 1}};
  EXPECT_FALSE(PrivateAggregateServer::Build(PaperDataset1(), narrow).ok());
  // Categorical grid attribute.
  std::vector<GridAxis> bad{{"aids", 0, 1, 1}};
  EXPECT_FALSE(PrivateAggregateServer::Build(PaperDataset1(), bad).ok());
  // Oversized grid.
  std::vector<GridAxis> huge{{"height", 0, 10000000, 1}};
  EXPECT_FALSE(PrivateAggregateServer::Build(PaperDataset1(), huge).ok());
}

}  // namespace
}  // namespace tripriv
