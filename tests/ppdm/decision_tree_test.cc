#include "ppdm/decision_tree.h"

#include <gtest/gtest.h>

#include "sdc/noise.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

TEST(DecisionTreeTest, LearnsFunction1) {
  DataTable train = MakeClassification(2000, 1, 3);
  DataTable test = MakeClassification(500, 1, 4);
  auto tree = DecisionTree::Train(train, "group");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto acc = tree->Accuracy(test);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);  // axis-aligned boundary, easily learnable
}

TEST(DecisionTreeTest, LearnsFunction2And3) {
  for (int f : {2, 3}) {
    DataTable train = MakeClassification(3000, f, 5);
    DataTable test = MakeClassification(600, f, 6);
    auto tree = DecisionTree::Train(train, "group");
    ASSERT_TRUE(tree.ok());
    auto acc = tree->Accuracy(test);
    ASSERT_TRUE(acc.ok());
    EXPECT_GT(*acc, 0.9) << "function " << f;
  }
}

TEST(DecisionTreeTest, PureLeafOnConstantLabels) {
  Schema s({
      {"x", AttributeType::kReal, AttributeRole::kNonConfidential},
      {"y", AttributeType::kCategorical, AttributeRole::kConfidential},
  });
  auto t = DataTable::FromRows(s, {{1.0, "A"}, {2.0, "A"}, {3.0, "A"}});
  ASSERT_TRUE(t.ok());
  auto tree = DecisionTree::Train(*t, "y");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 1u);
  EXPECT_EQ(*tree->Predict(*t, 0), "A");
  EXPECT_DOUBLE_EQ(*tree->Accuracy(*t), 1.0);
}

TEST(DecisionTreeTest, CategoricalSplits) {
  // Label fully determined by a categorical attribute.
  Schema s({
      {"color", AttributeType::kCategorical, AttributeRole::kNonConfidential},
      {"label", AttributeType::kCategorical, AttributeRole::kConfidential},
  });
  DataTable t(s);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(i % 2 == 0 ? "red" : "blue"),
                             Value(i % 2 == 0 ? "hot" : "cold")})
                    .ok());
  }
  DecisionTreeConfig config;
  config.min_leaf = 2;
  auto tree = DecisionTree::Train(t, "label", config);
  ASSERT_TRUE(tree.ok());
  EXPECT_DOUBLE_EQ(*tree->Accuracy(t), 1.0);
  EXPECT_GT(tree->num_nodes(), 1u);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  DataTable train = MakeClassification(2000, 2, 7);
  DecisionTreeConfig config;
  config.max_depth = 2;
  auto tree = DecisionTree::Train(train, "group", config);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->depth(), 2u);
}

TEST(DecisionTreeTest, RejectsBadInput) {
  DataTable train = MakeClassification(100, 1, 9);
  EXPECT_FALSE(DecisionTree::Train(train, "salary").ok());   // numeric label
  EXPECT_FALSE(DecisionTree::Train(train, "missing").ok());  // no such column
  Schema s({{"y", AttributeType::kCategorical, AttributeRole::kConfidential}});
  DataTable empty(s);
  EXPECT_FALSE(DecisionTree::Train(empty, "y").ok());
}

TEST(DecisionTreeTest, ToStringRendersTree) {
  DataTable train = MakeClassification(500, 1, 11);
  auto tree = DecisionTree::Train(train, "group");
  ASSERT_TRUE(tree.ok());
  const std::string s = tree->ToString();
  EXPECT_NE(s.find("age"), std::string::npos);
  EXPECT_NE(s.find("-> "), std::string::npos);
}

TEST(ByClassReconstructionTest, RestoresClassifierAccuracy) {
  // The headline Agrawal-Srikant result: training on perturbed data hurts;
  // training on by-class reconstructed data recovers most of the accuracy.
  DataTable train = MakeClassification(3000, 1, 13);
  DataTable test = MakeClassification(600, 1, 14);
  const size_t age_col = 0;
  const double sigma = 12.0;  // substantial: age spans 20-80
  auto perturbed = AddFixedNoise(train, sigma, age_col, 15);
  ASSERT_TRUE(perturbed.ok());

  auto tree_clean = DecisionTree::Train(train, "group");
  auto tree_noisy = DecisionTree::Train(*perturbed, "group");
  auto reconstructed = ReconstructTableByClass(*perturbed, {age_col}, sigma,
                                               "group");
  ASSERT_TRUE(reconstructed.ok()) << reconstructed.status().ToString();
  auto tree_reco = DecisionTree::Train(*reconstructed, "group");
  ASSERT_TRUE(tree_clean.ok() && tree_noisy.ok() && tree_reco.ok());

  const double acc_clean = *tree_clean->Accuracy(test);
  const double acc_noisy = *tree_noisy->Accuracy(test);
  const double acc_reco = *tree_reco->Accuracy(test);
  EXPECT_GT(acc_clean, 0.95);
  EXPECT_GT(acc_reco, acc_noisy);         // reconstruction helps
  EXPECT_GT(acc_reco, acc_clean - 0.12);  // and recovers most of the gap
}

TEST(ByClassReconstructionTest, KeepsLabelsAndShape) {
  DataTable train = MakeClassification(500, 1, 17);
  auto perturbed = AddFixedNoise(train, 10.0, 0, 18);
  ASSERT_TRUE(perturbed.ok());
  auto reco = ReconstructTableByClass(*perturbed, {0}, 10.0, "group");
  ASSERT_TRUE(reco.ok());
  EXPECT_EQ(reco->num_rows(), train.num_rows());
  for (size_t r = 0; r < train.num_rows(); ++r) {
    EXPECT_EQ(reco->at(r, 4), train.at(r, 4));  // labels untouched
  }
}

}  // namespace
}  // namespace tripriv
