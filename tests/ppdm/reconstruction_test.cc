#include "ppdm/reconstruction.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "util/random.h"

namespace tripriv {
namespace {

// Perturbed sample from a bimodal original distribution.
std::vector<double> BimodalPerturbed(size_t n, double sigma, uint64_t seed,
                                     std::vector<double>* original = nullptr) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Bernoulli(0.5) ? rng.Normal(20.0, 2.0)
                                        : rng.Normal(60.0, 2.0);
    if (original != nullptr) original->push_back(x);
    out.push_back(x + rng.Normal(0.0, sigma));
  }
  return out;
}

TEST(ReconstructionTest, RecoversBimodalShape) {
  std::vector<double> original;
  auto perturbed = BimodalPerturbed(4000, 10.0, 3, &original);
  auto dist = ReconstructDistribution(perturbed, 10.0);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  // The reconstructed density should place most mass near the two true
  // modes and little in the valley between them, even though the noisy
  // sample smears the modes together (sigma = 10 vs mode gap 40).
  double mass_modes = 0.0;
  double mass_valley = 0.0;
  for (size_t j = 0; j < dist->probabilities.size(); ++j) {
    const double c = dist->BinCenter(j);
    if (std::fabs(c - 20.0) < 8.0 || std::fabs(c - 60.0) < 8.0) {
      mass_modes += dist->probabilities[j];
    } else if (std::fabs(c - 40.0) < 8.0) {
      mass_valley += dist->probabilities[j];
    }
  }
  EXPECT_GT(mass_modes, 0.7);
  EXPECT_LT(mass_valley, 0.1);
}

TEST(ReconstructionTest, MeanIsPreserved) {
  std::vector<double> original;
  auto perturbed = BimodalPerturbed(4000, 8.0, 7, &original);
  auto dist = ReconstructDistribution(perturbed, 8.0);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->MeanEstimate(), Mean(original), 1.5);
}

TEST(ReconstructionTest, ProbabilitiesSumToOne) {
  auto perturbed = BimodalPerturbed(500, 5.0, 11);
  auto dist = ReconstructDistribution(perturbed, 5.0);
  ASSERT_TRUE(dist.ok());
  double sum = 0;
  for (double p : dist->probabilities) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(dist->iterations, 0u);
}

TEST(ReconstructionTest, QuantileIsMonotone) {
  auto perturbed = BimodalPerturbed(1000, 5.0, 13);
  auto dist = ReconstructDistribution(perturbed, 5.0);
  ASSERT_TRUE(dist.ok());
  double prev = dist->Quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = dist->Quantile(q);
    EXPECT_GE(cur, prev - 1e-9);
    prev = cur;
  }
  EXPECT_LE(dist->Quantile(0.0), dist->Quantile(1.0));
}

TEST(ReconstructionTest, SharperWithLowerNoise) {
  // With lower noise the reconstruction concentrates better around modes.
  auto conc = [](double sigma, uint64_t seed) {
    auto perturbed = BimodalPerturbed(3000, sigma, seed);
    auto dist = ReconstructDistribution(perturbed, sigma);
    EXPECT_TRUE(dist.ok());
    double mass = 0.0;
    for (size_t j = 0; j < dist->probabilities.size(); ++j) {
      const double c = dist->BinCenter(j);
      if (std::fabs(c - 20.0) < 5.0 || std::fabs(c - 60.0) < 5.0) {
        mass += dist->probabilities[j];
      }
    }
    return mass;
  };
  EXPECT_GT(conc(2.0, 17), conc(25.0, 17));
}

TEST(ReconstructionTest, RejectsBadInput) {
  EXPECT_FALSE(ReconstructDistribution({}, 1.0).ok());
  EXPECT_FALSE(ReconstructDistribution({1.0, 2.0}, 0.0).ok());
  ReconstructionConfig config;
  config.bins = 1;
  EXPECT_FALSE(ReconstructDistribution({1.0, 2.0}, 1.0, config).ok());
}

TEST(ReconstructValuesTest, AlignedWithInputAndRankPreserving) {
  std::vector<double> original;
  auto perturbed = BimodalPerturbed(800, 6.0, 19, &original);
  auto values = ReconstructValues(perturbed, 6.0);
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), perturbed.size());
  // Rank-preserving: if perturbed[i] < perturbed[j] then value[i] <= value[j].
  for (size_t i = 0; i + 1 < 100; ++i) {
    for (size_t j = i + 1; j < 100; ++j) {
      if (perturbed[i] < perturbed[j]) {
        EXPECT_LE((*values)[i], (*values)[j] + 1e-9);
      }
    }
  }
}

TEST(ReconstructValuesTest, ValuesApproximateOriginalDistribution) {
  std::vector<double> original;
  auto perturbed = BimodalPerturbed(3000, 8.0, 23, &original);
  auto values = ReconstructValues(perturbed, 8.0);
  ASSERT_TRUE(values.ok());
  // The reconstructed values should be much closer to the original
  // *distribution* than the perturbed ones: compare variances.
  const double var_orig = SampleVariance(original);
  const double var_pert = SampleVariance(perturbed);
  const double var_reco = SampleVariance(*values);
  EXPECT_LT(std::fabs(var_reco - var_orig), std::fabs(var_pert - var_orig));
}

}  // namespace
}  // namespace tripriv
