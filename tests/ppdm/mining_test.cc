// Tests for randomized response, association rules, rule hiding, and the
// sparsity attack.

#include <algorithm>

#include <gtest/gtest.h>

#include "ppdm/association_rules.h"
#include "ppdm/randomized_response.h"
#include "ppdm/rule_hiding.h"
#include "ppdm/sparsity_attack.h"
#include "sdc/noise.h"
#include "table/datasets.h"
#include "util/random.h"

namespace tripriv {
namespace {

TEST(RandomizedResponseTest, EstimatorIsUnbiased) {
  DataTable data = MakeCensus(8000, 3);
  const size_t diag_col = 5;
  auto truth = ObservedDistribution(data, diag_col);
  ASSERT_TRUE(truth.ok());
  auto masked = RandomizedResponseMask(data, diag_col, 0.6, 7);
  ASSERT_TRUE(masked.ok());
  std::vector<std::string> domain;
  for (const auto& [k, v] : *truth) domain.push_back(k);
  auto estimate = EstimateTrueDistribution(*masked, diag_col, 0.6, domain);
  ASSERT_TRUE(estimate.ok());
  for (const auto& [category, p] : *truth) {
    EXPECT_NEAR(estimate->at(category), p, 0.035) << category;
  }
}

TEST(RandomizedResponseTest, MaskingActuallyPerturbs) {
  DataTable data = MakeCensus(1000, 5);
  auto masked = RandomizedResponseMask(data, 5, 0.5, 9);
  ASSERT_TRUE(masked.ok());
  size_t changed = 0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    if (!(data.at(r, 5) == masked->at(r, 5))) ++changed;
  }
  // ~half the records redrawn, of which ~(1 - marginal) actually change.
  EXPECT_GT(changed, 200u);
  EXPECT_LT(changed, 600u);
}

TEST(RandomizedResponseTest, FullRetentionIsIdentity) {
  DataTable data = MakeCensus(200, 7);
  auto masked = RandomizedResponseMask(data, 5, 1.0, 11);
  ASSERT_TRUE(masked.ok());
  EXPECT_EQ(*masked, data);
}

TEST(RandomizedResponseTest, RejectsBadInput) {
  DataTable data = MakeCensus(100, 9);
  EXPECT_FALSE(RandomizedResponseMask(data, 0, 0.5, 1).ok());   // integer col
  EXPECT_FALSE(RandomizedResponseMask(data, 5, -0.1, 1).ok());
  EXPECT_FALSE(RandomizedResponseMask(data, 5, 1.1, 1).ok());
  EXPECT_FALSE(EstimateTrueDistribution(data, 5, 0.0, {"x"}).ok());
  EXPECT_FALSE(EstimateTrueDistribution(data, 5, 0.5, {}).ok());
}

TEST(AprioriTest, FindsPlantedPatterns) {
  TransactionDb db = MakeTransactions(1000, 50, 3, 13);
  auto frequent = AprioriFrequentItemsets(db, 250);
  ASSERT_TRUE(frequent.ok());
  // Planted patterns appear in ~40% of transactions; some itemset of size
  // >= 2 must be frequent at support 25%.
  bool has_pair = false;
  for (const auto& fi : *frequent) {
    if (fi.items.size() >= 2) has_pair = true;
  }
  EXPECT_TRUE(has_pair);
}

TEST(AprioriTest, SupportCountsAreExact) {
  TransactionDb db = {{1, 2, 3}, {1, 2}, {2, 3}, {1, 3}, {1, 2, 3}};
  EXPECT_EQ(SupportCount(db, {1}), 4u);
  EXPECT_EQ(SupportCount(db, {1, 2}), 3u);
  EXPECT_EQ(SupportCount(db, {1, 2, 3}), 2u);
  EXPECT_EQ(SupportCount(db, {4}), 0u);
  auto frequent = AprioriFrequentItemsets(db, 2);
  ASSERT_TRUE(frequent.ok());
  for (const auto& fi : *frequent) {
    EXPECT_EQ(fi.support, SupportCount(db, fi.items));
    EXPECT_GE(fi.support, 2u);
  }
}

TEST(AprioriTest, MonotonicityHolds) {
  TransactionDb db = MakeTransactions(400, 30, 2, 17);
  auto frequent = AprioriFrequentItemsets(db, 60);
  ASSERT_TRUE(frequent.ok());
  // Every subset of a frequent itemset is frequent (check one level).
  for (const auto& fi : *frequent) {
    if (fi.items.size() < 2) continue;
    for (size_t skip = 0; skip < fi.items.size(); ++skip) {
      std::vector<int> subset;
      for (size_t i = 0; i < fi.items.size(); ++i) {
        if (i != skip) subset.push_back(fi.items[i]);
      }
      EXPECT_GE(SupportCount(db, subset), fi.support);
    }
  }
}

TEST(RuleMiningTest, ConfidenceIsCorrect) {
  TransactionDb db = {{1, 2}, {1, 2}, {1, 2}, {1}, {2}};
  auto rules = MineAssociationRules(db, 2, 0.5);
  ASSERT_TRUE(rules.ok());
  bool found = false;
  for (const auto& rule : *rules) {
    if (rule.antecedent == std::vector<int>{1} &&
        rule.consequent == std::vector<int>{2}) {
      found = true;
      EXPECT_EQ(rule.support, 3u);
      EXPECT_DOUBLE_EQ(rule.confidence, 0.75);  // 3 of 4 transactions with 1
    }
  }
  EXPECT_TRUE(found);
}

TEST(RuleHidingTest, HidesSensitiveRule) {
  TransactionDb db = MakeTransactions(500, 30, 3, 19);
  auto rules = MineAssociationRules(db, 100, 0.6);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());
  const AssociationRule sensitive = (*rules)[0];
  auto hidden = HideAssociationRules(db, {sensitive}, 100, 0.6);
  ASSERT_TRUE(hidden.ok()) << hidden.status().ToString();
  auto after = MineAssociationRules(hidden->sanitized, 100, 0.6);
  ASSERT_TRUE(after.ok());
  for (const auto& rule : *after) {
    EXPECT_FALSE(rule.SameAs(sensitive));
  }
  EXPECT_GT(hidden->modified_transactions, 0u);
}

TEST(RuleHidingTest, SideEffectsAreTracked) {
  TransactionDb db = MakeTransactions(500, 25, 4, 23);
  auto rules = MineAssociationRules(db, 90, 0.55);
  ASSERT_TRUE(rules.ok());
  ASSERT_GE(rules->size(), 2u);
  auto hidden = HideAssociationRules(db, {(*rules)[0]}, 90, 0.55);
  ASSERT_TRUE(hidden.ok());
  // Lost rules (if any) must have been minable before.
  for (const auto& lost : hidden->lost_rules) {
    bool existed = false;
    for (const auto& r : *rules) existed |= r.SameAs(lost);
    EXPECT_TRUE(existed);
  }
}

TEST(RuleHidingTest, UnminableRuleRejected) {
  TransactionDb db = {{1, 2}, {3, 4}};
  AssociationRule ghost;
  ghost.antecedent = {9};
  ghost.consequent = {8};
  auto r = HideAssociationRules(db, {ghost}, 1, 0.5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SparsityAttackTest, DisclosureGrowsWithDimension) {
  // The [11] effect: same noise, more attributes => more rare combinations
  // disclosed.
  size_t low_d = 0;
  size_t high_d = 0;
  for (size_t d : {4u, 14u}) {
    DataTable original = MakeHighDimBinary(400, d, 29);
    auto cols = original.schema().QuasiIdentifierIndices();
    // Perturb every QI column with the same absolute noise. Work on a
    // real-typed copy so the noise is not rounded away.
    std::vector<Attribute> attrs = original.schema().attributes();
    for (size_t c : cols) attrs[c].type = AttributeType::kReal;
    DataTable real_masked{Schema(attrs)};
    Rng rng(33);
    for (size_t r = 0; r < original.num_rows(); ++r) {
      std::vector<Value> row = original.row(r);
      for (size_t c : cols) {
        row[c] = Value(original.at(r, c).ToDouble() + rng.Normal(0.0, 0.3));
      }
      ASSERT_TRUE(real_masked.AppendRow(std::move(row)).ok());
    }
    auto result = SparsityAttack(original, real_masked);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (d == 4u) {
      low_d = result->disclosed;
    } else {
      high_d = result->disclosed;
      EXPECT_GT(result->unique_originals, 100u);  // sparse regime
    }
  }
  EXPECT_GT(high_d, low_d);
}

TEST(SparsityAttackTest, ValidatesInput) {
  DataTable a = MakeHighDimBinary(50, 5, 1);
  DataTable b = MakeHighDimBinary(40, 5, 1);
  EXPECT_FALSE(SparsityAttack(a, b).ok());
  DataTable census = MakeCensus(50, 1);  // non-binary QIs
  EXPECT_FALSE(SparsityAttack(census, census).ok());
}

}  // namespace
}  // namespace tripriv
