// Tests for fault injection in PartyNetwork and the ReliableChannel ARQ
// layer: drop/duplicate/reorder/corrupt/latency/crash semantics, wire
// discipline (sequence numbers, acks, checksums, retransmission, duplicate
// suppression), and typed transient failure instead of hangs.

#include "smc/reliable_channel.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "smc/party.h"

namespace tripriv {
namespace {

std::vector<BigInt> Payload(std::initializer_list<int64_t> vs) {
  std::vector<BigInt> out;
  for (int64_t v : vs) out.push_back(BigInt(v));
  return out;
}

TEST(FaultPlanTest, ZeroFaultDefaultIsByteIdenticalToReliableFabric) {
  PartyNetwork reliable(3, 5);
  PartyNetwork faulty(3, 5);
  faulty.InjectFaults(FaultPlan{});  // all knobs zero
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(reliable.Send(0, 1, "t", Payload({round, 7})).ok());
    ASSERT_TRUE(faulty.Send(0, 1, "t", Payload({round, 7})).ok());
    auto a = reliable.Receive(1);
    auto b = faulty.Receive(1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->payload[0], b->payload[0]);
  }
  EXPECT_EQ(reliable.bytes_transferred(), faulty.bytes_transferred());
  EXPECT_EQ(reliable.messages_sent(), faulty.messages_sent());
  EXPECT_TRUE(faulty.fault_log().empty());
}

TEST(FaultPlanTest, DropIsDeterministicPerSeed) {
  auto dropped_tags = [](uint64_t seed) {
    PartyNetwork net(2, 1);
    FaultPlan plan;
    plan.drop_rate = 0.5;
    plan.seed = seed;
    net.InjectFaults(plan);
    for (int i = 0; i < 32; ++i) {
      EXPECT_TRUE(net.Send(0, 1, "m" + std::to_string(i), Payload({i})).ok());
    }
    std::string log;
    for (const auto& event : net.fault_log()) log += event.tag + ";";
    return log;
  };
  EXPECT_EQ(dropped_tags(11), dropped_tags(11));
  EXPECT_NE(dropped_tags(11), dropped_tags(12));
}

TEST(FaultPlanTest, DroppedMessagesStayInTranscriptButNotMailbox) {
  PartyNetwork net(2, 1);
  FaultPlan plan;
  plan.drop_rate = 1.0;
  net.InjectFaults(plan);
  ASSERT_TRUE(net.Send(0, 1, "doomed", Payload({9})).ok());
  // The wire saw the message (an eavesdropper could too) ...
  EXPECT_EQ(net.transcript().size(), 1u);
  ASSERT_EQ(net.fault_log().size(), 1u);
  EXPECT_EQ(net.fault_log()[0].type, FaultType::kDrop);
  // ... but the receiver never gets it.
  EXPECT_EQ(net.Receive(1).status().code(), StatusCode::kUnavailable);
}

TEST(FaultPlanTest, LatencyDelaysDelivery) {
  PartyNetwork net(2, 1);
  FaultPlan plan;
  plan.max_latency_ticks = 4;
  plan.seed = 3;  // some latency draw in [0, 4]
  net.InjectFaults(plan);
  ASSERT_TRUE(net.Send(0, 1, "slow", Payload({1})).ok());
  // Polling advances one tick per call; within max_latency_ticks + 1 polls
  // the message must surface.
  bool delivered = false;
  for (int polls = 0; polls <= 5 && !delivered; ++polls) {
    delivered = net.Receive(1).ok();
  }
  EXPECT_TRUE(delivered);
}

TEST(FaultPlanTest, CrashFiresAtStepAndSilencesParty) {
  PartyNetwork net(3, 1);
  FaultPlan plan;
  plan.crash_party = 1;
  plan.crash_at_step = 2;
  net.InjectFaults(plan);
  ASSERT_TRUE(net.Send(0, 2, "ok", Payload({1})).ok());  // step 1: delivered
  EXPECT_FALSE(net.any_crashed());
  ASSERT_TRUE(net.Send(1, 2, "lost", Payload({2})).ok());  // step 2: crash
  EXPECT_TRUE(net.any_crashed());
  EXPECT_TRUE(net.crashed(1));
  EXPECT_FALSE(net.crashed(0));
  // Party 2 only ever sees the pre-crash message.
  auto first = net.Receive(2);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->tag, "ok");
  EXPECT_EQ(net.Receive(2).status().code(), StatusCode::kUnavailable);
  // The crashed party's mailbox is dead too.
  ASSERT_TRUE(net.Send(0, 1, "to-the-dead", Payload({3})).ok());
  EXPECT_EQ(net.Receive(1).status().code(), StatusCode::kUnavailable);
}

TEST(ReliableChannelTest, DeliversInOrderOverLossyFabric) {
  PartyNetwork net(2, 7);
  FaultPlan plan;
  plan.drop_rate = 0.3;
  plan.duplicate_rate = 0.2;
  plan.reorder_rate = 0.3;
  net.InjectFaults(plan);
  ReliableChannel ch(&net, net.retry_policy());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ch.Send(0, 1, "seq", Payload({i})).ok());
  }
  for (int i = 0; i < 20; ++i) {
    auto msg = ch.Receive(1);
    ASSERT_TRUE(msg.ok()) << i << ": " << msg.status().ToString();
    EXPECT_EQ(msg->tag, "seq");
    ASSERT_EQ(msg->payload.size(), 1u);  // header stripped
    EXPECT_EQ(msg->payload[0], BigInt(i)) << "order violated at " << i;
  }
  EXPECT_GT(net.fault_log().size(), 0u);
}

TEST(ReliableChannelTest, ChecksumCatchesCorruption) {
  PartyNetwork net(2, 7);
  FaultPlan plan;
  plan.corrupt_rate = 1.0;  // every first transmission is damaged
  net.InjectFaults(plan);
  RetryPolicy policy;
  net.set_retry_policy(policy);
  ReliableChannel ch(&net, policy);
  ASSERT_TRUE(ch.Send(0, 1, "data", Payload({42, 43})).ok());
  auto msg = ch.Receive(1);
  // Corruption hits retransmissions too (rate 1.0), so delivery can never
  // succeed with a damaged payload: either the checksum rejected every copy
  // (deadline) or... nothing else. No silent wrong value.
  if (msg.ok()) {
    EXPECT_EQ(msg->payload[0], BigInt(42));
    EXPECT_EQ(msg->payload[1], BigInt(43));
  } else {
    EXPECT_TRUE(IsTransient(msg.status())) << msg.status().ToString();
    EXPECT_GT(ch.checksum_failures(), 0u);
  }
}

TEST(ReliableChannelTest, RetransmitsThroughDropsAndSuppressesDuplicates) {
  PartyNetwork net(2, 21);
  FaultPlan plan;
  plan.drop_rate = 0.5;
  plan.duplicate_rate = 0.5;
  plan.seed = 99;
  net.InjectFaults(plan);
  ReliableChannel ch(&net, net.retry_policy());
  const int kMessages = 30;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(ch.Send(0, 1, "m", Payload({100 + i})).ok());
  }
  int received = 0;
  for (int i = 0; i < kMessages; ++i) {
    auto msg = ch.Receive(1);
    if (!msg.ok()) break;
    EXPECT_EQ(msg->payload[0], BigInt(100 + received));
    ++received;
  }
  EXPECT_EQ(received, kMessages);
  EXPECT_GT(ch.retransmissions(), 0u);
  // Each delivered message was acked at least once.
  EXPECT_GE(ch.acks_sent(), static_cast<size_t>(kMessages));
}

TEST(ReliableChannelTest, ReceiveDeadlineExpiresInsteadOfHanging) {
  PartyNetwork net(2, 7);
  net.InjectFaults(FaultPlan{});
  RetryPolicy policy;
  policy.deadline_ticks = 32;
  ReliableChannel ch(&net, policy);
  const uint64_t before = net.now();
  auto msg = ch.Receive(1);  // nobody ever sends
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(net.now(), before + policy.deadline_ticks);
}

TEST(ReliableChannelTest, CrashSurfacesAsUnavailable) {
  PartyNetwork net(2, 7);
  FaultPlan plan;
  plan.crash_party = 0;
  plan.crash_at_step = 1;
  net.InjectFaults(plan);
  RetryPolicy policy;
  policy.deadline_ticks = 32;
  net.set_retry_policy(policy);
  ReliableChannel ch(&net, policy);
  ASSERT_TRUE(ch.Send(0, 1, "never-arrives", Payload({1})).ok());
  auto msg = ch.Receive(1);
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kUnavailable);
}

TEST(ReliableChannelTest, StaleMessagesFromEarlierSessionsAreIgnored) {
  PartyNetwork net(2, 7);
  FaultPlan plan;
  plan.duplicate_rate = 1.0;  // guarantee leftovers
  net.InjectFaults(plan);
  {
    ReliableChannel first(&net, net.retry_policy());
    ASSERT_TRUE(first.Send(0, 1, "old", Payload({1})).ok());
    ASSERT_TRUE(first.Receive(1).ok());
    // The duplicate of "old" is still sitting in party 1's mailbox.
  }
  ReliableChannel second(&net, net.retry_policy());
  ASSERT_TRUE(second.Send(0, 1, "new", Payload({2})).ok());
  auto msg = second.Receive(1);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->tag, "new");  // the stale duplicate was filtered, not it
  EXPECT_EQ(msg->payload[0], BigInt(2));
  EXPECT_GT(second.stale_dropped(), 0u);
}

TEST(ReliableChannelTest, RetransmissionsAreByteIdenticalOnTheWire) {
  PartyNetwork net(2, 7);
  FaultPlan plan;
  plan.drop_rate = 0.6;
  plan.seed = 5;
  net.InjectFaults(plan);
  RetryPolicy policy;  // deep budget: 0.6 drop eats the default 6 attempts
  policy.max_attempts = 16;
  policy.deadline_ticks = 1 << 14;
  ReliableChannel ch(&net, policy);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ch.Send(0, 1, "x", Payload({1000 + i})).ok());
  }
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ch.Receive(1).ok());
  ASSERT_GT(ch.retransmissions(), 0u);
  // Group transcript entries by (tag, seq): all copies must be identical,
  // so retransmitting leaks nothing beyond the original transmission.
  for (const auto& a : net.transcript()) {
    if (IsReliableControlMessage(a)) continue;
    for (const auto& b : net.transcript()) {
      if (IsReliableControlMessage(b)) continue;
      if (a.from != b.from || a.to != b.to || a.tag != b.tag) continue;
      if (a.payload.size() < 2 || b.payload.size() < 2) continue;
      if (a.payload[1] != b.payload[1]) continue;  // different seq
      ASSERT_EQ(a.payload.size(), b.payload.size());
      for (size_t i = 0; i < a.payload.size(); ++i) {
        EXPECT_EQ(a.payload[i], b.payload[i]);
      }
    }
  }
}

TEST(ReliableChannelTest, ZeroDeadlineFailsImmediatelyOnEmptyMailbox) {
  // Regression: with deadline_ticks == 0 the receive loop's "budget
  // exhausted" check never fired before the first poll, so a Receive on an
  // empty mailbox burned a whole poll cycle (and with no retry budget could
  // spin through retransmit bookkeeping) instead of failing fast. A zero
  // deadline means "do not wait at all": typed failure, no ticks consumed.
  PartyNetwork net(2, 1);
  net.InjectFaults(FaultPlan{});  // reliable fabric, ARQ framing active
  RetryPolicy policy;
  policy.deadline_ticks = 0;
  ReliableChannel ch(&net, policy);
  const uint64_t before = net.now();
  auto received = ch.Receive(1);
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(net.now(), before);  // failed without advancing simulated time
}

TEST(ReliableChannelTest, ZeroDeadlineStillDrainsBufferedMessages) {
  // A message already parked in the reorder buffer was delivered by an
  // earlier poll; handing it over costs no waiting, so even a zero-deadline
  // Receive must return it rather than fail.
  PartyNetwork net(2, 1);
  net.InjectFaults(FaultPlan{});
  RetryPolicy generous;
  ReliableChannel ch(&net, generous);
  ASSERT_TRUE(ch.Send(0, 1, "a", Payload({1})).ok());
  ASSERT_TRUE(ch.Send(0, 1, "b", Payload({2})).ok());
  auto first = ch.Receive(1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->tag, "a");
  // Second message is in the mailbox now; a fresh zero-deadline channel
  // sharing the session would not see it, but this channel may have it
  // buffered. Either way the zero-deadline contract holds: an immediate
  // answer or an immediate typed failure, never a wait.
  RetryPolicy zero;
  zero.deadline_ticks = 0;
  const uint64_t before = net.now();
  ReliableChannel impatient(&net, zero);
  auto second = impatient.Receive(1);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(net.now(), before);
}

TEST(MakeChannelTest, PicksRawOrReliableByFabricMode) {
  PartyNetwork reliable_net(2, 1);
  auto raw = MakeChannel(&reliable_net);
  ASSERT_NE(dynamic_cast<RawChannel*>(raw.get()), nullptr);
  PartyNetwork faulty_net(2, 1);
  faulty_net.InjectFaults(FaultPlan{});
  auto arq = MakeChannel(&faulty_net);
  ASSERT_NE(dynamic_cast<ReliableChannel*>(arq.get()), nullptr);
}

}  // namespace
}  // namespace tripriv
