// Tests for the party network, secure sum, Shamir sharing, and PSI.

#include <gtest/gtest.h>

#include "smc/party.h"
#include "smc/psi.h"
#include "smc/secure_sum.h"
#include "smc/shamir.h"

namespace tripriv {
namespace {

TEST(PartyNetworkTest, FifoDeliveryAndTranscript) {
  PartyNetwork net(3, 1);
  ASSERT_TRUE(net.Send(0, 1, "a", {BigInt(1)}).ok());
  ASSERT_TRUE(net.Send(2, 1, "b", {BigInt(2), BigInt(3)}).ok());
  auto m1 = net.Receive(1);
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1->tag, "a");
  EXPECT_EQ(m1->from, 0u);
  auto m2 = net.Receive(1);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->tag, "b");
  EXPECT_EQ(net.transcript().size(), 2u);
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_GT(net.bytes_transferred(), 0u);
}

TEST(PartyNetworkTest, EmptyMailboxAndBadIndices) {
  PartyNetwork net(2, 1);
  // An empty mailbox is a transient condition (the peer may simply not have
  // sent yet), not a state error: kUnavailable, worth retrying.
  EXPECT_EQ(net.Receive(0).status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(net.Receive(0).status().transient());
  EXPECT_EQ(net.Send(0, 5, "x", {}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(net.Receive(9).status().code(), StatusCode::kOutOfRange);
}

TEST(SecureSumTest, ComputesExactSum) {
  for (size_t parties : {2u, 3u, 8u}) {
    PartyNetwork net(parties, 42);
    std::vector<BigInt> inputs;
    BigInt expected;
    for (size_t p = 0; p < parties; ++p) {
      inputs.push_back(BigInt(static_cast<int64_t>(100 * p + 7)));
      expected += inputs.back();
    }
    auto sum = SecureSum(&net, inputs, BigInt(1) << 40);
    ASSERT_TRUE(sum.ok()) << sum.status().ToString();
    EXPECT_EQ(*sum, expected) << parties << " parties";
  }
}

TEST(SecureSumTest, TranscriptNeverContainsRawInputs) {
  // The core owner-privacy claim: messages carry only masked values (plus
  // the final aggregate).
  PartyNetwork net(4, 7);
  std::vector<BigInt> inputs{BigInt(111), BigInt(222), BigInt(333), BigInt(444)};
  const BigInt modulus = BigInt(1) << 64;
  auto sum = SecureSum(&net, inputs, modulus);
  ASSERT_TRUE(sum.ok());
  const BigInt total(111 + 222 + 333 + 444);
  for (const auto& msg : net.transcript()) {
    if (msg.tag == "secure_sum/result") continue;
    for (const BigInt& payload : msg.payload) {
      for (const BigInt& input : inputs) {
        EXPECT_NE(payload, input) << "raw input leaked in " << msg.tag;
      }
      // Running totals of un-masked prefixes must not appear either.
      EXPECT_NE(payload, BigInt(111 + 222));
      EXPECT_NE(payload, BigInt(111 + 222 + 333));
    }
  }
  EXPECT_EQ(*sum, total);
}

TEST(SecureSumTest, VectorVariantAndWrapAround) {
  PartyNetwork net(3, 9);
  const BigInt modulus(1000);
  std::vector<std::vector<BigInt>> inputs{
      {BigInt(900), BigInt(1)},
      {BigInt(900), BigInt(2)},
      {BigInt(900), BigInt(3)},
  };
  auto sums = SecureSumVector(&net, inputs, modulus);
  ASSERT_TRUE(sums.ok());
  EXPECT_EQ((*sums)[0], BigInt(700));  // 2700 mod 1000
  EXPECT_EQ((*sums)[1], BigInt(6));
}

TEST(SecureSumTest, CountsHelper) {
  PartyNetwork net(3, 11);
  std::vector<std::vector<uint64_t>> counts{{10, 0, 5}, {1, 2, 3}, {0, 0, 7}};
  auto sums = SecureSumCounts(&net, counts);
  ASSERT_TRUE(sums.ok());
  EXPECT_EQ(*sums, (std::vector<uint64_t>{11, 2, 15}));
}

TEST(SecureSumTest, RejectsBadInput) {
  PartyNetwork net(3, 1);
  std::vector<BigInt> two_inputs{BigInt(1), BigInt(2)};
  EXPECT_FALSE(SecureSum(&net, two_inputs, BigInt(100)).ok());
  std::vector<BigInt> inputs{BigInt(1), BigInt(2), BigInt(200)};
  EXPECT_FALSE(SecureSum(&net, inputs, BigInt(100)).ok());  // out of range
  EXPECT_FALSE(SecureSum(&net, inputs, BigInt(0)).ok());
  PartyNetwork solo(1, 1);
  EXPECT_FALSE(SecureSum(&solo, {BigInt(1)}, BigInt(10)).ok());
}

TEST(ShamirTest, RoundTripAllThresholds) {
  Rng rng(3);
  const BigInt prime = BigInt::FromString("2305843009213693951").value();  // 2^61-1
  const BigInt secret(123456789);
  for (size_t t : {1u, 2u, 3u, 5u}) {
    auto shares = ShamirShareSecret(secret, 5, t, prime, &rng);
    ASSERT_TRUE(shares.ok()) << "t=" << t;
    auto back = ShamirReconstruct(*shares, prime);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, secret);
    // Exactly t shares suffice.
    std::vector<ShamirShare> subset(shares->begin(), shares->begin() + t);
    auto partial = ShamirReconstruct(subset, prime);
    ASSERT_TRUE(partial.ok());
    EXPECT_EQ(*partial, secret);
  }
}

TEST(ShamirTest, FewerThanThresholdRevealsNothingUseful) {
  Rng rng(5);
  const BigInt prime = BigInt::FromString("2305843009213693951").value();
  const BigInt secret(42);
  auto shares = ShamirShareSecret(secret, 5, 3, prime, &rng);
  ASSERT_TRUE(shares.ok());
  // Interpolating from only 2 of 3 required shares yields a value that is
  // (with overwhelming probability) NOT the secret.
  std::vector<ShamirShare> two(shares->begin(), shares->begin() + 2);
  auto wrong = ShamirReconstruct(two, prime);
  ASSERT_TRUE(wrong.ok());
  EXPECT_NE(*wrong, secret);
}

TEST(ShamirTest, AdditiveHomomorphism) {
  Rng rng(7);
  const BigInt prime(10007);
  auto a = ShamirShareSecret(BigInt(1234), 4, 2, prime, &rng);
  auto b = ShamirShareSecret(BigInt(4321), 4, 2, prime, &rng);
  ASSERT_TRUE(a.ok() && b.ok());
  auto sum_shares = ShamirAddShares(*a, *b, prime);
  ASSERT_TRUE(sum_shares.ok());
  auto sum = ShamirReconstruct(*sum_shares, prime);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, BigInt(5555));
}

TEST(ShamirTest, RejectsBadInput) {
  Rng rng(9);
  const BigInt prime(101);
  EXPECT_FALSE(ShamirShareSecret(BigInt(5), 3, 0, prime, &rng).ok());
  EXPECT_FALSE(ShamirShareSecret(BigInt(5), 2, 3, prime, &rng).ok());
  EXPECT_FALSE(ShamirShareSecret(BigInt(200), 3, 2, prime, &rng).ok());
  EXPECT_FALSE(ShamirShareSecret(BigInt(5), 200, 2, prime, &rng).ok());
  EXPECT_FALSE(ShamirReconstruct({}, prime).ok());
  auto shares = ShamirShareSecret(BigInt(5), 3, 2, prime, &rng);
  ASSERT_TRUE(shares.ok());
  std::vector<ShamirShare> dup{(*shares)[0], (*shares)[0]};
  EXPECT_FALSE(ShamirReconstruct(dup, prime).ok());
}

TEST(PsiTest, FindsExactIntersection) {
  PartyNetwork net(2, 13);
  std::vector<int64_t> a{1, 5, 9, 42, 100};
  std::vector<int64_t> b{2, 5, 42, 77};
  auto result = PrivateSetIntersection(&net, a, b, 96);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->intersection, (std::vector<int64_t>{5, 42}));
  EXPECT_GT(result->bytes_transferred, 0u);
}

TEST(PsiTest, DisjointAndIdenticalSets) {
  PartyNetwork net(2, 17);
  auto empty = PrivateSetIntersection(&net, {1, 2}, {3, 4}, 96);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->intersection.empty());
  PartyNetwork net2(2, 19);
  auto all = PrivateSetIntersection(&net2, {7, 8, 9}, {9, 8, 7}, 96);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->intersection, (std::vector<int64_t>{7, 8, 9}));
}

TEST(PsiTest, TranscriptHidesNonSharedElements) {
  PartyNetwork net(2, 23);
  std::vector<int64_t> a{11, 22, 33};
  std::vector<int64_t> b{22, 44};
  auto result = PrivateSetIntersection(&net, a, b, 96);
  ASSERT_TRUE(result.ok());
  // No message payload may contain a raw element id (they are all
  // exponentiated group elements or the final intersection).
  for (const auto& msg : net.transcript()) {
    if (msg.tag == "psi/result") continue;
    for (const BigInt& payload : msg.payload) {
      for (int64_t e : {11, 33, 44}) {
        EXPECT_NE(payload, BigInt(e)) << msg.tag;
        EXPECT_NE(payload, BigInt(e + 2)) << msg.tag;  // the encoding
      }
    }
  }
}

TEST(PsiTest, RejectsBadInput) {
  PartyNetwork net(3, 1);
  EXPECT_FALSE(PrivateSetIntersection(&net, {1}, {2}, 96).ok());  // 3 parties
  PartyNetwork net2(2, 1);
  EXPECT_FALSE(PrivateSetIntersection(&net2, {-1}, {2}, 96).ok());
  EXPECT_FALSE(PrivateSetIntersection(&net2, {1}, {2}, 8).ok());  // tiny group
}

}  // namespace
}  // namespace tripriv
