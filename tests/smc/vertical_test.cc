// Tests for vertically partitioned secure joint moments.

#include <cmath>

#include <gtest/gtest.h>

#include "smc/vertical.h"
#include "stats/descriptive.h"
#include "table/datasets.h"
#include "util/random.h"

namespace tripriv {
namespace {

TEST(SecureJointMomentsTest, MatchesPlainCovariance) {
  DataTable data = MakeClinicalTrial(150, 3);
  const auto heights = data.NumericColumn("height").value();
  const auto weights = data.NumericColumn("weight").value();
  PartyNetwork net(2, 5);
  auto result = SecureJointMoments(&net, heights, weights, 100, 192);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->covariance, SampleCovariance(heights, weights),
              std::fabs(SampleCovariance(heights, weights)) * 0.02 + 0.5);
  EXPECT_NEAR(result->correlation, PearsonCorrelation(heights, weights), 0.02);
  EXPECT_GT(result->bytes_transferred, 0u);
}

TEST(SecureJointMomentsTest, NegativeAndFractionalValues) {
  Rng rng(7);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 120; ++i) {
    const double base = rng.Normal(0.0, 2.0);  // centered: negative values
    x.push_back(base + rng.Normal(0.0, 0.5));
    y.push_back(-1.5 * base + rng.Normal(0.0, 0.5));  // negative correlation
  }
  PartyNetwork net(2, 9);
  auto result = SecureJointMoments(&net, x, y, 10000, 192);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->covariance, SampleCovariance(x, y), 0.05);
  EXPECT_LT(result->correlation, -0.9);
}

TEST(SecureJointMomentsTest, HigherScaleIsMorePrecise) {
  Rng rng(11);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(rng.UniformDouble(0.0, 1.0));
    y.push_back(x.back() * 0.5 + rng.UniformDouble(0.0, 0.1));
  }
  const double truth = SampleCovariance(x, y);
  PartyNetwork coarse_net(2, 13);
  PartyNetwork fine_net(2, 13);
  auto coarse = SecureJointMoments(&coarse_net, x, y, 10, 192);
  auto fine = SecureJointMoments(&fine_net, x, y, 100000, 192);
  ASSERT_TRUE(coarse.ok() && fine.ok());
  EXPECT_LE(std::fabs(fine->covariance - truth),
            std::fabs(coarse->covariance - truth) + 1e-9);
}

TEST(SecureJointMomentsTest, ColumnsNeverCrossInClear) {
  DataTable data = MakeClinicalTrial(60, 15);
  const auto heights = data.NumericColumn("height").value();
  const auto weights = data.NumericColumn("weight").value();
  PartyNetwork net(2, 17);
  ASSERT_TRUE(SecureJointMoments(&net, heights, weights, 100, 192).ok());
  // Quantized shifted column values (scale 100) must not appear in any
  // payload: only ciphertexts and the two aggregate sums cross.
  const double min_h = *std::min_element(heights.begin(), heights.end());
  for (const auto& msg : net.transcript()) {
    if (msg.tag == "joint_moments/aggregates") continue;
    if (msg.tag == "scalar_product/pubkey") continue;
    for (const BigInt& payload : msg.payload) {
      for (double h : heights) {
        const auto q = static_cast<int64_t>(std::llround((h - min_h) * 100));
        EXPECT_NE(payload, BigInt(q));
      }
    }
  }
}

TEST(SecureJointMomentsTest, RejectsBadInput) {
  PartyNetwork net(2, 19);
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{1, 2};
  EXPECT_FALSE(SecureJointMoments(&net, x, y).ok());
  EXPECT_FALSE(SecureJointMoments(&net, {1.0}, {2.0}).ok());
  EXPECT_FALSE(SecureJointMoments(&net, x, x, 0).ok());
  PartyNetwork net3(3, 19);
  EXPECT_FALSE(SecureJointMoments(&net3, x, x).ok());
}

}  // namespace
}  // namespace tripriv
