// Tests for the Paillier cryptosystem, secure scalar product, and
// distributed ID3.

#include <gtest/gtest.h>

#include "ppdm/decision_tree.h"
#include "smc/distributed_id3.h"
#include "smc/paillier.h"
#include "smc/scalar_product.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

// Experiment-scale keys keep the test suite fast.
constexpr size_t kTestKeyBits = 192;

PaillierKeyPair TestKeys(uint64_t seed = 1) {
  Rng rng(seed);
  auto keys = PaillierGenerateKeys(kTestKeyBits, &rng);
  EXPECT_TRUE(keys.ok());
  return std::move(keys).value();
}

TEST(PaillierTest, EncryptDecryptRoundTrip) {
  auto keys = TestKeys();
  Rng rng(2);
  for (int64_t m : {int64_t{0}, int64_t{1}, int64_t{146}, int64_t{1234567890}}) {
    auto c = PaillierEncrypt(keys.pub, BigInt(m), &rng);
    ASSERT_TRUE(c.ok());
    auto back = PaillierDecrypt(keys.pub, keys.priv, *c);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, BigInt(m)) << m;
  }
}

TEST(PaillierTest, EncryptionIsRandomized) {
  auto keys = TestKeys();
  Rng rng(3);
  auto c1 = PaillierEncrypt(keys.pub, BigInt(7), &rng);
  auto c2 = PaillierEncrypt(keys.pub, BigInt(7), &rng);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(*c1, *c2);  // semantic security: same plaintext, new randomness
}

TEST(PaillierTest, HomomorphicAddition) {
  auto keys = TestKeys();
  Rng rng(5);
  auto c1 = PaillierEncrypt(keys.pub, BigInt(100), &rng);
  auto c2 = PaillierEncrypt(keys.pub, BigInt(46), &rng);
  ASSERT_TRUE(c1.ok() && c2.ok());
  const BigInt sum_c = PaillierAdd(keys.pub, *c1, *c2);
  auto sum = PaillierDecrypt(keys.pub, keys.priv, sum_c);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, BigInt(146));
}

TEST(PaillierTest, HomomorphicPlainOperations) {
  auto keys = TestKeys();
  Rng rng(7);
  auto c = PaillierEncrypt(keys.pub, BigInt(20), &rng);
  ASSERT_TRUE(c.ok());
  auto plus = PaillierDecrypt(keys.pub, keys.priv,
                              PaillierAddPlain(keys.pub, *c, BigInt(22)));
  ASSERT_TRUE(plus.ok());
  EXPECT_EQ(*plus, BigInt(42));
  auto times = PaillierDecrypt(keys.pub, keys.priv,
                               PaillierMulPlain(keys.pub, *c, BigInt(7)));
  ASSERT_TRUE(times.ok());
  EXPECT_EQ(*times, BigInt(140));
  auto zero = PaillierEncryptZero(keys.pub, &rng);
  ASSERT_TRUE(zero.ok());
  auto rerandomized = PaillierDecrypt(keys.pub, keys.priv,
                                      PaillierAdd(keys.pub, *c, *zero));
  ASSERT_TRUE(rerandomized.ok());
  EXPECT_EQ(*rerandomized, BigInt(20));
}

TEST(PaillierTest, ModularWraparound) {
  auto keys = TestKeys();
  Rng rng(9);
  const BigInt big = keys.pub.n - BigInt(1);
  auto c = PaillierEncrypt(keys.pub, big, &rng);
  ASSERT_TRUE(c.ok());
  auto doubled = PaillierDecrypt(keys.pub, keys.priv,
                                 PaillierMulPlain(keys.pub, *c, BigInt(2)));
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(*doubled, keys.pub.n - BigInt(2));  // 2(n-1) mod n
}

TEST(PaillierTest, RejectsBadInput) {
  auto keys = TestKeys();
  Rng rng(11);
  EXPECT_FALSE(PaillierEncrypt(keys.pub, keys.pub.n, &rng).ok());
  EXPECT_FALSE(PaillierEncrypt(keys.pub, BigInt(-1), &rng).ok());
  EXPECT_FALSE(PaillierDecrypt(keys.pub, keys.priv, keys.pub.n_squared).ok());
  EXPECT_FALSE(PaillierGenerateKeys(32, &rng).ok());
}

TEST(ScalarProductTest, ComputesDotProduct) {
  PartyNetwork net(2, 13);
  std::vector<BigInt> a{BigInt(1), BigInt(0), BigInt(3), BigInt(2)};
  std::vector<BigInt> b{BigInt(5), BigInt(7), BigInt(1), BigInt(10)};
  auto dot = SecureScalarProduct(&net, a, b, kTestKeyBits);
  ASSERT_TRUE(dot.ok()) << dot.status().ToString();
  EXPECT_EQ(*dot, BigInt(5 + 0 + 3 + 20));
}

TEST(ScalarProductTest, TranscriptContainsOnlyCiphertexts) {
  PartyNetwork net(2, 17);
  std::vector<BigInt> a{BigInt(123), BigInt(456)};
  std::vector<BigInt> b{BigInt(1), BigInt(1)};
  auto dot = SecureScalarProduct(&net, a, b, kTestKeyBits);
  ASSERT_TRUE(dot.ok());
  EXPECT_EQ(*dot, BigInt(579));
  for (const auto& msg : net.transcript()) {
    if (msg.tag == "scalar_product/pubkey") continue;
    for (const BigInt& payload : msg.payload) {
      EXPECT_NE(payload, BigInt(123));
      EXPECT_NE(payload, BigInt(456));
      EXPECT_NE(payload, BigInt(579));  // even the result crosses encrypted
    }
  }
}

TEST(ScalarProductTest, RejectsBadInput) {
  PartyNetwork net(2, 1);
  std::vector<BigInt> a{BigInt(1)};
  std::vector<BigInt> b{BigInt(1), BigInt(2)};
  EXPECT_FALSE(SecureScalarProduct(&net, a, b, kTestKeyBits).ok());
  EXPECT_FALSE(SecureScalarProduct(&net, {}, {}, kTestKeyBits).ok());
  std::vector<BigInt> neg{BigInt(-1)};
  std::vector<BigInt> one{BigInt(1)};
  EXPECT_FALSE(SecureScalarProduct(&net, neg, one, kTestKeyBits).ok());
  PartyNetwork net3(3, 1);
  EXPECT_FALSE(SecureScalarProduct(&net3, one, one, kTestKeyBits).ok());
}

std::vector<DataTable> SplitHorizontally(const DataTable& data, size_t parts) {
  std::vector<DataTable> out;
  for (size_t p = 0; p < parts; ++p) {
    std::vector<size_t> rows;
    for (size_t r = p; r < data.num_rows(); r += parts) rows.push_back(r);
    out.push_back(data.SelectRows(rows));
  }
  return out;
}

TEST(DistributedId3Test, MatchesCentralizedAccuracy) {
  DataTable train = MakeClassification(1500, 3, 19);
  DataTable test = MakeClassification(400, 3, 20);
  auto partitions = SplitHorizontally(train, 3);
  PartyNetwork net(3, 21);
  DistributedId3Config config;
  auto tree = DistributedId3Tree::Train(partitions, "group", config, &net);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto acc = tree->Accuracy(test);
  ASSERT_TRUE(acc.ok());
  // Function 3 depends on age (binned) and elevel, both visible to ID3.
  EXPECT_GT(*acc, 0.85);
  EXPECT_GT(net.messages_sent(), 0u);
}

TEST(DistributedId3Test, NoRecordCrossesTheWire) {
  DataTable train = MakeClassification(300, 1, 23);
  auto partitions = SplitHorizontally(train, 2);
  PartyNetwork net(2, 25);
  DistributedId3Config config;
  config.max_depth = 3;
  auto tree = DistributedId3Tree::Train(partitions, "group", config, &net);
  ASSERT_TRUE(tree.ok());
  // Every non-result message payload is a masked partial sum: it must not
  // equal any record's raw salary or age (cast to integers).
  for (const auto& msg : net.transcript()) {
    if (msg.tag == "secure_sum/result") continue;
    for (const BigInt& payload : msg.payload) {
      auto v = payload.ToI64();
      if (!v.has_value()) continue;  // >= 2^63: clearly a mask
      for (size_t r = 0; r < train.num_rows(); ++r) {
        EXPECT_NE(*v, static_cast<int64_t>(train.at(r, 1).AsReal()))
            << "salary leaked";
      }
    }
  }
}

TEST(DistributedId3Test, RejectsBadSetups) {
  DataTable train = MakeClassification(100, 1, 27);
  auto partitions = SplitHorizontally(train, 2);
  PartyNetwork wrong_size(3, 1);
  DistributedId3Config config;
  EXPECT_FALSE(
      DistributedId3Tree::Train(partitions, "group", config, &wrong_size).ok());
  PartyNetwork net(2, 1);
  EXPECT_FALSE(
      DistributedId3Tree::Train({train}, "group", config, &net).ok());
  EXPECT_FALSE(
      DistributedId3Tree::Train(partitions, "salary", config, &net).ok());
}

}  // namespace
}  // namespace tripriv
