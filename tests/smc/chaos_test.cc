// Chaos sweeps: every SMC protocol under deterministic fault injection.
//
// The contract (ISSUE: robustness): with a fixed seed and any drop rate
// <= 0.2, a protocol run either returns exactly the fault-free result or a
// typed transient error (kUnavailable / kDeadlineExceeded) — never a wrong
// answer, a hang, or a CHECK-abort. Shamir reconstruction must succeed
// whenever >= t shares survive. Run on its own with `ctest -L chaos`.

#include <gtest/gtest.h>

#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "smc/distributed_id3.h"
#include "smc/psi.h"
#include "smc/reliable_channel.h"
#include "smc/scalar_product.h"
#include "smc/secure_sum.h"
#include "smc/shamir.h"
#include "smc/vertical.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

struct ChaosParam {
  double drop_rate;
  uint64_t fault_seed;
};

void PrintTo(const ChaosParam& p, std::ostream* os) {
  *os << "drop" << static_cast<int>(p.drop_rate * 100) << "pct_seed"
      << p.fault_seed;
}

FaultPlan DropPlan(const ChaosParam& p) {
  FaultPlan plan;
  plan.drop_rate = p.drop_rate;
  plan.seed = p.fault_seed;
  return plan;
}

/// Asserts the chaos contract on a faulty result given the fault-free one.
template <typename T>
void ExpectEqualOrTransient(const Result<T>& faulty, const T& reference,
                            const char* what) {
  if (faulty.ok()) {
    EXPECT_EQ(*faulty, reference) << what << ": wrong result under faults";
  } else {
    EXPECT_TRUE(IsTransient(faulty.status()))
        << what << ": non-transient failure " << faulty.status().ToString();
  }
}

class ChaosSweepTest : public ::testing::TestWithParam<ChaosParam> {};

INSTANTIATE_TEST_SUITE_P(
    DropRates, ChaosSweepTest,
    ::testing::Values(ChaosParam{0.0, 1}, ChaosParam{0.0, 2},
                      ChaosParam{0.05, 1}, ChaosParam{0.05, 2},
                      ChaosParam{0.2, 1}, ChaosParam{0.2, 2},
                      ChaosParam{0.2, 3}),
    ::testing::PrintToStringParamName());

TEST_P(ChaosSweepTest, SecureSum) {
  const std::vector<BigInt> inputs{BigInt(111), BigInt(222), BigInt(333)};
  const BigInt modulus = BigInt(1) << 40;

  PartyNetwork reference_net(3, 42);
  auto reference = SecureSum(&reference_net, inputs, modulus);
  ASSERT_TRUE(reference.ok());

  PartyNetwork net(3, 42);
  net.InjectFaults(DropPlan(GetParam()));
  ExpectEqualOrTransient(SecureSum(&net, inputs, modulus), *reference,
                         "secure sum");
}

TEST_P(ChaosSweepTest, SecureSumVector) {
  const std::vector<std::vector<BigInt>> inputs{
      {BigInt(900), BigInt(1)}, {BigInt(900), BigInt(2)},
      {BigInt(900), BigInt(3)}, {BigInt(17), BigInt(4)}};
  const BigInt modulus(1000);

  PartyNetwork reference_net(4, 9);
  auto reference = SecureSumVector(&reference_net, inputs, modulus);
  ASSERT_TRUE(reference.ok());

  PartyNetwork net(4, 9);
  net.InjectFaults(DropPlan(GetParam()));
  ExpectEqualOrTransient(SecureSumVector(&net, inputs, modulus), *reference,
                         "secure sum vector");
}

TEST_P(ChaosSweepTest, ScalarProduct) {
  std::vector<BigInt> a{BigInt(3), BigInt(0), BigInt(7), BigInt(2)};
  std::vector<BigInt> b{BigInt(5), BigInt(4), BigInt(1), BigInt(6)};

  PartyNetwork reference_net(2, 7);
  auto reference = SecureScalarProduct(&reference_net, a, b, 256);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(*reference, BigInt(3 * 5 + 7 * 1 + 2 * 6));

  PartyNetwork net(2, 7);
  net.InjectFaults(DropPlan(GetParam()));
  ExpectEqualOrTransient(SecureScalarProduct(&net, a, b, 256), *reference,
                         "scalar product");
}

TEST_P(ChaosSweepTest, PrivateSetIntersection) {
  const std::vector<int64_t> set_a{1, 5, 9, 42, 100};
  const std::vector<int64_t> set_b{2, 5, 42, 77};

  PartyNetwork reference_net(2, 13);
  auto reference = PrivateSetIntersection(&reference_net, set_a, set_b, 96);
  ASSERT_TRUE(reference.ok());

  PartyNetwork net(2, 13);
  net.InjectFaults(DropPlan(GetParam()));
  auto faulty = PrivateSetIntersection(&net, set_a, set_b, 96);
  if (faulty.ok()) {
    EXPECT_EQ(faulty->intersection, reference->intersection);
  } else {
    EXPECT_TRUE(IsTransient(faulty.status())) << faulty.status().ToString();
  }
}

TEST_P(ChaosSweepTest, ShamirReconstructOverNetwork) {
  const BigInt prime = BigInt::FromString("2305843009213693951").value();
  const BigInt secret(987654321);
  Rng share_rng(3);
  auto shares = ShamirShareSecret(secret, 5, 3, prime, &share_rng);
  ASSERT_TRUE(shares.ok());

  PartyNetwork net(5, 4);
  net.InjectFaults(DropPlan(GetParam()));
  ExpectEqualOrTransient(ShamirReconstructOverNetwork(&net, *shares, 3, prime),
                         secret, "shamir reconstruction");
}

TEST_P(ChaosSweepTest, DistributedId3) {
  DataTable train = MakeClassification(120, 2, 11);
  std::vector<DataTable> partitions;
  for (size_t p = 0; p < 2; ++p) {
    std::vector<size_t> rows;
    for (size_t r = p; r < train.num_rows(); r += 2) rows.push_back(r);
    partitions.push_back(train.SelectRows(rows));
  }
  DistributedId3Config config;
  config.max_depth = 3;

  PartyNetwork reference_net(2, 13);
  auto reference =
      DistributedId3Tree::Train(partitions, "group", config, &reference_net);
  ASSERT_TRUE(reference.ok());
  auto reference_acc = reference->Accuracy(train);
  ASSERT_TRUE(reference_acc.ok());

  PartyNetwork net(2, 13);
  net.InjectFaults(DropPlan(GetParam()));
  auto faulty = DistributedId3Tree::Train(partitions, "group", config, &net);
  if (faulty.ok()) {
    // Count aggregation is deterministic, so the faulty-run tree must be
    // the fault-free tree (same size, same predictions).
    EXPECT_EQ(faulty->num_nodes(), reference->num_nodes());
    auto faulty_acc = faulty->Accuracy(train);
    ASSERT_TRUE(faulty_acc.ok());
    EXPECT_EQ(*faulty_acc, *reference_acc);
  } else {
    EXPECT_TRUE(IsTransient(faulty.status())) << faulty.status().ToString();
  }
}

TEST_P(ChaosSweepTest, SecureJointMoments) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0, 6.5};
  const std::vector<double> y{2.1, 3.9, 6.2, 8.0, 9.8, 13.1};

  PartyNetwork reference_net(2, 23);
  auto reference = SecureJointMoments(&reference_net, x, y, 100, 256);
  ASSERT_TRUE(reference.ok());

  PartyNetwork net(2, 23);
  net.InjectFaults(DropPlan(GetParam()));
  auto faulty = SecureJointMoments(&net, x, y, 100, 256);
  if (faulty.ok()) {
    EXPECT_EQ(faulty->covariance, reference->covariance);
    EXPECT_EQ(faulty->correlation, reference->correlation);
  } else {
    EXPECT_TRUE(IsTransient(faulty.status())) << faulty.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Mixed adversity: drops, duplicates, reordering, corruption, and latency at
// once. The reliable channel must still deliver exactly or fail typed.

FaultPlan MixedPlan(uint64_t seed) {
  FaultPlan plan;
  plan.drop_rate = 0.1;
  plan.duplicate_rate = 0.1;
  plan.reorder_rate = 0.2;
  plan.corrupt_rate = 0.1;
  plan.max_latency_ticks = 3;
  plan.seed = seed;
  return plan;
}

TEST(ChaosMixedTest, SecureSumUnderAllFaultTypes) {
  const std::vector<BigInt> inputs{BigInt(10), BigInt(20), BigInt(30),
                                   BigInt(40)};
  const BigInt modulus = BigInt(1) << 32;
  PartyNetwork reference_net(4, 5);
  auto reference = SecureSum(&reference_net, inputs, modulus);
  ASSERT_TRUE(reference.ok());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    PartyNetwork net(4, 5);
    net.InjectFaults(MixedPlan(seed));
    ExpectEqualOrTransient(SecureSum(&net, inputs, modulus), *reference,
                           "secure sum (mixed faults)");
  }
}

TEST(ChaosMixedTest, PsiUnderAllFaultTypes) {
  const std::vector<int64_t> set_a{11, 22, 33, 44};
  const std::vector<int64_t> set_b{22, 44, 55};
  PartyNetwork reference_net(2, 17);
  auto reference = PrivateSetIntersection(&reference_net, set_a, set_b, 96);
  ASSERT_TRUE(reference.ok());
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    PartyNetwork net(2, 17);
    net.InjectFaults(MixedPlan(seed));
    auto faulty = PrivateSetIntersection(&net, set_a, set_b, 96);
    if (faulty.ok()) {
      EXPECT_EQ(faulty->intersection, reference->intersection);
    } else {
      EXPECT_TRUE(IsTransient(faulty.status())) << faulty.status().ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Crash degradation: a dead party yields a typed transient error from the
// aggregation protocols, and Shamir reconstruction shrugs off up to n - t
// losses.

TEST(ChaosCrashTest, SecureSumDetectsCrashedParty) {
  const std::vector<BigInt> inputs{BigInt(1), BigInt(2), BigInt(3), BigInt(4)};
  FaultPlan plan;
  plan.crash_party = 2;
  plan.crash_at_step = 3;
  PartyNetwork net(4, 42);
  RetryPolicy policy;
  policy.deadline_ticks = 64;  // keep the simulated wait short
  net.set_retry_policy(policy);
  net.InjectFaults(plan);
  auto result = SecureSum(&net, inputs, BigInt(1) << 32);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status().ToString();
}

TEST(ChaosCrashTest, ScalarProductDetectsCrashedParty) {
  std::vector<BigInt> a{BigInt(3), BigInt(7)};
  std::vector<BigInt> b{BigInt(5), BigInt(1)};
  FaultPlan plan;
  plan.crash_party = 1;
  plan.crash_at_step = 2;
  PartyNetwork net(2, 7);
  RetryPolicy policy;
  policy.deadline_ticks = 64;
  net.set_retry_policy(policy);
  net.InjectFaults(plan);
  auto result = SecureScalarProduct(&net, a, b, 256);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(IsTransient(result.status())) << result.status().ToString();
}

TEST(ChaosCrashTest, DistributedId3DetectsCrashedParty) {
  DataTable train = MakeClassification(60, 2, 11);
  std::vector<DataTable> partitions;
  for (size_t p = 0; p < 2; ++p) {
    std::vector<size_t> rows;
    for (size_t r = p; r < train.num_rows(); r += 2) rows.push_back(r);
    partitions.push_back(train.SelectRows(rows));
  }
  DistributedId3Config config;
  config.max_depth = 2;
  FaultPlan plan;
  plan.crash_party = 1;
  plan.crash_at_step = 5;
  PartyNetwork net(2, 13);
  RetryPolicy policy;
  policy.deadline_ticks = 64;
  net.set_retry_policy(policy);
  net.InjectFaults(plan);
  auto result = DistributedId3Tree::Train(partitions, "group", config, &net);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(IsTransient(result.status())) << result.status().ToString();
}

TEST(ChaosCrashTest, ShamirSurvivesUpToNMinusTCrashes) {
  const BigInt prime(10007);
  const BigInt secret(4242);
  Rng share_rng(7);
  auto shares = ShamirShareSecret(secret, 5, 3, prime, &share_rng);
  ASSERT_TRUE(shares.ok());

  // One party dead: 4 of 5 shares arrive, threshold 3 — reconstructs.
  FaultPlan plan;
  plan.crash_party = 3;
  plan.crash_at_step = 1;
  PartyNetwork net(5, 4);
  RetryPolicy policy;
  policy.deadline_ticks = 64;
  net.set_retry_policy(policy);
  net.InjectFaults(plan);
  auto secret_back = ShamirReconstructOverNetwork(&net, *shares, 3, prime);
  ASSERT_TRUE(secret_back.ok()) << secret_back.status().ToString();
  EXPECT_EQ(*secret_back, secret);
}

TEST(ChaosCrashTest, ShamirFailsTypedBelowThreshold) {
  const BigInt prime(10007);
  const BigInt secret(4242);
  Rng share_rng(7);
  auto shares = ShamirShareSecret(secret, 5, 3, prime, &share_rng);
  ASSERT_TRUE(shares.ok());

  // Every inter-party message lost: only the collector's own share remains,
  // below threshold 3 — a typed kUnavailable, not a wrong secret or a hang.
  FaultPlan plan;
  plan.drop_rate = 1.0;
  PartyNetwork net(5, 4);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.deadline_ticks = 32;
  net.set_retry_policy(policy);
  net.InjectFaults(plan);
  auto result = ShamirReconstructOverNetwork(&net, *shares, 3, prime);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status().ToString();
}

// ---------------------------------------------------------------------------
// Owner-privacy accounting under faults: retransmissions must never put
// anything on the wire beyond what the fault-free transcript already shows.

TEST(ChaosLeakTest, RetransmissionsLeakNothingBeyondFaultFreeTranscript) {
  const std::vector<BigInt> inputs{BigInt(111), BigInt(222), BigInt(333)};
  const BigInt modulus = BigInt(1) << 64;

  PartyNetwork reference_net(3, 42);
  auto reference = SecureSum(&reference_net, inputs, modulus);
  ASSERT_TRUE(reference.ok());
  std::set<std::string> reference_payloads;
  for (const auto& msg : reference_net.transcript()) {
    std::string key = msg.tag;
    for (const BigInt& v : msg.payload) key += ',' + v.ToHex();
    reference_payloads.insert(std::move(key));
  }

  FaultPlan plan;
  plan.drop_rate = 0.15;
  plan.duplicate_rate = 0.1;
  plan.seed = 6;
  PartyNetwork net(3, 42);
  net.InjectFaults(plan);
  auto faulty = SecureSum(&net, inputs, modulus);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  ASSERT_EQ(*faulty, *reference);
  ASSERT_GT(net.fault_log().size(), 0u);

  // Strip acks and reliability headers; every remaining unique payload must
  // already exist in the fault-free transcript.
  for (const auto& msg : net.transcript()) {
    if (IsReliableControlMessage(msg)) continue;
    ASSERT_GE(msg.payload.size(), kReliableHeaderElems);
    std::string key = msg.tag;
    for (size_t i = kReliableHeaderElems; i < msg.payload.size(); ++i) {
      key += ',' + msg.payload[i].ToHex();
    }
    EXPECT_TRUE(reference_payloads.count(key))
        << "fault-injected run leaked a novel payload in " << msg.tag;
  }
}

TEST(ChaosLeakTest, EvaluatorCryptoScoresUnchangedByRetransmissions) {
  // The evaluator's transcript scan deduplicates retransmissions and skips
  // reliability metadata, so injected drops must not move the measured
  // owner/respondent protection of crypto PPDM.
  PrivacyEvaluator::Options clean_options;
  clean_options.pir_trials = 4;
  PrivacyEvaluator clean(MakeExtendedTrial(120, 11), clean_options);
  auto clean_eval = clean.Evaluate(TechnologyClass::kCryptoPpdm);
  ASSERT_TRUE(clean_eval.ok()) << clean_eval.status().ToString();

  PrivacyEvaluator::Options chaos_options = clean_options;
  chaos_options.chaos_drop_rate = 0.1;
  PrivacyEvaluator chaotic(MakeExtendedTrial(120, 11), chaos_options);
  auto chaos_eval = chaotic.Evaluate(TechnologyClass::kCryptoPpdm);
  ASSERT_TRUE(chaos_eval.ok()) << chaos_eval.status().ToString();

  EXPECT_EQ(chaos_eval->scores.owner, clean_eval->scores.owner);
  EXPECT_EQ(chaos_eval->scores.respondent, clean_eval->scores.respondent);
}

}  // namespace
}  // namespace tripriv
