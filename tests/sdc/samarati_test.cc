// Tests for Samarati's full-domain generalization algorithm [20].

#include <gtest/gtest.h>

#include "sdc/anonymity.h"
#include "sdc/recoding.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

RecodingConfig PatientConfig(size_t k, double suppression = 0.1) {
  RecodingConfig config;
  config.k = k;
  config.max_suppression_fraction = suppression;
  config.hierarchies["height"] =
      std::make_shared<NumericIntervalHierarchy>(0.0, 5.0, 2, 4);
  config.hierarchies["weight"] =
      std::make_shared<NumericIntervalHierarchy>(0.0, 5.0, 2, 4);
  return config;
}

TEST(SamaratiTest, AlreadyAnonymousNeedsNoGeneralization) {
  auto r = SamaratiAnonymize(PaperDataset1(), PatientConfig(3));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->levels.at("height"), 0);
  EXPECT_EQ(r->levels.at("weight"), 0);
  EXPECT_EQ(r->suppressed_rows, 0u);
  EXPECT_EQ(r->table, PaperDataset1());
}

TEST(SamaratiTest, PostconditionAcrossKs) {
  DataTable data = MakeClinicalTrial(200, 21);
  for (size_t k : {2u, 4u, 8u, 16u}) {
    auto r = SamaratiAnonymize(data, PatientConfig(k, 0.04));
    ASSERT_TRUE(r.ok()) << "k=" << k << ": " << r.status().ToString();
    EXPECT_TRUE(IsKAnonymous(r->table, k)) << "k=" << k;
    EXPECT_LE(r->suppressed_rows, data.num_rows() / 25 + 1);
  }
}

TEST(SamaratiTest, NeverTallerThanDatafly) {
  // Samarati is exact in total generalization height; Datafly is greedy.
  DataTable data = MakeClinicalTrial(120, 23);
  for (size_t k : {3u, 6u}) {
    auto config = PatientConfig(k, 0.05);
    auto exact = SamaratiAnonymize(data, config);
    auto greedy = DataflyAnonymize(data, config);
    ASSERT_TRUE(exact.ok() && greedy.ok());
    int exact_height = 0;
    int greedy_height = 0;
    for (const auto& [name, level] : exact->levels) exact_height += level;
    for (const auto& [name, level] : greedy->levels) greedy_height += level;
    EXPECT_LE(exact_height, greedy_height) << "k=" << k;
  }
}

TEST(SamaratiTest, FindsMinimalHeightOnCraftedExample) {
  // Heights already coarse; weights all distinct: the minimal solution
  // generalizes ONLY weight, by exactly one level.
  Schema s = PatientSchema();
  DataTable t(s);
  for (int i = 0; i < 8; ++i) {
    // Heights: two groups of 4. Weights: 70..77 -> unique, but one level
    // of width-5 intervals pools {70..74} and {75..77}&{70..74}... use
    // weights 70,71,72,73 / 80,81,82,83 so [70,75) and [80,85) pool 4 each.
    ASSERT_TRUE(t.AppendRow({Value(i < 4 ? 160 : 180),
                             Value(70 + 10 * (i / 4) + (i % 4)),
                             Value(150 + i), Value(i % 2 ? "Y" : "N")})
                    .ok());
  }
  auto config = PatientConfig(4, 0.0);
  auto r = SamaratiAnonymize(t, config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->levels.at("height"), 0);
  EXPECT_EQ(r->levels.at("weight"), 1);
  EXPECT_TRUE(IsKAnonymous(r->table, 4));
  EXPECT_EQ(r->suppressed_rows, 0u);
}

TEST(SamaratiTest, ImpossibleKFails) {
  auto r = SamaratiAnonymize(PaperDataset2(), PatientConfig(11, 0.0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SamaratiTest, FullSuppressionLevelAsLastResort) {
  // k = n forces the all-"*" vector (single class of everything).
  auto r = SamaratiAnonymize(PaperDataset2(), PatientConfig(10, 0.0));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 10u);
  EXPECT_TRUE(IsKAnonymous(r->table, 10));
}

TEST(SamaratiTest, NoQuasiIdentifiersIsIdentity) {
  Schema s({{"x", AttributeType::kInteger, AttributeRole::kConfidential}});
  auto t = DataTable::FromRows(s, {{1}, {2}});
  ASSERT_TRUE(t.ok());
  RecodingConfig config;
  config.k = 2;
  auto r = SamaratiAnonymize(*t, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table, *t);
}

TEST(SamaratiTest, InvalidKRejected) {
  RecodingConfig config;
  config.k = 0;
  EXPECT_FALSE(SamaratiAnonymize(PaperDataset1(), config).ok());
}

}  // namespace
}  // namespace tripriv
