#include "sdc/anonymity.h"

#include <gtest/gtest.h>

#include "sdc/equivalence.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

TEST(EquivalenceTest, GroupsByKeyCombination) {
  DataTable t = PaperDataset1();
  auto classes = GroupByQuasiIdentifiers(t);
  EXPECT_EQ(classes.classes.size(), 3u);
  EXPECT_EQ(classes.MinClassSize(), 3u);
  size_t covered = 0;
  for (const auto& cls : classes.classes) covered += cls.size();
  EXPECT_EQ(covered, t.num_rows());
}

TEST(EquivalenceTest, EmptyTable) {
  DataTable t(PatientSchema());
  auto classes = GroupByQuasiIdentifiers(t);
  EXPECT_TRUE(classes.classes.empty());
  EXPECT_EQ(classes.MinClassSize(), 0u);
}

TEST(EquivalenceTest, NullCellsGroupTogether) {
  Schema s({{"x", AttributeType::kInteger, AttributeRole::kQuasiIdentifier}});
  auto t = DataTable::FromRows(s, {{Value::Null()}, {Value::Null()}, {1}});
  ASSERT_TRUE(t.ok());
  auto classes = GroupByQuasiIdentifiers(*t);
  EXPECT_EQ(classes.classes.size(), 2u);
}

TEST(EquivalenceTest, GroupByExplicitColumns) {
  DataTable t = PaperDataset1();
  // Grouping on a single key attribute coarsens the partition.
  auto by_height = GroupByColumns(t, {0});
  EXPECT_EQ(by_height.classes.size(), 3u);
  auto by_all = GroupByColumns(t, {0, 1, 2, 3});
  EXPECT_EQ(by_all.MinClassSize(), 1u);  // blood pressures are unique
}

TEST(AnonymityTest, PaperDataset1Is3Anonymous) {
  DataTable t = PaperDataset1();
  EXPECT_EQ(AnonymityLevel(t), 3u);
  EXPECT_TRUE(IsKAnonymous(t, 3));
  EXPECT_TRUE(IsKAnonymous(t, 2));
  EXPECT_FALSE(IsKAnonymous(t, 4));
}

TEST(AnonymityTest, PaperDataset2IsNotAnonymous) {
  DataTable t = PaperDataset2();
  EXPECT_EQ(AnonymityLevel(t), 1u);
  EXPECT_FALSE(IsKAnonymous(t, 2));
  EXPECT_TRUE(IsKAnonymous(t, 1));
}

TEST(AnonymityTest, EmptyTableLevelZero) {
  DataTable t(PatientSchema());
  EXPECT_EQ(AnonymityLevel(t), 0u);
  EXPECT_FALSE(IsKAnonymous(t, 1));
}

TEST(AnonymityTest, SensitivityLevelOnDataset1) {
  DataTable t = PaperDataset1();
  const auto qi = t.schema().QuasiIdentifierIndices();
  // Every class has both Y and N in the aids column (col 3).
  EXPECT_EQ(SensitivityLevel(t, qi, 3), 2u);
  // Blood pressures (col 2) are unique within classes: 3 distinct in the
  // size-3 classes, 4 in the size-4 class -> min is 3.
  EXPECT_EQ(SensitivityLevel(t, qi, 2), 3u);
}

TEST(AnonymityTest, PSensitiveKAnonymity) {
  DataTable t = PaperDataset1();
  EXPECT_TRUE(IsPSensitiveKAnonymous(t, 3, 2));
  EXPECT_FALSE(IsPSensitiveKAnonymous(t, 3, 3));  // aids has only 2 values
  EXPECT_FALSE(IsPSensitiveKAnonymous(t, 4, 2));  // not 4-anonymous
  EXPECT_FALSE(IsPSensitiveKAnonymous(PaperDataset2(), 3, 2));
}

TEST(AnonymityTest, HomogeneousClassIsNotPSensitive) {
  // A 2-anonymous dataset whose class shares one confidential value: the
  // footnote-3 case where k-anonymity alone fails to protect respondents.
  Schema s({
      {"zip", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"disease", AttributeType::kCategorical, AttributeRole::kConfidential},
  });
  auto t = DataTable::FromRows(
      s, {{100, "flu"}, {100, "flu"}, {200, "flu"}, {200, "cancer"}});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(IsKAnonymous(*t, 2));
  EXPECT_FALSE(IsPSensitiveKAnonymous(*t, 2, 2));
  EXPECT_EQ(DistinctLDiversity(*t, 1), 1u);
}

TEST(AnonymityTest, UniquenessFraction) {
  DataTable t2 = PaperDataset2();
  const auto qi = t2.schema().QuasiIdentifierIndices();
  EXPECT_DOUBLE_EQ(UniquenessFraction(t2, qi), 1.0);  // all keys unique
  DataTable t1 = PaperDataset1();
  EXPECT_DOUBLE_EQ(UniquenessFraction(t1, t1.schema().QuasiIdentifierIndices()),
                   0.0);
  DataTable empty(PatientSchema());
  EXPECT_DOUBLE_EQ(UniquenessFraction(empty, qi), 0.0);
}

}  // namespace
}  // namespace tripriv
