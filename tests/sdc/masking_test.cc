// Tests for Mondrian, noise addition, rank swapping, and condensation.

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "sdc/anonymity.h"
#include "sdc/condensation.h"
#include "sdc/mondrian.h"
#include "sdc/noise.h"
#include "sdc/rank_swap.h"
#include "stats/descriptive.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

TEST(MondrianTest, OutputIsKAnonymous) {
  DataTable data = MakeClinicalTrial(200, 3);
  for (size_t k : {2u, 5u, 10u}) {
    auto r = MondrianAnonymize(data, k);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GE(AnonymityLevel(r->table), k) << "k=" << k;
    // Every leaf keeps at least k records.
    std::map<size_t, size_t> sizes;
    for (size_t g : r->group_of_row) sizes[g]++;
    for (const auto& [g, size] : sizes) EXPECT_GE(size, k);
  }
}

TEST(MondrianTest, PartitionsFinerThanSingleGroupForSmallK) {
  DataTable data = MakeClinicalTrial(200, 7);
  auto r = MondrianAnonymize(data, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->num_groups, 10u);  // k=2 on 200 records should split a lot
}

TEST(MondrianTest, ConfidentialColumnsUntouched) {
  DataTable data = MakeClinicalTrial(50, 5);
  auto r = MondrianAnonymize(data, 5);
  ASSERT_TRUE(r.ok());
  for (size_t row = 0; row < data.num_rows(); ++row) {
    EXPECT_EQ(data.at(row, 2), r->table.at(row, 2));
    EXPECT_EQ(data.at(row, 3), r->table.at(row, 3));
  }
}

TEST(MondrianTest, ErrorsOnBadInput) {
  DataTable empty(PatientSchema());
  EXPECT_FALSE(MondrianAnonymize(empty, 3).ok());
  DataTable data = MakeClinicalTrial(10, 1);
  EXPECT_FALSE(MondrianAnonymize(data, 0).ok());
  Schema no_qi({{"x", AttributeType::kInteger, AttributeRole::kConfidential}});
  auto t = DataTable::FromRows(no_qi, {{1}});
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(MondrianAnonymize(*t, 2).ok());
}

TEST(NoiseTest, UncorrelatedNoiseScalesWithAlpha) {
  DataTable data = MakeCensus(2000, 7);
  const size_t income = 4;
  auto orig = data.NumericColumn(income).value();
  const double sd = SampleStddev(orig);
  for (double alpha : {0.1, 0.5, 1.0}) {
    auto r = AddUncorrelatedNoise(data, alpha, {income}, 99);
    ASSERT_TRUE(r.ok());
    auto masked = r->NumericColumn(income).value();
    std::vector<double> noise(orig.size());
    for (size_t i = 0; i < orig.size(); ++i) noise[i] = masked[i] - orig[i];
    EXPECT_NEAR(Mean(noise), 0.0, 0.1 * alpha * sd);
    EXPECT_NEAR(SampleStddev(noise), alpha * sd, 0.1 * alpha * sd);
  }
}

TEST(NoiseTest, ZeroAlphaIsIdentityValues) {
  DataTable data = MakeCensus(100, 7);
  auto r = AddUncorrelatedNoise(data, 0.0, {4}, 5);
  ASSERT_TRUE(r.ok());
  auto orig = data.NumericColumn(size_t{4}).value();
  auto masked = r->NumericColumn(size_t{4}).value();
  for (size_t i = 0; i < orig.size(); ++i) EXPECT_DOUBLE_EQ(orig[i], masked[i]);
}

TEST(NoiseTest, CorrelatedNoisePreservesCorrelationShape) {
  DataTable data = MakeClinicalTrial(4000, 13);
  auto r = AddCorrelatedNoise(data, 0.4, {0, 1}, 42);
  ASSERT_TRUE(r.ok());
  const double orig_corr =
      PearsonCorrelation(data.NumericColumn(size_t{0}).value(),
                         data.NumericColumn(size_t{1}).value());
  const double masked_corr =
      PearsonCorrelation(r->NumericColumn(size_t{0}).value(),
                         r->NumericColumn(size_t{1}).value());
  // Correlated noise with covariance proportional to Cov(X) keeps the
  // correlation coefficient intact in expectation.
  EXPECT_NEAR(orig_corr, masked_corr, 0.07);
}

TEST(NoiseTest, DeterministicInSeed) {
  DataTable data = MakeCensus(50, 3);
  auto a = AddUncorrelatedNoise(data, 0.3, {0, 4}, 7);
  auto b = AddUncorrelatedNoise(data, 0.3, {0, 4}, 7);
  auto c = AddUncorrelatedNoise(data, 0.3, {0, 4}, 8);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_FALSE(*a == *c);
}

TEST(NoiseTest, FixedNoiseMatchesSigma) {
  DataTable data = MakeCensus(3000, 21);
  auto r = AddFixedNoise(data, 25.0, 0, 11);
  ASSERT_TRUE(r.ok());
  auto orig = data.NumericColumn(size_t{0}).value();
  auto masked = r->NumericColumn(size_t{0}).value();
  std::vector<double> noise(orig.size());
  for (size_t i = 0; i < orig.size(); ++i) noise[i] = masked[i] - orig[i];
  EXPECT_NEAR(SampleStddev(noise), 25.0, 1.5);
}

TEST(NoiseTest, RejectsBadArguments) {
  DataTable data = MakeCensus(10, 1);
  EXPECT_FALSE(AddUncorrelatedNoise(data, -1.0, {0}, 1).ok());
  EXPECT_FALSE(AddFixedNoise(data, -0.1, 0, 1).ok());
  DataTable single(PatientSchema());
  ASSERT_TRUE(single.AppendRow({170, 70, 150, "N"}).ok());
  EXPECT_FALSE(AddUncorrelatedNoise(single, 0.5, {0}, 1).ok());
}

TEST(RankSwapTest, PreservesMarginalDistributionExactly) {
  DataTable data = MakeCensus(300, 17);
  auto r = RankSwap(data, 10.0, {0, 4}, 23);
  ASSERT_TRUE(r.ok());
  for (size_t c : {0u, 4u}) {
    auto orig = data.NumericColumn(c).value();
    auto masked = r->NumericColumn(c).value();
    std::sort(orig.begin(), orig.end());
    std::sort(masked.begin(), masked.end());
    EXPECT_EQ(orig, masked);
  }
}

TEST(RankSwapTest, ActuallyMovesValues) {
  DataTable data = MakeCensus(300, 17);
  auto r = RankSwap(data, 15.0, {4}, 29);
  ASSERT_TRUE(r.ok());
  auto orig = data.NumericColumn(size_t{4}).value();
  auto masked = r->NumericColumn(size_t{4}).value();
  size_t moved = 0;
  for (size_t i = 0; i < orig.size(); ++i) {
    if (orig[i] != masked[i]) ++moved;
  }
  EXPECT_GT(moved, orig.size() / 2);
}

TEST(RankSwapTest, WindowBoundsSwapDistance) {
  DataTable data = MakeCensus(200, 31);
  const double p = 5.0;
  auto r = RankSwap(data, p, {0}, 37);
  ASSERT_TRUE(r.ok());
  auto orig = data.NumericColumn(size_t{0}).value();
  auto masked = r->NumericColumn(size_t{0}).value();
  // Rank of the masked value must be within ~p% + 1 positions of the
  // original value's rank.
  std::vector<double> sorted = orig;
  std::sort(sorted.begin(), sorted.end());
  auto rank_of = [&](double v) {
    return static_cast<size_t>(std::lower_bound(sorted.begin(), sorted.end(), v) -
                               sorted.begin());
  };
  const size_t window =
      static_cast<size_t>(p / 100.0 * static_cast<double>(orig.size())) + 1;
  for (size_t i = 0; i < orig.size(); ++i) {
    const size_t ro = rank_of(orig[i]);
    const size_t rm = rank_of(masked[i]);
    const size_t dist = ro > rm ? ro - rm : rm - ro;
    // Ties can widen apparent rank distance slightly; allow 2x slack.
    EXPECT_LE(dist, 2 * window + 2);
  }
}

TEST(RankSwapTest, RejectsBadWindow) {
  DataTable data = MakeCensus(10, 1);
  EXPECT_FALSE(RankSwap(data, -1.0, {0}, 1).ok());
  EXPECT_FALSE(RankSwap(data, 101.0, {0}, 1).ok());
}

TEST(CondensationTest, PreservesMeanAndCovarianceApproximately) {
  DataTable data = MakeClinicalTrial(1000, 41);
  // Condense real-valued copies to dodge integer rounding.
  Schema s({
      {"height", AttributeType::kReal, AttributeRole::kQuasiIdentifier},
      {"weight", AttributeType::kReal, AttributeRole::kQuasiIdentifier},
  });
  DataTable real_data(s);
  for (size_t r = 0; r < data.num_rows(); ++r) {
    ASSERT_TRUE(real_data
                    .AppendRow({Value(data.at(r, 0).ToDouble()),
                                Value(data.at(r, 1).ToDouble())})
                    .ok());
  }
  auto r = Condense(real_data, 25, {0, 1}, 43);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto orig = real_data.NumericMatrix({0, 1}).value();
  auto synth = r->table.NumericMatrix({0, 1}).value();
  const auto mo = ColumnMeans(orig);
  const auto ms = ColumnMeans(synth);
  EXPECT_NEAR(mo[0], ms[0], 1.0);
  EXPECT_NEAR(mo[1], ms[1], 1.5);
  const auto co = CovarianceMatrix(orig);
  const auto cs = CovarianceMatrix(synth);
  EXPECT_NEAR(co[0][1] / co[1][1], cs[0][1] / cs[1][1], 0.25);
}

TEST(CondensationTest, SyntheticValuesDifferFromOriginals) {
  DataTable data = MakeClinicalTrial(100, 47);
  auto r = Condense(data, 10, {0, 1}, 49);
  ASSERT_TRUE(r.ok());
  size_t changed = 0;
  for (size_t row = 0; row < data.num_rows(); ++row) {
    if (!(data.at(row, 0) == r->table.at(row, 0))) ++changed;
  }
  EXPECT_GT(changed, data.num_rows() / 2);
}

TEST(CondensationTest, DeterministicInSeed) {
  DataTable data = MakeClinicalTrial(60, 51);
  auto a = Condense(data, 6, {0, 1}, 1);
  auto b = Condense(data, 6, {0, 1}, 1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->table, b->table);
}

TEST(CondensationTest, GroupsRespectK) {
  DataTable data = MakeClinicalTrial(90, 53);
  auto r = Condense(data, 9, 55);
  ASSERT_TRUE(r.ok());
  std::map<size_t, size_t> sizes;
  for (size_t g : r->group_of_row) sizes[g]++;
  for (const auto& [g, size] : sizes) EXPECT_GE(size, 9u);
}

}  // namespace
}  // namespace tripriv
