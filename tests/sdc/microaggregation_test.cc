#include "sdc/microaggregation.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "sdc/anonymity.h"
#include "stats/descriptive.h"
#include "table/datasets.h"
#include "util/random.h"

namespace tripriv {
namespace {

std::map<size_t, size_t> GroupSizes(const std::vector<size_t>& group_of_row) {
  std::map<size_t, size_t> sizes;
  for (size_t g : group_of_row) sizes[g]++;
  return sizes;
}

TEST(MdavTest, GroupSizesWithinBounds) {
  DataTable data = MakeClinicalTrial(100, 3);
  for (size_t k : {2u, 3u, 5u, 10u}) {
    auto r = MdavMicroaggregate(data, k);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    for (const auto& [g, size] : GroupSizes(r->group_of_row)) {
      EXPECT_GE(size, k) << "k=" << k;
      EXPECT_LE(size, 2 * k - 1) << "k=" << k;
    }
  }
}

TEST(MdavTest, ResultIsKAnonymousPerReference12) {
  // [12]: microaggregation with minimum group size k over the QIs yields
  // k-anonymity.
  DataTable data = MakeClinicalTrial(150, 11);
  for (size_t k : {3u, 7u}) {
    auto r = MdavMicroaggregate(data, k);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(AnonymityLevel(r->table), k);
  }
}

TEST(MdavTest, CentroidsPreserveColumnMeans) {
  DataTable data = MakeClinicalTrial(120, 5);
  // Use real-typed copies to avoid integer rounding in this check.
  Schema s({
      {"height", AttributeType::kReal, AttributeRole::kQuasiIdentifier},
      {"weight", AttributeType::kReal, AttributeRole::kQuasiIdentifier},
  });
  DataTable real_data(s);
  for (size_t r = 0; r < data.num_rows(); ++r) {
    ASSERT_TRUE(real_data
                    .AppendRow({Value(data.at(r, 0).ToDouble()),
                                Value(data.at(r, 1).ToDouble())})
                    .ok());
  }
  auto r = MdavMicroaggregate(real_data, 4, {0, 1});
  ASSERT_TRUE(r.ok());
  for (size_t c : {0u, 1u}) {
    const double orig_mean = Mean(real_data.NumericColumn(c).value());
    const double masked_mean = Mean(r->table.NumericColumn(c).value());
    EXPECT_NEAR(orig_mean, masked_mean, 1e-9);
  }
}

TEST(MdavTest, MembersShareGroupCentroid) {
  DataTable data = MakeClinicalTrial(60, 9);
  auto r = MdavMicroaggregate(data, 3);
  ASSERT_TRUE(r.ok());
  for (size_t a = 0; a < data.num_rows(); ++a) {
    for (size_t b = a + 1; b < data.num_rows(); ++b) {
      if (r->group_of_row[a] == r->group_of_row[b]) {
        EXPECT_EQ(r->table.at(a, 0), r->table.at(b, 0));
        EXPECT_EQ(r->table.at(a, 1), r->table.at(b, 1));
      }
    }
  }
}

TEST(MdavTest, SmallTableSingleGroup) {
  DataTable data = MakeClinicalTrial(4, 21);
  auto r = MdavMicroaggregate(data, 5);  // k > n
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_groups, 1u);
}

TEST(MdavTest, KEquals1IsLossless) {
  DataTable data = MakeClinicalTrial(30, 2);
  auto r = MdavMicroaggregate(data, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->within_group_sse, 0.0, 1e-9);
}

TEST(MdavTest, SseGrowsWithK) {
  DataTable data = MakeClinicalTrial(200, 13);
  double prev = -1.0;
  for (size_t k : {2u, 5u, 20u, 50u}) {
    auto r = MdavMicroaggregate(data, k);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r->within_group_sse, prev);
    prev = r->within_group_sse;
  }
}

TEST(MdavTest, ErrorsOnBadInput) {
  DataTable data = MakeClinicalTrial(10, 1);
  EXPECT_FALSE(MdavMicroaggregate(data, 0).ok());
  EXPECT_FALSE(MdavMicroaggregate(data, 3, {}).ok());
  EXPECT_FALSE(MdavMicroaggregate(data, 3, {3}).ok());  // categorical column
  DataTable empty(PatientSchema());
  EXPECT_FALSE(MdavMicroaggregate(empty, 3).ok());
}

TEST(OptimalUnivariateTest, RespectsSizeBounds) {
  std::vector<double> values{1, 2, 3, 10, 11, 12, 20, 21, 22, 23};
  auto groups = OptimalUnivariateGroups(values, 3);
  ASSERT_TRUE(groups.ok());
  for (const auto& [g, size] : GroupSizes(*groups)) {
    EXPECT_GE(size, 3u);
    EXPECT_LE(size, 5u);
  }
}

TEST(OptimalUnivariateTest, FindsNaturalClusters) {
  // Three well-separated clusters of size 3: the optimum groups them.
  std::vector<double> values{1, 2, 3, 100, 101, 102, 200, 201, 202};
  auto groups = OptimalUnivariateGroups(values, 3);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ((*groups)[0], (*groups)[1]);
  EXPECT_EQ((*groups)[1], (*groups)[2]);
  EXPECT_EQ((*groups)[3], (*groups)[4]);
  EXPECT_NE((*groups)[2], (*groups)[3]);
  EXPECT_NE((*groups)[5], (*groups)[6]);
}

TEST(OptimalUnivariateTest, GroupsAreContiguousInSortedOrder) {
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) values.push_back(rng.UniformDouble(0, 100));
  auto groups = OptimalUnivariateGroups(values, 4);
  ASSERT_TRUE(groups.ok());
  // Sort values; group ids along the sorted order must be non-decreasing.
  std::vector<size_t> order(values.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE((*groups)[order[i - 1]], (*groups)[order[i]]);
  }
}

TEST(OptimalUnivariateTest, BeatsOrTiesMdavOnSse) {
  DataTable data = MakeClinicalTrial(100, 17);
  const size_t k = 4;
  auto optimal = OptimalUnivariateMicroaggregate(data, k, 0);
  auto mdav = MdavMicroaggregate(data, k, {0});
  ASSERT_TRUE(optimal.ok());
  ASSERT_TRUE(mdav.ok());
  EXPECT_LE(optimal->within_group_sse, mdav->within_group_sse + 1e-9);
}

TEST(OptimalUnivariateTest, TinyInputSingleGroup) {
  auto groups = OptimalUnivariateGroups({5.0, 6.0}, 3);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(*groups, (std::vector<size_t>{0, 0}));
  EXPECT_FALSE(OptimalUnivariateGroups({}, 3).ok());
  EXPECT_FALSE(OptimalUnivariateGroups({1.0}, 0).ok());
}

}  // namespace
}  // namespace tripriv
