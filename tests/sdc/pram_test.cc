// Tests for PRAM, the linear solver behind its estimator, and tail coding.

#include <cmath>

#include <gtest/gtest.h>

#include "ppdm/randomized_response.h"
#include "sdc/coding.h"
#include "sdc/pram.h"
#include "stats/descriptive.h"
#include "stats/linalg.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

TEST(LinearSolverTest, SolvesKnownSystems) {
  auto x = SolveLinearSystem({{2, 1}, {1, 3}}, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
  // Identity.
  auto y = SolveLinearSystem({{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}, {7, -2, 0.5});
  ASSERT_TRUE(y.ok());
  EXPECT_EQ((*y), (std::vector<double>{7, -2, 0.5}));
}

TEST(LinearSolverTest, PivotingHandlesZeroDiagonal) {
  auto x = SolveLinearSystem({{0, 1}, {1, 0}}, {3, 4});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 4.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(LinearSolverTest, RejectsSingularAndMalformed) {
  EXPECT_FALSE(SolveLinearSystem({{1, 2}, {2, 4}}, {1, 2}).ok());
  EXPECT_FALSE(SolveLinearSystem({{1, 2}}, {1}).ok());
  EXPECT_FALSE(SolveLinearSystem({{1}}, {1, 2}).ok());
}

TEST(PramSpecTest, ValidationCatchesBadMatrices) {
  PramSpec spec = RetentionPramSpec({"a", "b", "c"}, 0.7);
  EXPECT_TRUE(spec.Validate().ok());
  spec.transition[0][0] += 0.5;  // row no longer sums to 1
  EXPECT_FALSE(spec.Validate().ok());
  PramSpec dup = RetentionPramSpec({"a", "a"}, 0.5);
  EXPECT_FALSE(dup.Validate().ok());
  PramSpec empty;
  EXPECT_FALSE(empty.Validate().ok());
  PramSpec negative = RetentionPramSpec({"a", "b"}, 0.5);
  negative.transition[0][0] = -0.1;
  negative.transition[0][1] = 1.1;
  EXPECT_FALSE(negative.Validate().ok());
}

TEST(PramTest, RetentionSpecMatchesRandomizedResponseSemantics) {
  // PRAM with the retention matrix must estimate as well as the dedicated
  // randomized-response estimator.
  DataTable data = MakeCensus(6000, 91);
  const size_t col = 5;
  auto truth = ObservedDistribution(data, col);
  ASSERT_TRUE(truth.ok());
  std::vector<std::string> domain;
  for (const auto& [k, v] : *truth) domain.push_back(k);
  const PramSpec spec = RetentionPramSpec(domain, 0.6);
  auto masked = PramMask(data, col, spec, 97);
  ASSERT_TRUE(masked.ok());
  auto estimate = PramEstimateTrueDistribution(*masked, col, spec);
  ASSERT_TRUE(estimate.ok());
  for (const auto& [category, p] : *truth) {
    EXPECT_NEAR(estimate->at(category), p, 0.04) << category;
  }
}

TEST(PramTest, AsymmetricMatrixStillEstimable) {
  // A deliberately lopsided matrix: a -> b with high probability.
  Schema s({{"x", AttributeType::kCategorical, AttributeRole::kConfidential}});
  DataTable data(s);
  Rng rng(101);
  size_t a_count = 0;
  for (int i = 0; i < 8000; ++i) {
    const bool is_a = rng.Bernoulli(0.7);
    a_count += is_a;
    ASSERT_TRUE(data.AppendRow({Value(is_a ? "a" : "b")}).ok());
  }
  PramSpec spec;
  spec.domain = {"a", "b"};
  spec.transition = {{0.4, 0.6}, {0.1, 0.9}};
  auto masked = PramMask(data, 0, spec, 103);
  ASSERT_TRUE(masked.ok());
  auto estimate = PramEstimateTrueDistribution(*masked, 0, spec);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->at("a"), static_cast<double>(a_count) / 8000.0, 0.05);
}

TEST(PramTest, IdentityMatrixIsNoOp) {
  DataTable data = MakeCensus(100, 105);
  auto truth = ObservedDistribution(data, 5);
  ASSERT_TRUE(truth.ok());
  std::vector<std::string> domain;
  for (const auto& [k, v] : *truth) domain.push_back(k);
  const PramSpec spec = RetentionPramSpec(domain, 1.0);
  auto masked = PramMask(data, 5, spec, 107);
  ASSERT_TRUE(masked.ok());
  EXPECT_EQ(*masked, data);
}

TEST(PramTest, RejectsBadInput) {
  DataTable data = MakeCensus(50, 109);
  PramSpec spec = RetentionPramSpec({"none"}, 0.5);
  // Values outside the domain.
  EXPECT_FALSE(PramMask(data, 5, spec, 1).ok());
  // Non-categorical column.
  PramSpec ok_spec = RetentionPramSpec({"a", "b"}, 0.5);
  EXPECT_FALSE(PramMask(data, 0, ok_spec, 1).ok());
}

TEST(TailCodingTest, ClampsOutliersOnly) {
  DataTable data = MakeCensus(500, 111);
  const size_t income = 4;
  auto r = TopBottomCode(data, income, 0.05, 0.95);
  ASSERT_TRUE(r.ok());
  auto coded = r->table.NumericColumn(income).value();
  EXPECT_NEAR(Min(coded), r->lower_threshold, 1e-9);
  EXPECT_NEAR(Max(coded), r->upper_threshold, 1e-9);
  // ~5% coded on each side.
  EXPECT_NEAR(static_cast<double>(r->top_coded), 25.0, 10.0);
  EXPECT_NEAR(static_cast<double>(r->bottom_coded), 25.0, 10.0);
  // Middle values untouched.
  auto orig = data.NumericColumn(income).value();
  for (size_t i = 0; i < orig.size(); ++i) {
    if (orig[i] > r->lower_threshold && orig[i] < r->upper_threshold) {
      EXPECT_DOUBLE_EQ(orig[i], coded[i]);
    }
  }
}

TEST(TailCodingTest, OneSidedCoding) {
  DataTable data = MakeCensus(300, 113);
  auto top_only = TopBottomCode(data, 4, 0.0, 0.9);
  ASSERT_TRUE(top_only.ok());
  EXPECT_EQ(top_only->bottom_coded, 0u);
  EXPECT_GT(top_only->top_coded, 0u);
}

TEST(TailCodingTest, RejectsBadArguments) {
  DataTable data = MakeCensus(50, 115);
  EXPECT_FALSE(TopBottomCode(data, 4, 0.5, 0.5).ok());
  EXPECT_FALSE(TopBottomCode(data, 4, -0.1, 0.9).ok());
  EXPECT_FALSE(TopBottomCode(data, 4, 0.1, 1.1).ok());
  EXPECT_FALSE(TopBottomCode(data, 5, 0.1, 0.9).ok());  // categorical
  DataTable empty(PatientSchema());
  EXPECT_FALSE(TopBottomCode(empty, 0, 0.1, 0.9).ok());
}

}  // namespace
}  // namespace tripriv
