// Tests for disclosure-risk and information-loss measurement.

#include <gtest/gtest.h>

#include "sdc/information_loss.h"
#include "sdc/microaggregation.h"
#include "sdc/noise.h"
#include "sdc/risk.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

TEST(LinkageTest, UnmaskedDataFullyLinkable) {
  DataTable data = MakeClinicalTrial(100, 3);
  auto r = DistanceLinkageAttack(data, data);
  ASSERT_TRUE(r.ok());
  // Records with duplicated QI pairs cause fractional credit; nearly all
  // records should still link.
  EXPECT_GT(r->correct_fraction, 0.9);
  EXPECT_EQ(r->total, 100u);
}

TEST(LinkageTest, MicroaggregationReducesLinkage) {
  DataTable data = MakeClinicalTrial(200, 5);
  auto masked = MdavMicroaggregate(data, 5);
  ASSERT_TRUE(masked.ok());
  auto attack = DistanceLinkageAttack(data, masked->table);
  ASSERT_TRUE(attack.ok());
  // Within a group of >= 5 identical centroids the attacker's expected hit
  // rate is at most 1/5 per record.
  EXPECT_LE(attack->correct_fraction, 1.0 / 5.0 + 0.05);
}

TEST(LinkageTest, LinkageDecreasesWithK) {
  DataTable data = MakeClinicalTrial(300, 7);
  double prev = 1.0;
  for (size_t k : {2u, 5u, 15u}) {
    auto masked = MdavMicroaggregate(data, k);
    ASSERT_TRUE(masked.ok());
    auto attack = DistanceLinkageAttack(data, masked->table);
    ASSERT_TRUE(attack.ok());
    EXPECT_LT(attack->correct_fraction, prev + 0.02) << "k=" << k;
    prev = attack->correct_fraction;
  }
  EXPECT_LT(prev, 0.12);
}

TEST(LinkageTest, NoiseReducesLinkageMonotonically) {
  DataTable data = MakeClinicalTrial(200, 9);
  auto low = AddUncorrelatedNoise(data, 0.1, {0, 1}, 1);
  auto high = AddUncorrelatedNoise(data, 2.0, {0, 1}, 1);
  ASSERT_TRUE(low.ok() && high.ok());
  auto a_low = DistanceLinkageAttack(data, *low);
  auto a_high = DistanceLinkageAttack(data, *high);
  ASSERT_TRUE(a_low.ok() && a_high.ok());
  EXPECT_GT(a_low->correct_fraction, a_high->correct_fraction);
}

TEST(LinkageTest, ErrorsOnMisalignedTables) {
  DataTable a = MakeClinicalTrial(10, 1);
  DataTable b = MakeClinicalTrial(11, 1);
  EXPECT_FALSE(DistanceLinkageAttack(a, b).ok());
  EXPECT_FALSE(DistanceLinkageAttack(a, a, {}).ok());
}

TEST(ReidentificationRateTest, BoundsForPaperDatasets) {
  // Dataset 2: all keys unique -> rate 1. Dataset 1: 3 classes of 10 rows.
  EXPECT_DOUBLE_EQ(ExpectedReidentificationRate(PaperDataset2()), 1.0);
  EXPECT_DOUBLE_EQ(ExpectedReidentificationRate(PaperDataset1()), 0.3);
  DataTable empty(PatientSchema());
  EXPECT_DOUBLE_EQ(ExpectedReidentificationRate(empty), 0.0);
}

TEST(ReidentificationRateTest, KAnonymityBoundsRate) {
  DataTable data = MakeClinicalTrial(200, 13);
  for (size_t k : {4u, 10u}) {
    auto masked = MdavMicroaggregate(data, k);
    ASSERT_TRUE(masked.ok());
    EXPECT_LE(ExpectedReidentificationRate(masked->table),
              1.0 / static_cast<double>(k) + 1e-9);
  }
}

TEST(IntervalDisclosureTest, IdentityFullyDiscloses) {
  DataTable data = MakeClinicalTrial(50, 15);
  auto rate = IntervalDisclosureRate(data, data, 0, 1.0);
  ASSERT_TRUE(rate.ok());
  EXPECT_DOUBLE_EQ(*rate, 1.0);
}

TEST(IntervalDisclosureTest, HeavyNoiseAvoidsDisclosure) {
  DataTable data = MakeClinicalTrial(500, 17);
  auto noisy = AddUncorrelatedNoise(data, 3.0, {0}, 3);
  ASSERT_TRUE(noisy.ok());
  auto rate = IntervalDisclosureRate(data, *noisy, 0, 2.0);
  ASSERT_TRUE(rate.ok());
  EXPECT_LT(*rate, 0.5);
}

TEST(IntervalDisclosureTest, ValidatesArguments) {
  DataTable a = MakeClinicalTrial(10, 1);
  DataTable b = MakeClinicalTrial(9, 1);
  EXPECT_FALSE(IntervalDisclosureRate(a, b, 0, 5.0).ok());
  EXPECT_FALSE(IntervalDisclosureRate(a, a, 0, -1.0).ok());
  EXPECT_FALSE(IntervalDisclosureRate(a, a, 0, 101.0).ok());
}

TEST(InformationLossTest, IdentityHasZeroLoss) {
  DataTable data = MakeClinicalTrial(100, 19);
  auto loss = MeasureInformationLoss(data, data);
  ASSERT_TRUE(loss.ok());
  EXPECT_NEAR(loss->il1s, 0.0, 1e-12);
  EXPECT_NEAR(loss->mean_deviation, 0.0, 1e-12);
  EXPECT_NEAR(loss->var_deviation, 0.0, 1e-12);
  EXPECT_NEAR(loss->cov_deviation, 0.0, 1e-12);
  EXPECT_NEAR(loss->corr_deviation, 0.0, 1e-12);
}

TEST(InformationLossTest, LossGrowsWithNoise) {
  DataTable data = MakeClinicalTrial(500, 23);
  auto low = AddUncorrelatedNoise(data, 0.1, {0, 1}, 7);
  auto high = AddUncorrelatedNoise(data, 1.5, {0, 1}, 7);
  ASSERT_TRUE(low.ok() && high.ok());
  auto l_low = MeasureInformationLoss(data, *low);
  auto l_high = MeasureInformationLoss(data, *high);
  ASSERT_TRUE(l_low.ok() && l_high.ok());
  EXPECT_LT(l_low->il1s, l_high->il1s);
  EXPECT_LT(l_low->var_deviation, l_high->var_deviation);
}

TEST(InformationLossTest, LossGrowsWithMicroaggregationK) {
  DataTable data = MakeClinicalTrial(300, 29);
  auto small = MdavMicroaggregate(data, 2);
  auto large = MdavMicroaggregate(data, 30);
  ASSERT_TRUE(small.ok() && large.ok());
  auto l_small = MeasureInformationLoss(data, small->table);
  auto l_large = MeasureInformationLoss(data, large->table);
  ASSERT_TRUE(l_small.ok() && l_large.ok());
  EXPECT_LT(l_small->il1s, l_large->il1s);
}

TEST(InformationLossTest, MicroaggregationPreservesMeans) {
  DataTable data = MakeClinicalTrial(300, 31);
  auto masked = MdavMicroaggregate(data, 10);
  ASSERT_TRUE(masked.ok());
  auto loss = MeasureInformationLoss(data, masked->table);
  ASSERT_TRUE(loss.ok());
  // Centroid replacement leaves column means (nearly) unchanged even though
  // cells move a lot: mean_deviation << il1s.
  EXPECT_LT(loss->mean_deviation, 0.05);
  EXPECT_GT(loss->il1s, loss->mean_deviation);
}

TEST(InformationLossTest, ValidatesArguments) {
  DataTable a = MakeClinicalTrial(10, 1);
  DataTable b = MakeClinicalTrial(9, 1);
  EXPECT_FALSE(MeasureInformationLoss(a, b).ok());
  EXPECT_FALSE(MeasureInformationLoss(a, a, {}).ok());
  DataTable single(PatientSchema());
  ASSERT_TRUE(single.AppendRow({170, 70, 150, "N"}).ok());
  EXPECT_FALSE(MeasureInformationLoss(single, single).ok());
}

}  // namespace
}  // namespace tripriv
