#include "sdc/recoding.h"

#include <gtest/gtest.h>

#include "sdc/anonymity.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

RecodingConfig PatientConfig(size_t k) {
  RecodingConfig config;
  config.k = k;
  config.max_suppression_fraction = 0.1;
  config.hierarchies["height"] =
      std::make_shared<NumericIntervalHierarchy>(0.0, 5.0, 2, 4);
  config.hierarchies["weight"] =
      std::make_shared<NumericIntervalHierarchy>(0.0, 5.0, 2, 4);
  return config;
}

TEST(RecodingTest, AlreadyAnonymousNeedsNoGeneralization) {
  auto r = DataflyAnonymize(PaperDataset1(), PatientConfig(3));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->suppressed_rows, 0u);
  EXPECT_EQ(r->levels.at("height"), 0);
  EXPECT_EQ(r->levels.at("weight"), 0);
  EXPECT_EQ(r->table, PaperDataset1());
}

TEST(RecodingTest, Dataset2BecomesKAnonymous) {
  auto r = DataflyAnonymize(PaperDataset2(), PatientConfig(3));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(IsKAnonymous(r->table, 3));
  EXPECT_GE(r->table.num_rows(), 8u);  // at most 10% suppression + rounding
}

TEST(RecodingTest, PostconditionHoldsAcrossKs) {
  DataTable data = MakeCensus(400, 5);
  RecodingConfig config;
  config.max_suppression_fraction = 0.05;
  config.hierarchies["age"] =
      std::make_shared<NumericIntervalHierarchy>(0.0, 5.0, 2, 4);
  config.hierarchies["education"] =
      std::make_shared<NumericIntervalHierarchy>(0.0, 2.0, 2, 3);
  for (size_t k : {2u, 5u, 10u, 25u}) {
    config.k = k;
    auto r = DataflyAnonymize(data, config);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(IsKAnonymous(r->table, k)) << "k=" << k;
    EXPECT_LE(r->suppressed_rows, data.num_rows() / 10);
  }
}

TEST(RecodingTest, GeneralizedColumnsBecomeCategorical) {
  auto r = DataflyAnonymize(PaperDataset2(), PatientConfig(3));
  ASSERT_TRUE(r.ok());
  bool any_generalized = false;
  for (const auto& [name, level] : r->levels) {
    if (level > 0) {
      any_generalized = true;
      const size_t col = *r->table.schema().FindIndex(name);
      EXPECT_EQ(r->table.schema().attribute(col).type,
                AttributeType::kCategorical);
    }
  }
  EXPECT_TRUE(any_generalized);
}

TEST(RecodingTest, ConfidentialColumnsUntouched) {
  DataTable input = PaperDataset2();
  auto r = DataflyAnonymize(input, PatientConfig(3));
  ASSERT_TRUE(r.ok());
  // Every surviving row's confidential cells appear verbatim in the input.
  const size_t bp = *r->table.schema().FindIndex("blood_pressure");
  for (size_t row = 0; row < r->table.num_rows(); ++row) {
    bool found = false;
    for (size_t orig = 0; orig < input.num_rows(); ++orig) {
      if (input.at(orig, bp) == r->table.at(row, bp)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(RecodingTest, ExhaustedHierarchySuppressesResidual) {
  // Identical hierarchy ceilings but a k larger than any class can reach
  // without full suppression: the sole level left is "*", making one big
  // class. k <= n keeps everything; k > n must empty the table.
  RecodingConfig config = PatientConfig(10);
  auto r = DataflyAnonymize(PaperDataset2(), config);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsKAnonymous(r->table, 10));
  EXPECT_EQ(r->table.num_rows(), 10u);  // all records in the "*" class

  config.k = 11;
  auto r2 = DataflyAnonymize(PaperDataset2(), config);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->table.num_rows(), 0u);
  EXPECT_EQ(r2->suppressed_rows, 10u);
}

TEST(RecodingTest, NoQuasiIdentifiersIsIdentity) {
  Schema s({{"x", AttributeType::kInteger, AttributeRole::kConfidential}});
  auto t = DataTable::FromRows(s, {{1}, {2}});
  ASSERT_TRUE(t.ok());
  RecodingConfig config;
  config.k = 2;
  auto r = DataflyAnonymize(*t, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table, *t);
}

TEST(RecodingTest, InvalidKRejected) {
  RecodingConfig config;
  config.k = 0;
  EXPECT_FALSE(DataflyAnonymize(PaperDataset1(), config).ok());
}

}  // namespace
}  // namespace tripriv
