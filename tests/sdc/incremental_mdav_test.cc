// Tests for incremental MDAV maintenance: bootstrap equivalence with a
// full MDAV run, clean-group stability (untouched groups keep their exact
// membership and masked values), k preservation through reclustering and
// small-pool absorption, and bit-identical grouping at 0/1/2/8 threads.

#include "sdc/incremental_mdav.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "sdc/anonymity.h"
#include "table/datasets.h"
#include "table/mutation.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

constexpr size_t kQiCols[] = {0, 1};

std::vector<uint64_t> IdentityUids(size_t n) {
  std::vector<uint64_t> uids(n);
  for (size_t i = 0; i < n; ++i) uids[i] = i;
  return uids;
}

std::unordered_map<uint64_t, size_t> GroupOfUid(
    const std::vector<uint64_t>& uids, const std::vector<size_t>& groups) {
  std::unordered_map<uint64_t, size_t> map;
  for (size_t i = 0; i < uids.size(); ++i) map[uids[i]] = groups[i];
  return map;
}

std::map<size_t, size_t> GroupSizes(const std::vector<size_t>& group_of_row) {
  std::map<size_t, size_t> sizes;
  for (size_t g : group_of_row) sizes[g]++;
  return sizes;
}

TEST(IncrementalMdavTest, EmptyPreviousGroupingIsAFullMdavRun) {
  const DataTable base = MakeClinicalTrial(60, 7);
  const std::vector<size_t> cols(std::begin(kQiCols), std::end(kQiCols));
  auto full = MdavMicroaggregate(base, 3, cols);
  ASSERT_TRUE(full.ok());

  auto inc = IncrementalMdav(base, IdentityUids(60), cols, 3, {}, {});
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  EXPECT_EQ(inc->group_of_row, full->group_of_row);
  EXPECT_EQ(inc->num_groups, full->num_groups);
  EXPECT_EQ(inc->rows_reclustered, 60u);
  EXPECT_EQ(inc->groups_kept, 0u);
  EXPECT_EQ(TableChecksum(inc->protected_table), TableChecksum(full->table));
}

TEST(IncrementalMdavTest, CleanGroupsKeepMembershipAndMaskedValues) {
  const DataTable base = MakeClinicalTrial(60, 3);
  const std::vector<size_t> cols(std::begin(kQiCols), std::end(kQiCols));
  const std::vector<uint64_t> uids = IdentityUids(60);
  auto prev = IncrementalMdav(base, uids, cols, 3, {}, {});
  ASSERT_TRUE(prev.ok());
  const auto prev_map = GroupOfUid(uids, prev->group_of_row);

  // Update one record in place: only its group is dirty.
  DataTable mutated = base;
  ASSERT_TRUE(mutated.Set(17, 0, Value(int64_t{199})).ok());
  auto next = IncrementalMdav(mutated, uids, cols, 3, prev_map, {17});
  ASSERT_TRUE(next.ok());

  const size_t dirty_group = prev_map.at(17);
  size_t dirty_members = 0;
  for (size_t r = 0; r < 60; ++r) {
    if (prev->group_of_row[r] == dirty_group) ++dirty_members;
  }
  EXPECT_EQ(next->rows_reclustered, dirty_members);
  EXPECT_EQ(next->groups_kept, prev->num_groups - 1);
  EXPECT_GE(next->min_group_size, 3u);

  // Every row of every CLEAN previous group: same co-membership and the
  // exact same masked values as before (same members -> same centroid).
  for (size_t r = 0; r < 60; ++r) {
    if (prev->group_of_row[r] == dirty_group) continue;
    for (size_t c : cols) {
      EXPECT_EQ(next->protected_table.at(r, c), prev->protected_table.at(r, c))
          << "row " << r << " col " << c;
    }
  }
}

TEST(IncrementalMdavTest, ResidualPoolAbsorbsIntoNearestCleanGroup) {
  const DataTable base = MakeClinicalTrial(40, 11);
  const std::vector<size_t> cols(std::begin(kQiCols), std::end(kQiCols));
  std::vector<uint64_t> uids = IdentityUids(40);
  auto prev = IncrementalMdav(base, uids, cols, 4, {}, {});
  ASSERT_TRUE(prev.ok());
  const auto prev_map = GroupOfUid(uids, prev->group_of_row);

  // Delete members of one group until exactly k-1 survive: the survivors
  // are a residual pool that cannot form a lawful group, so they must be
  // absorbed into clean groups (which only grow).
  const size_t victim_group = prev->group_of_row[5];
  std::vector<uint64_t> victim_members;
  for (size_t r = 0; r < 40; ++r) {
    if (prev->group_of_row[r] == victim_group) victim_members.push_back(r);
  }
  ASSERT_GE(victim_members.size(), 4u);
  std::vector<RowMutation> deletes;
  for (size_t i = 0; i + 3 < victim_members.size(); ++i) {
    deletes.push_back(RowMutation::Delete(victim_members[i]));
  }
  DataTable mutated = base;
  std::vector<uint64_t> new_uids = uids;
  uint64_t next_uid = 40;
  auto applied = ApplyMutations(deletes, &mutated, &new_uids, &next_uid);
  ASSERT_TRUE(applied.ok());

  auto next = IncrementalMdav(mutated, new_uids, cols, 4, prev_map,
                              applied->dirty_uids);
  ASSERT_TRUE(next.ok());
  EXPECT_GE(next->min_group_size, 4u);
  for (const auto& [g, size] : GroupSizes(next->group_of_row)) {
    EXPECT_GE(size, 4u) << "group " << g;
  }
  EXPECT_TRUE(IsKAnonymous(next->protected_table, 4, cols));
}

TEST(IncrementalMdavTest, MixedBatchPreservesKAnonymity) {
  const DataTable base = MakeClinicalTrial(50, 23);
  const std::vector<size_t> cols(std::begin(kQiCols), std::end(kQiCols));
  std::vector<uint64_t> uids = IdentityUids(50);
  auto prev = IncrementalMdav(base, uids, cols, 3, {}, {});
  ASSERT_TRUE(prev.ok());
  const auto prev_map = GroupOfUid(uids, prev->group_of_row);

  DataTable mutated = base;
  std::vector<uint64_t> new_uids = uids;
  uint64_t next_uid = 50;
  auto applied = ApplyMutations(
      {RowMutation::Insert({171, 76, 150, "N"}),
       RowMutation::Insert({166, 64, 139, "Y"}),
       RowMutation::Delete(12), RowMutation::Update(33, {182, 91, 160, "N"}),
       RowMutation::Delete(4)},
      &mutated, &new_uids, &next_uid);
  ASSERT_TRUE(applied.ok());

  auto next = IncrementalMdav(mutated, new_uids, cols, 3, prev_map,
                              applied->dirty_uids);
  ASSERT_TRUE(next.ok());
  EXPECT_GE(next->min_group_size, 3u);
  EXPECT_TRUE(IsKAnonymous(next->protected_table, 3, cols));
  // Incrementality: the pool is dirty groups + inserts, not the table.
  EXPECT_LT(next->rows_reclustered, mutated.num_rows());
  EXPECT_GT(next->groups_kept, 0u);
}

TEST(IncrementalMdavTest, TinyTableDegeneratesToOneGroup) {
  const DataTable base = MakeClinicalTrial(2, 5);
  const std::vector<size_t> cols(std::begin(kQiCols), std::end(kQiCols));
  auto r = IncrementalMdav(base, IdentityUids(2), cols, 3, {}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_groups, 1u);
  // min_group_size < k: exactly what the flip gate refuses.
  EXPECT_LT(r->min_group_size, 3u);
}

TEST(IncrementalMdavTest, GroupingIsBitIdenticalAcrossThreadCounts) {
  const DataTable base = MakeClinicalTrial(120, 17);
  const std::vector<size_t> cols(std::begin(kQiCols), std::end(kQiCols));
  const std::vector<uint64_t> uids = IdentityUids(120);
  auto prev = IncrementalMdav(base, uids, cols, 3, {}, {});
  ASSERT_TRUE(prev.ok());
  const auto prev_map = GroupOfUid(uids, prev->group_of_row);

  DataTable mutated = base;
  for (size_t r : {3u, 40u, 77u}) {
    ASSERT_TRUE(mutated.Set(r, 1, Value(int64_t{120 + (int)r})).ok());
  }
  const std::vector<uint64_t> dirty = {3, 40, 77};

  auto serial = IncrementalMdav(mutated, uids, cols, 3, prev_map, dirty,
                                nullptr);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    auto parallel =
        IncrementalMdav(mutated, uids, cols, 3, prev_map, dirty, &pool);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    EXPECT_EQ(parallel->group_of_row, serial->group_of_row)
        << "threads=" << threads;
    EXPECT_EQ(TableChecksum(parallel->protected_table),
              TableChecksum(serial->protected_table))
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace tripriv
