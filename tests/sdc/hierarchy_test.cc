#include "sdc/hierarchy.h"

#include <gtest/gtest.h>

namespace tripriv {
namespace {

TEST(NumericHierarchyTest, LevelZeroIsIdentity) {
  NumericIntervalHierarchy h(0.0, 5.0, 2, 3);
  auto v = h.Generalize(Value(37), 0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value(37));
}

TEST(NumericHierarchyTest, IntervalsWidenPerLevel) {
  NumericIntervalHierarchy h(0.0, 5.0, 2, 3);
  EXPECT_EQ(h.Generalize(Value(37), 1)->AsString(), "[35,40)");
  EXPECT_EQ(h.Generalize(Value(37), 2)->AsString(), "[30,40)");
  EXPECT_EQ(h.Generalize(Value(37), 3)->AsString(), "[20,40)");
}

TEST(NumericHierarchyTest, TopLevelSuppresses) {
  NumericIntervalHierarchy h(0.0, 5.0, 2, 3);
  EXPECT_EQ(h.max_level(), 4);
  EXPECT_EQ(h.Generalize(Value(37), 4)->AsString(), "*");
  // Levels beyond max clamp to suppression.
  EXPECT_EQ(h.Generalize(Value(37), 99)->AsString(), "*");
}

TEST(NumericHierarchyTest, NegativeValuesAndOrigin) {
  NumericIntervalHierarchy h(0.0, 10.0, 2, 1);
  EXPECT_EQ(h.Generalize(Value(-3), 1)->AsString(), "[-10,0)");
  NumericIntervalHierarchy shifted(5.0, 10.0, 2, 1);
  EXPECT_EQ(shifted.Generalize(Value(7), 1)->AsString(), "[5,15)");
}

TEST(NumericHierarchyTest, BoundaryBelongsToUpperInterval) {
  NumericIntervalHierarchy h(0.0, 5.0, 2, 1);
  EXPECT_EQ(h.Generalize(Value(35), 1)->AsString(), "[35,40)");
  EXPECT_EQ(h.Generalize(Value(34.999), 1)->AsString(), "[30,35)");
}

TEST(NumericHierarchyTest, NullStaysNull) {
  NumericIntervalHierarchy h(0.0, 5.0, 2, 3);
  EXPECT_TRUE(h.Generalize(Value::Null(), 2)->is_null());
}

TEST(NumericHierarchyTest, RejectsNonNumeric) {
  NumericIntervalHierarchy h(0.0, 5.0, 2, 3);
  EXPECT_FALSE(h.Generalize(Value("x"), 1).ok());
}

TEST(CategoricalHierarchyTest, AncestorChain) {
  CategoricalTreeHierarchy h;
  ASSERT_TRUE(h.AddLeaf("flu", {"respiratory", "*"}).ok());
  ASSERT_TRUE(h.AddLeaf("asthma", {"respiratory", "*"}).ok());
  ASSERT_TRUE(h.AddLeaf("diabetes", {"metabolic", "*"}).ok());
  EXPECT_EQ(h.max_level(), 2);
  EXPECT_EQ(h.Generalize(Value("flu"), 0)->AsString(), "flu");
  EXPECT_EQ(h.Generalize(Value("flu"), 1)->AsString(), "respiratory");
  EXPECT_EQ(h.Generalize(Value("flu"), 2)->AsString(), "*");
  EXPECT_EQ(h.Generalize(Value("diabetes"), 1)->AsString(), "metabolic");
}

TEST(CategoricalHierarchyTest, InconsistentDepthRejected) {
  CategoricalTreeHierarchy h;
  ASSERT_TRUE(h.AddLeaf("a", {"x", "*"}).ok());
  EXPECT_FALSE(h.AddLeaf("b", {"*"}).ok());
}

TEST(CategoricalHierarchyTest, DuplicateLeafRejected) {
  CategoricalTreeHierarchy h;
  ASSERT_TRUE(h.AddLeaf("a", {"*"}).ok());
  EXPECT_EQ(h.AddLeaf("a", {"*"}).code(), StatusCode::kAlreadyExists);
}

TEST(CategoricalHierarchyTest, UnknownValueFails) {
  CategoricalTreeHierarchy h;
  ASSERT_TRUE(h.AddLeaf("a", {"*"}).ok());
  EXPECT_EQ(h.Generalize(Value("zzz"), 1).status().code(), StatusCode::kNotFound);
}

TEST(CategoricalHierarchyTest, EmptyChainRejected) {
  CategoricalTreeHierarchy h;
  EXPECT_FALSE(h.AddLeaf("a", {}).ok());
}

TEST(SuppressionHierarchyTest, OnlySuppresses) {
  SuppressionHierarchy h;
  EXPECT_EQ(h.max_level(), 1);
  EXPECT_EQ(*h.Generalize(Value(7), 0), Value(7));
  EXPECT_EQ(h.Generalize(Value(7), 1)->AsString(), "*");
  EXPECT_EQ(h.Generalize(Value("cat"), 1)->AsString(), "*");
  EXPECT_TRUE(h.Generalize(Value::Null(), 1)->is_null());
}

}  // namespace
}  // namespace tripriv
