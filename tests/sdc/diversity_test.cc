// Tests for l-diversity variants, t-closeness, the homogeneity attack,
// and variance-restoring noise.

#include <cmath>

#include <gtest/gtest.h>

#include "sdc/diversity.h"
#include "sdc/noise.h"
#include "stats/descriptive.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

/// 2-anonymous table with one homogeneous class (zip 100 -> always flu).
Result<DataTable> HomogeneousExample() {
  Schema s({
      {"zip", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"disease", AttributeType::kCategorical, AttributeRole::kConfidential},
  });
  return DataTable::FromRows(s, {{100, "flu"},
                                 {100, "flu"},
                                 {200, "flu"},
                                 {200, "cancer"},
                                 {300, "cancer"},
                                 {300, "flu"},
                                 {300, "cancer"}});
}

TEST(EntropyDiversityTest, PaperDataset1) {
  DataTable t = PaperDataset1();
  const auto qi = t.schema().QuasiIdentifierIndices();
  // Every class has 2 distinct aids values; the worst class is the size-4
  // one with split {1, 3}: exp(-(1/4)ln(1/4)-(3/4)ln(3/4)) ~ 1.755.
  const double div = EntropyLDiversity(t, qi, 3);
  EXPECT_NEAR(div, 1.7548, 1e-3);
  // Blood pressures are unique within classes: entropy diversity = class
  // size for the smallest class (3).
  EXPECT_NEAR(EntropyLDiversity(t, qi, 2), 3.0, 1e-9);
}

TEST(EntropyDiversityTest, HomogeneousClassHasDiversityOne) {
  auto t = HomogeneousExample();
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(EntropyLDiversity(*t, {0}, 1), 1.0, 1e-9);
}

TEST(EntropyDiversityTest, EmptyTableIsZero) {
  DataTable t(PatientSchema());
  EXPECT_DOUBLE_EQ(EntropyLDiversity(t, {0, 1}, 3), 0.0);
}

TEST(RecursiveDiversityTest, KnownCases) {
  auto t = HomogeneousExample();
  ASSERT_TRUE(t.ok());
  // The zip-100 class has counts {2}; r1 = 2 and the l=2 tail is empty:
  // not (c,2)-diverse for any c.
  auto r = IsRecursiveCLDiverse(*t, {0}, 1, 3.0, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  // With l = 1 the condition is r1 < c * total: zip-100 has 2 < c*2 iff
  // c > 1.
  EXPECT_TRUE(*IsRecursiveCLDiverse(*t, {0}, 1, 1.5, 1));
  EXPECT_FALSE(*IsRecursiveCLDiverse(*t, {0}, 1, 0.9, 1));
}

TEST(RecursiveDiversityTest, BalancedClassesPass) {
  DataTable t = PaperDataset1();
  const auto qi = t.schema().QuasiIdentifierIndices();
  // aids counts per class are {2,1} or {3,1}: r1=3 < c*(r2)=c*1 iff c>3.
  EXPECT_TRUE(*IsRecursiveCLDiverse(t, qi, 3, 3.5, 2));
  EXPECT_FALSE(*IsRecursiveCLDiverse(t, qi, 3, 2.0, 2));
}

TEST(RecursiveDiversityTest, RejectsBadParameters) {
  DataTable t = PaperDataset1();
  const auto qi = t.schema().QuasiIdentifierIndices();
  EXPECT_FALSE(IsRecursiveCLDiverse(t, qi, 3, 0.0, 2).ok());
  EXPECT_FALSE(IsRecursiveCLDiverse(t, qi, 3, 2.0, 0).ok());
}

TEST(TClosenessTest, SingleClassIsPerfectlyClose) {
  // One equivalence class == global distribution -> distance 0.
  Schema s({
      {"zip", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"disease", AttributeType::kCategorical, AttributeRole::kConfidential},
  });
  auto t = DataTable::FromRows(
      s, {{1, "flu"}, {1, "cancer"}, {1, "flu"}, {1, "asthma"}});
  ASSERT_TRUE(t.ok());
  auto d = TClosenessMaxDistance(*t, {0}, 1);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, 1e-12);
  EXPECT_TRUE(*IsTClose(*t, {0}, 1, 0.01));
}

TEST(TClosenessTest, SkewedClassIsFar) {
  auto t = HomogeneousExample();
  ASSERT_TRUE(t.ok());
  // Global: flu 4/7, cancer 3/7. Class zip-100: flu 1.0 -> TV/2 = 3/7.
  auto d = TClosenessMaxDistance(*t, {0}, 1);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 3.0 / 7.0, 1e-9);
  EXPECT_FALSE(*IsTClose(*t, {0}, 1, 0.3));
  EXPECT_TRUE(*IsTClose(*t, {0}, 1, 0.5));
}

TEST(TClosenessTest, NumericUsesOrderedDistance) {
  // Two classes with the same *set* of values but concentrated at opposite
  // ends: ordered EMD must see them as far apart.
  Schema s({
      {"zip", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"salary", AttributeType::kInteger, AttributeRole::kConfidential},
  });
  auto t = DataTable::FromRows(s, {{1, 10}, {1, 10}, {1, 20},
                                   {2, 90}, {2, 100}, {2, 100}});
  ASSERT_TRUE(t.ok());
  auto d = TClosenessMaxDistance(*t, {0}, 1);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(*d, 0.35);  // each class sits at one end of the ordered domain
  EXPECT_FALSE(*IsTClose(*t, {0}, 1, 0.3));
}

TEST(TClosenessTest, RejectsNegativeT) {
  DataTable t = PaperDataset1();
  EXPECT_FALSE(IsTClose(t, t.schema().QuasiIdentifierIndices(), 2, -0.1).ok());
}

TEST(HomogeneityAttackTest, CountsExposedRecords) {
  auto t = HomogeneousExample();
  ASSERT_TRUE(t.ok());
  // Only the zip-100 class (2 records) is homogeneous.
  EXPECT_NEAR(HomogeneityAttackRate(*t, {0}, 1), 2.0 / 7.0, 1e-9);
  // Paper Dataset 1: all classes mixed -> rate 0.
  DataTable d1 = PaperDataset1();
  EXPECT_DOUBLE_EQ(
      HomogeneityAttackRate(d1, d1.schema().QuasiIdentifierIndices(), 3), 0.0);
  DataTable empty(PatientSchema());
  EXPECT_DOUBLE_EQ(HomogeneityAttackRate(empty, {0, 1}, 3), 0.0);
}

TEST(VarianceRestorationTest, PreservesMeanAndVariance) {
  DataTable data = MakeCensus(5000, 61);
  const size_t income = 4;
  auto masked = AddNoiseWithVarianceRestoration(data, 0.8, {income}, 67);
  ASSERT_TRUE(masked.ok());
  auto orig = data.NumericColumn(income).value();
  auto out = masked->NumericColumn(income).value();
  EXPECT_NEAR(Mean(out) / Mean(orig), 1.0, 0.02);
  EXPECT_NEAR(SampleVariance(out) / SampleVariance(orig), 1.0, 0.05);
  // Plain additive noise at the same alpha inflates the variance ~1.64x.
  auto plain = AddUncorrelatedNoise(data, 0.8, {income}, 67);
  ASSERT_TRUE(plain.ok());
  EXPECT_GT(SampleVariance(plain->NumericColumn(income).value()) /
                SampleVariance(orig),
            1.4);
}

TEST(VarianceRestorationTest, StillMasksIndividualValues) {
  DataTable data = MakeCensus(500, 71);
  auto masked = AddNoiseWithVarianceRestoration(data, 0.8, {4}, 73);
  ASSERT_TRUE(masked.ok());
  auto orig = data.NumericColumn(size_t{4}).value();
  auto out = masked->NumericColumn(size_t{4}).value();
  size_t changed = 0;
  for (size_t i = 0; i < orig.size(); ++i) {
    if (std::fabs(orig[i] - out[i]) > 1e-9) ++changed;
  }
  EXPECT_EQ(changed, orig.size());
}

TEST(VarianceRestorationTest, RejectsBadInput) {
  DataTable data = MakeCensus(10, 1);
  EXPECT_FALSE(AddNoiseWithVarianceRestoration(data, -0.5, {4}, 1).ok());
  DataTable single(PatientSchema());
  ASSERT_TRUE(single.AppendRow({170, 70, 150, "N"}).ok());
  EXPECT_FALSE(AddNoiseWithVarianceRestoration(single, 0.5, {0}, 1).ok());
}

}  // namespace
}  // namespace tripriv
