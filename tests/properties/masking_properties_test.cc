// Property sweeps over masking methods and measurement: marginal
// preservation of rank swapping, unbiasedness of noise and randomized
// response, monotonicity of the risk/utility dials, and reconstruction
// consistency across noise levels.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "ppdm/randomized_response.h"
#include "ppdm/reconstruction.h"
#include "sdc/information_loss.h"
#include "sdc/noise.h"
#include "sdc/rank_swap.h"
#include "sdc/risk.h"
#include "stats/descriptive.h"
#include "table/datasets.h"
#include "util/random.h"

namespace tripriv {
namespace {

class RankSwapSweep : public ::testing::TestWithParam<double> {};

TEST_P(RankSwapSweep, MarginalsExactlyPreservedForEveryWindow) {
  const double p = GetParam();
  DataTable data = MakeCensus(250, 17);
  auto masked = RankSwap(data, p, {0, 4}, 23);
  ASSERT_TRUE(masked.ok());
  for (size_t c : {0u, 4u}) {
    auto orig = data.NumericColumn(c).value();
    auto swap = masked->NumericColumn(c).value();
    std::sort(orig.begin(), orig.end());
    std::sort(swap.begin(), swap.end());
    EXPECT_EQ(orig, swap) << "window " << p << ", column " << c;
  }
}

TEST_P(RankSwapSweep, LinkageRiskFallsAsWindowGrows) {
  const double p = GetParam();
  if (p == 0.0) return;  // degenerate window
  DataTable data = MakeExtendedTrial(250, 19);
  auto narrow = RankSwap(data, p, data.schema().QuasiIdentifierIndices(), 29);
  auto wide =
      RankSwap(data, std::min(100.0, p * 4), data.schema().QuasiIdentifierIndices(), 29);
  ASSERT_TRUE(narrow.ok() && wide.ok());
  auto risk_narrow = DistanceLinkageAttack(data, *narrow);
  auto risk_wide = DistanceLinkageAttack(data, *wide);
  ASSERT_TRUE(risk_narrow.ok() && risk_wide.ok());
  EXPECT_GE(risk_narrow->correct_fraction + 0.05, risk_wide->correct_fraction);
}

INSTANTIATE_TEST_SUITE_P(Windows, RankSwapSweep,
                         ::testing::Values(0.0, 2.0, 5.0, 10.0, 25.0, 100.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "p" + std::to_string(
                                            static_cast<int>(info.param));
                         });

class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, NoiseIsCenteredAndScaled) {
  const double alpha = GetParam();
  DataTable data = MakeCensus(3000, 31);
  auto masked = AddUncorrelatedNoise(data, alpha, {4}, 37);
  ASSERT_TRUE(masked.ok());
  auto orig = data.NumericColumn(size_t{4}).value();
  auto noisy = masked->NumericColumn(size_t{4}).value();
  std::vector<double> noise(orig.size());
  for (size_t i = 0; i < orig.size(); ++i) noise[i] = noisy[i] - orig[i];
  const double sd = SampleStddev(orig);
  EXPECT_NEAR(Mean(noise), 0.0, 0.08 * (alpha + 0.01) * sd + 1e-9);
  if (alpha > 0.0) {
    EXPECT_NEAR(SampleStddev(noise) / (alpha * sd), 1.0, 0.08);
  }
}

TEST_P(NoiseSweep, InformationLossMonotoneInAlpha) {
  const double alpha = GetParam();
  if (alpha == 0.0) return;
  DataTable data = MakeExtendedTrial(400, 41);
  const auto qi = data.schema().QuasiIdentifierIndices();
  auto lo = AddUncorrelatedNoise(data, alpha, qi, 43);
  auto hi = AddUncorrelatedNoise(data, alpha * 2.0, qi, 43);
  ASSERT_TRUE(lo.ok() && hi.ok());
  auto loss_lo = MeasureInformationLoss(data, *lo);
  auto loss_hi = MeasureInformationLoss(data, *hi);
  ASSERT_TRUE(loss_lo.ok() && loss_hi.ok());
  EXPECT_LT(loss_lo->il1s, loss_hi->il1s * 1.02);
}

INSTANTIATE_TEST_SUITE_P(Alphas, NoiseSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 1.0, 2.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "alpha" + std::to_string(static_cast<int>(
                                                info.param * 100));
                         });

class RandomizedResponseSweep : public ::testing::TestWithParam<double> {};

TEST_P(RandomizedResponseSweep, EstimatorUnbiasedAcrossRetention) {
  const double p = GetParam();
  DataTable data = MakeCensus(6000, 47);
  const size_t col = 5;
  auto truth = ObservedDistribution(data, col);
  ASSERT_TRUE(truth.ok());
  std::vector<std::string> domain;
  for (const auto& [k, v] : *truth) domain.push_back(k);
  auto masked = RandomizedResponseMask(data, col, p, 53);
  ASSERT_TRUE(masked.ok());
  auto estimate = EstimateTrueDistribution(*masked, col, p, domain);
  ASSERT_TRUE(estimate.ok());
  // Estimation noise grows as p falls; tolerance scales with 1/p.
  const double tol = 0.02 / p + 0.01;
  for (const auto& [category, prob] : *truth) {
    EXPECT_NEAR(estimate->at(category), prob, tol) << "p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Retention, RandomizedResponseSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "p" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

class ReconstructionSweep : public ::testing::TestWithParam<double> {};

TEST_P(ReconstructionSweep, MeanRecoveredAcrossNoiseLevels) {
  const double sigma = GetParam();
  Rng rng(59);
  std::vector<double> original;
  std::vector<double> perturbed;
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.Bernoulli(0.3) ? rng.Normal(10, 3) : rng.Normal(50, 5);
    original.push_back(x);
    perturbed.push_back(x + rng.Normal(0.0, sigma));
  }
  auto dist = ReconstructDistribution(perturbed, sigma);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->MeanEstimate(), Mean(original), 1.6) << "sigma " << sigma;
  // The reconstructed variance must be closer to the original's than the
  // (inflated) perturbed variance for meaningful noise levels.
  auto values = ReconstructValues(perturbed, sigma);
  ASSERT_TRUE(values.ok());
  if (sigma >= 5.0) {
    const double var_orig = SampleVariance(original);
    EXPECT_LT(std::fabs(SampleVariance(*values) - var_orig),
              std::fabs(SampleVariance(perturbed) - var_orig));
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, ReconstructionSweep,
                         ::testing::Values(1.0, 5.0, 10.0, 20.0, 40.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "sigma" + std::to_string(static_cast<int>(
                                                info.param));
                         });

}  // namespace
}  // namespace tripriv
