// Property sweeps over the cryptographic substrates: algebraic identities
// of BigInt, Paillier homomorphisms, Shamir threshold behaviour, secure-sum
// correctness, and PIR correctness across parameter grids.

#include <numeric>

#include <gtest/gtest.h>

#include "pir/it_pir.h"
#include "smc/paillier.h"
#include "smc/secure_sum.h"
#include "smc/shamir.h"
#include "util/bigint.h"

namespace tripriv {
namespace {

// ---------------------------------------------------------------- BigInt

class BigIntAlgebra : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BigIntAlgebra, RingAxiomsHoldOnRandomOperands) {
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    BigInt a = BigInt::Random(1 + rng.UniformU64(160), &rng);
    BigInt b = BigInt::Random(1 + rng.UniformU64(160), &rng);
    BigInt c = BigInt::Random(1 + rng.UniformU64(160), &rng);
    if (rng.Bernoulli(0.5)) a = -a;
    if (rng.Bernoulli(0.5)) b = -b;
    if (rng.Bernoulli(0.5)) c = -c;
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigInt(0));
    EXPECT_EQ(a + BigInt(0), a);
    EXPECT_EQ(a * BigInt(1), a);
    EXPECT_EQ(a * BigInt(0), BigInt(0));
  }
}

TEST_P(BigIntAlgebra, ShiftsAgreeWithPowersOfTwo) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt::Random(1 + rng.UniformU64(120), &rng);
    const size_t s = rng.UniformU64(70);
    BigInt pow2(1);
    for (size_t j = 0; j < s; ++j) pow2 = pow2 * BigInt(2);
    EXPECT_EQ(a << s, a * pow2);
    EXPECT_EQ((a << s) >> s, a);
    EXPECT_EQ(a >> s, a / pow2);
  }
}

TEST_P(BigIntAlgebra, ModularIdentities) {
  Rng rng(GetParam() ^ 0x5EED);
  const BigInt p = BigInt::RandomPrime(64, &rng);
  for (int i = 0; i < 25; ++i) {
    const BigInt a = BigInt::RandomBelow(p, &rng);
    const BigInt b = BigInt::RandomBelow(p, &rng);
    const BigInt e1 = BigInt::RandomBelow(BigInt(1000), &rng);
    const BigInt e2 = BigInt::RandomBelow(BigInt(1000), &rng);
    // (a*b) mod p distributes; modexp laws.
    EXPECT_EQ(BigInt::ModMul(a, b, p), (a * b).Mod(p));
    EXPECT_EQ(BigInt::ModExp(a, e1 + e2, p),
              BigInt::ModMul(BigInt::ModExp(a, e1, p),
                             BigInt::ModExp(a, e2, p), p));
    EXPECT_EQ(BigInt::ModExp(BigInt::ModExp(a, e1, p), e2, p),
              BigInt::ModExp(a, e1 * e2, p));
    if (!a.IsZero()) {
      auto inv = BigInt::ModInverse(a, p);
      ASSERT_TRUE(inv.ok());
      EXPECT_EQ(BigInt::ModMul(a, *inv, p), BigInt(1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntAlgebra,
                         ::testing::Values(1u, 42u, 20240706u));

// --------------------------------------------------------------- Paillier

class PaillierSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PaillierSweep, HomomorphismAcrossKeySizes) {
  Rng rng(GetParam());
  auto keys = PaillierGenerateKeys(GetParam(), &rng);
  ASSERT_TRUE(keys.ok());
  for (int i = 0; i < 10; ++i) {
    const BigInt m1 = BigInt::RandomBelow(keys->pub.n, &rng);
    const BigInt m2 = BigInt::RandomBelow(keys->pub.n, &rng);
    const BigInt k = BigInt::RandomBelow(BigInt(1000), &rng);
    auto c1 = PaillierEncrypt(keys->pub, m1, &rng);
    auto c2 = PaillierEncrypt(keys->pub, m2, &rng);
    ASSERT_TRUE(c1.ok() && c2.ok());
    auto sum = PaillierDecrypt(keys->pub, keys->priv,
                               PaillierAdd(keys->pub, *c1, *c2));
    ASSERT_TRUE(sum.ok());
    EXPECT_EQ(*sum, (m1 + m2).Mod(keys->pub.n));
    auto scaled = PaillierDecrypt(keys->pub, keys->priv,
                                  PaillierMulPlain(keys->pub, *c1, k));
    ASSERT_TRUE(scaled.ok());
    EXPECT_EQ(*scaled, (m1 * k).Mod(keys->pub.n));
  }
}

INSTANTIATE_TEST_SUITE_P(KeyBits, PaillierSweep,
                         ::testing::Values(size_t{128}, size_t{192},
                                           size_t{256}));

// ----------------------------------------------------------------- Shamir

struct ShamirParam {
  size_t n;
  size_t t;
};

class ShamirSweep : public ::testing::TestWithParam<ShamirParam> {};

TEST_P(ShamirSweep, EveryTSubsetReconstructs) {
  const auto [n, t] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 100 + t));
  const BigInt prime = BigInt::FromString("2305843009213693951").value();
  const BigInt secret = BigInt::RandomBelow(prime, &rng);
  auto shares = ShamirShareSecret(secret, n, t, prime, &rng);
  ASSERT_TRUE(shares.ok());
  // Try every contiguous window plus a few random subsets of size t.
  for (size_t start = 0; start + t <= n; ++start) {
    std::vector<ShamirShare> subset(shares->begin() + start,
                                    shares->begin() + start + t);
    auto back = ShamirReconstruct(subset, prime);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, secret);
  }
  for (int trial = 0; trial < 5; ++trial) {
    auto picks = rng.SampleWithoutReplacement(n, t);
    std::vector<ShamirShare> subset;
    for (size_t i : picks) subset.push_back((*shares)[i]);
    auto back = ShamirReconstruct(subset, prime);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, secret);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThresholdGrid, ShamirSweep,
    ::testing::Values(ShamirParam{3, 2}, ShamirParam{5, 3}, ShamirParam{7, 4},
                      ShamirParam{9, 2}, ShamirParam{6, 6}),
    [](const ::testing::TestParamInfo<ShamirParam>& info) {
      return "n" + std::to_string(info.param.n) + "t" +
             std::to_string(info.param.t);
    });

// ------------------------------------------------------------- secure sum

class SecureSumSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SecureSumSweep, MatchesPlainSumForRandomInputs) {
  const size_t parties = GetParam();
  Rng rng(parties * 31);
  for (int round = 0; round < 5; ++round) {
    PartyNetwork net(parties, rng.NextU64());
    std::vector<std::vector<uint64_t>> counts(parties,
                                              std::vector<uint64_t>(8));
    std::vector<uint64_t> expected(8, 0);
    for (auto& vec : counts) {
      for (size_t j = 0; j < vec.size(); ++j) {
        vec[j] = rng.UniformU64(1000000);
        expected[j] += vec[j];
      }
    }
    auto sums = SecureSumCounts(&net, counts);
    ASSERT_TRUE(sums.ok());
    EXPECT_EQ(*sums, expected);
  }
}

TEST_P(SecureSumSweep, RepeatedRoundsOnOneNetworkStayCorrect) {
  // Regression for the mailbox-drain bug: multiple secure sums of
  // DIFFERENT widths over the same network must not interfere.
  const size_t parties = GetParam();
  PartyNetwork net(parties, 99);
  for (size_t width : {5u, 1u, 9u, 3u}) {
    std::vector<std::vector<uint64_t>> counts(parties,
                                              std::vector<uint64_t>(width, 2));
    auto sums = SecureSumCounts(&net, counts);
    ASSERT_TRUE(sums.ok()) << "width " << width;
    for (uint64_t v : *sums) EXPECT_EQ(v, 2 * parties);
  }
}

INSTANTIATE_TEST_SUITE_P(Parties, SecureSumSweep,
                         ::testing::Values(size_t{2}, size_t{3}, size_t{5},
                                           size_t{9}));

// ------------------------------------------------------------------- PIR

struct PirParam {
  size_t n;
  size_t record_size;
};

class PirSweep : public ::testing::TestWithParam<PirParam> {};

TEST_P(PirSweep, TwoServerCorrectForAllIndices) {
  const auto [n, record_size] = GetParam();
  Rng rng(n * 7 + record_size);
  std::vector<std::vector<uint8_t>> records(n,
                                            std::vector<uint8_t>(record_size));
  for (auto& r : records) {
    for (auto& b : r) b = static_cast<uint8_t>(rng.NextU64());
  }
  auto a = XorPirServer::Create(records);
  auto b = XorPirServer::Create(records);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < n; ++i) {
    auto got = TwoServerPirRead(&*a, &*b, i, &rng);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, records[i]) << "index " << i;
  }
}

TEST_P(PirSweep, FourServerCorrectForAllIndices) {
  const auto [n, record_size] = GetParam();
  Rng rng(n * 13 + record_size);
  std::vector<std::vector<uint8_t>> records(n,
                                            std::vector<uint8_t>(record_size));
  for (auto& r : records) {
    for (auto& b : r) b = static_cast<uint8_t>(rng.NextU64());
  }
  std::vector<XorPirServer> servers;
  for (int i = 0; i < 4; ++i) servers.push_back(*XorPirServer::Create(records));
  std::array<XorPirServer*, 4> ptrs{&servers[0], &servers[1], &servers[2],
                                    &servers[3]};
  for (size_t i = 0; i < n; ++i) {
    auto got = FourServerCubePirRead(ptrs, i, &rng);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, records[i]) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PirSweep,
    ::testing::Values(PirParam{1, 8}, PirParam{2, 8}, PirParam{7, 3},
                      PirParam{16, 16}, PirParam{65, 5}, PirParam{100, 1}),
    [](const ::testing::TestParamInfo<PirParam>& info) {
      return "n" + std::to_string(info.param.n) + "rec" +
             std::to_string(info.param.record_size);
    });

}  // namespace
}  // namespace tripriv
