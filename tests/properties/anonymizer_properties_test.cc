// Property sweeps: every anonymizer must satisfy its post-conditions for
// every (dataset, k) combination — the k-anonymity contract of [12] and
// the group-size contract of microaggregation.

#include <map>

#include <gtest/gtest.h>

#include "sdc/anonymity.h"
#include "sdc/condensation.h"
#include "sdc/microaggregation.h"
#include "sdc/mondrian.h"
#include "sdc/recoding.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

struct SweepParam {
  const char* dataset;
  size_t n;
  uint64_t seed;
  size_t k;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(info.param.dataset) + "_n" +
         std::to_string(info.param.n) + "_k" + std::to_string(info.param.k);
}

DataTable MakeData(const SweepParam& p) {
  if (std::string(p.dataset) == "trial") {
    return MakeClinicalTrial(p.n, p.seed);
  }
  return MakeExtendedTrial(p.n, p.seed);
}

class AnonymizerSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AnonymizerSweep, MdavGuaranteesKAnonymityAndGroupBounds) {
  const SweepParam& p = GetParam();
  DataTable data = MakeData(p);
  auto r = MdavMicroaggregate(data, p.k);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Post-condition 1: k-anonymity on the QIs ([12]).
  EXPECT_GE(AnonymityLevel(r->table), p.k);
  // Post-condition 2: group sizes in [k, 2k-1].
  std::map<size_t, size_t> sizes;
  for (size_t g : r->group_of_row) sizes[g]++;
  for (const auto& [g, size] : sizes) {
    EXPECT_GE(size, p.k);
    EXPECT_LE(size, 2 * p.k - 1);
  }
  // Post-condition 3: row count preserved; confidential cells untouched.
  ASSERT_EQ(r->table.num_rows(), data.num_rows());
  for (size_t c : data.schema().ConfidentialIndices()) {
    for (size_t row = 0; row < data.num_rows(); ++row) {
      EXPECT_EQ(data.at(row, c), r->table.at(row, c));
    }
  }
}

TEST_P(AnonymizerSweep, MondrianGuaranteesKAnonymity) {
  const SweepParam& p = GetParam();
  DataTable data = MakeData(p);
  auto r = MondrianAnonymize(data, p.k);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(AnonymityLevel(r->table), p.k);
  EXPECT_EQ(r->table.num_rows(), data.num_rows());
}

TEST_P(AnonymizerSweep, CondensationGroupsRespectK) {
  const SweepParam& p = GetParam();
  DataTable data = MakeData(p);
  auto r = Condense(data, p.k, p.seed ^ 0xC0DE);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::map<size_t, size_t> sizes;
  for (size_t g : r->group_of_row) sizes[g]++;
  for (const auto& [g, size] : sizes) EXPECT_GE(size, p.k);
}

TEST_P(AnonymizerSweep, DataflyGuaranteesKAnonymityAfterSuppression) {
  const SweepParam& p = GetParam();
  DataTable data = MakeData(p);
  RecodingConfig config;
  config.k = p.k;
  config.max_suppression_fraction = 0.05;
  config.hierarchies["age"] =
      std::make_shared<NumericIntervalHierarchy>(0.0, 5.0, 2, 4);
  config.hierarchies["height"] =
      std::make_shared<NumericIntervalHierarchy>(0.0, 5.0, 2, 4);
  config.hierarchies["weight"] =
      std::make_shared<NumericIntervalHierarchy>(0.0, 5.0, 2, 4);
  config.hierarchies["cholesterol"] =
      std::make_shared<NumericIntervalHierarchy>(0.0, 20.0, 2, 4);
  auto r = DataflyAnonymize(data, config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  if (r->table.num_rows() > 0) {
    EXPECT_GE(AnonymityLevel(r->table), p.k);
  }
  EXPECT_LE(r->suppressed_rows + r->table.num_rows(), data.num_rows());
}

INSTANTIATE_TEST_SUITE_P(
    KSweep, AnonymizerSweep,
    ::testing::Values(SweepParam{"trial", 60, 3, 2},
                      SweepParam{"trial", 60, 3, 5},
                      SweepParam{"trial", 151, 5, 3},
                      SweepParam{"trial", 151, 5, 10},
                      SweepParam{"extended", 97, 7, 2},
                      SweepParam{"extended", 97, 7, 7},
                      SweepParam{"extended", 240, 11, 4},
                      SweepParam{"extended", 240, 11, 16}),
    ParamName);

}  // namespace
}  // namespace tripriv
