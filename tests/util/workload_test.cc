// Workload generators: Zipf skew and determinism at million-rank
// universes, diurnal wave bounds, and correlated-burst replayability.

#include "util/workload.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace tripriv {
namespace {

TEST(ZipfSamplerTest, DrawsAreDeterministicGivenTheRngStream) {
  ZipfSampler zipf(1000, 1.2);
  Rng a(7), b(7);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(zipf.Sample(&a), zipf.Sample(&b));
  }
}

TEST(ZipfSamplerTest, RanksStayInTheUniverse) {
  ZipfSampler zipf(37, 0.9);
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 37u);
  }
}

TEST(ZipfSamplerTest, PopularitySkewsTowardRankZero) {
  ZipfSampler zipf(1000, 1.2);
  Rng rng(3);
  size_t rank0 = 0, top10 = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t rank = zipf.Sample(&rng);
    if (rank == 0) ++rank0;
    if (rank < 10) ++top10;
  }
  // s=1.2, n=1000: rank 0 carries ~18% of mass, the top 10 well over 40%.
  EXPECT_GT(rank0, kDraws / 10);
  EXPECT_GT(top10, kDraws * 2 / 5);
}

TEST(ZipfSamplerTest, MillionRankUniverseIsCheapAndInRange) {
  // O(1) memory: constructing at n = 10^6 allocates nothing per rank.
  ZipfSampler zipf(1000000, 1.1);
  Rng rng(5);
  uint64_t max_seen = 0;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t rank = zipf.Sample(&rng);
    ASSERT_LT(rank, 1000000u);
    if (rank > max_seen) max_seen = rank;
  }
  // The tail is actually reachable (not all draws collapse to the head).
  EXPECT_GT(max_seen, 10000u);
}

TEST(ZipfSamplerTest, HandlesTheLogBranchAtExponentOne) {
  ZipfSampler zipf(512, 1.0);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 512u);
  }
}

TEST(DiurnalWaveTest, MultiplierStaysInBandAndRepeatsEachPeriod) {
  DiurnalWave wave(0.8, 128);
  for (uint64_t t = 0; t < 256; ++t) {
    const double m = wave.MultiplierAt(t);
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.8 + 1e-9);
    EXPECT_DOUBLE_EQ(m, wave.MultiplierAt(t + 128));
  }
  // Phase 0 is the neutral point; the quarter period is the peak.
  EXPECT_DOUBLE_EQ(wave.MultiplierAt(0), 1.0);
  EXPECT_NEAR(wave.MultiplierAt(32), 1.8, 1e-9);
}

TEST(DiurnalWaveTest, ZeroAmplitudeIsFlat) {
  DiurnalWave wave(0.0, 64);
  for (uint64_t t = 0; t < 64; ++t) {
    EXPECT_DOUBLE_EQ(wave.MultiplierAt(t), 1.0);
  }
}

TEST(BurstProcessTest, PatternReplaysFromTheSeed) {
  BurstProcess a(0.1, 0.3, 4.0, 77);
  BurstProcess b(0.1, 0.3, 4.0, 77);
  for (int i = 0; i < 512; ++i) {
    EXPECT_DOUBLE_EQ(a.Step(), b.Step());
  }
  EXPECT_EQ(a.bursts_entered(), b.bursts_entered());
}

TEST(BurstProcessTest, BurstsAreCorrelatedRuns) {
  // on 0.05 / off 0.2: bursts are rare but sticky — entered counts must
  // be far below the number of bursting steps.
  BurstProcess burst(0.05, 0.2, 3.0, 21);
  int bursting_steps = 0;
  for (int i = 0; i < 4000; ++i) {
    if (burst.Step() > 1.0) ++bursting_steps;
  }
  EXPECT_GT(bursting_steps, 200);
  EXPECT_LT(burst.bursts_entered(), static_cast<uint64_t>(bursting_steps / 2));
}

TEST(BurstProcessTest, MultiplierIsOneWhenQuiet) {
  BurstProcess never(0.0, 1.0, 5.0, 4);
  for (int i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(never.Step(), 1.0);
  }
}

}  // namespace
}  // namespace tripriv
