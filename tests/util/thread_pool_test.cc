// ThreadPool contract tests: shard geometry is a pure function of (n,
// worker count), every index is visited exactly once, the inline pool is a
// faithful serial reference, and the fork/join barrier publishes all shard
// writes to the caller.

#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"

namespace tripriv {
namespace {

TEST(ThreadPoolTest, InlinePoolRunsEverythingOnTheCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  EXPECT_EQ(pool.NumShards(100), 1u);
  std::vector<int> hits(10, 0);
  pool.ParallelFor(10, [&hits](size_t shard, size_t begin, size_t end) {
    EXPECT_EQ(shard, 0u);
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ShardBoundsPartitionTheRange) {
  // Shard boundaries must tile [0, n) exactly: contiguous, ascending, no
  // gaps, no overlap — for every (n, threads) combination tried.
  for (size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    for (size_t n : {0u, 1u, 2u, 5u, 7u, 8u, 9u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h = 0;
      pool.ParallelFor(n, [&hits](size_t, size_t begin, size_t end) {
        EXPECT_LE(begin, end);
        for (size_t i = begin; i < end; ++i) ++hits[i];
      });
      for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "n=" << n;
    }
  }
}

TEST(ThreadPoolTest, NumShardsDependsOnlyOnSizeAndWorkerCount) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  EXPECT_EQ(pool.NumShards(0), 0u);
  EXPECT_EQ(pool.NumShards(1), 1u);
  EXPECT_EQ(pool.NumShards(3), 3u);
  EXPECT_EQ(pool.NumShards(4), 4u);
  EXPECT_EQ(pool.NumShards(1000), 4u);
}

TEST(ThreadPoolTest, BarrierPublishesShardWrites) {
  // The caller must see every shard's writes after ParallelFor returns —
  // no atomics in the payload, ordering comes from the completion barrier.
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<uint64_t> out(n, 0);
  pool.ParallelFor(n, [&out](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = i * i;
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, PerShardSlotsMergeDeterministically) {
  // The canonical usage: per-shard partial sums, merged in shard order.
  // Every thread count must yield the same result.
  const size_t n = 4321;
  uint64_t expected = 0;
  for (size_t i = 0; i < n; ++i) expected += i;
  for (size_t threads : {0u, 1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const size_t shards = pool.NumShards(n);
    std::vector<uint64_t> partial(shards, 0);
    pool.ParallelFor(n, [&partial](size_t shard, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) partial[shard] += i;
    });
    uint64_t total = 0;
    for (size_t s = 0; s < shards; ++s) total += partial[s];
    EXPECT_EQ(total, expected) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> hits(17, 0);
    pool.ParallelFor(17, [&hits](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) ++hits[i];
    });
    const int total = std::accumulate(hits.begin(), hits.end(), 0);
    ASSERT_EQ(total, 17) << "round " << round;
  }
}

}  // namespace
}  // namespace tripriv
