#include "util/csv.h"

#include <gtest/gtest.h>

namespace tripriv {
namespace {

TEST(CsvTest, ParsesSimpleRows) {
  auto r = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ((*r)[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, LastLineWithoutNewline) {
  auto r = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, EmptyFields) {
  auto r = ParseCsv("a,,c\n,,\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ((*r)[1], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvTest, QuotedFieldWithComma) {
  auto r = ParseCsv("\"x,y\",z\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0], (std::vector<std::string>{"x,y", "z"}));
}

TEST(CsvTest, QuotedFieldWithEscapedQuote) {
  auto r = ParseCsv("\"he said \"\"hi\"\"\",b\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0][0], "he said \"hi\"");
}

TEST(CsvTest, QuotedFieldWithNewline) {
  auto r = ParseCsv("\"line1\nline2\",b\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0][0], "line1\nline2");
}

TEST(CsvTest, CrLfLineEndings) {
  auto r = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("\"oops\n").ok());
}

TEST(CsvTest, QuoteInsideUnquotedFieldFails) {
  EXPECT_FALSE(ParseCsv("ab\"cd,e\n").ok());
}

TEST(CsvTest, EmptyInputIsNoRows) {
  auto r = ParseCsv("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(CsvTest, EscapePlainField) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvEscape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvEscape("with\nnewline"), "\"with\nnewline\"");
}

TEST(CsvTest, WriteParseRoundTrip) {
  std::vector<std::vector<std::string>> rows{
      {"name", "note"},
      {"alice", "likes, commas"},
      {"bob", "said \"hello\""},
      {"carol", "multi\nline"},
  };
  auto parsed = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

}  // namespace
}  // namespace tripriv
