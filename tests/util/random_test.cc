#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace tripriv {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformU64CoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformU64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0;
  double sumsq = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, LaplaceMomentsMatch) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0;
  double sumsq = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Laplace(5.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 8.0, 0.5);  // Var = 2 b^2
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t i : sample) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleAllIsFullPermutation) {
  Rng rng(41);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(43);
  Rng fork = a.Fork();
  // The fork and parent should not mirror each other.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == fork.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace tripriv
