// Tests for SimClock and Deadline: logical-time arithmetic, expiry,
// saturation, and propagation into RetryPolicy::Truncated.

#include "util/clock.h"

#include <gtest/gtest.h>

#include "util/retry.h"

namespace tripriv {
namespace {

TEST(SimClockTest, StartsAtZeroAndOnlyMovesWhenCharged) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.Advance(0);
  EXPECT_EQ(clock.now(), 0u);
  clock.Advance(7);
  clock.Advance(3);
  EXPECT_EQ(clock.now(), 10u);
}

TEST(DeadlineTest, DefaultIsInfinite) {
  SimClock clock;
  Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  clock.Advance(UINT64_MAX / 2);
  EXPECT_FALSE(deadline.expired(clock));
  EXPECT_EQ(deadline.remaining_ticks(clock), Deadline::kInfinite);
}

TEST(DeadlineTest, ExpiresExactlyAtItsTick) {
  SimClock clock;
  Deadline deadline = Deadline::After(clock, 5);
  EXPECT_FALSE(deadline.expired(clock));
  EXPECT_EQ(deadline.remaining_ticks(clock), 5u);
  clock.Advance(4);
  EXPECT_FALSE(deadline.expired(clock));
  EXPECT_EQ(deadline.remaining_ticks(clock), 1u);
  clock.Advance(1);
  EXPECT_TRUE(deadline.expired(clock));
  EXPECT_EQ(deadline.remaining_ticks(clock), 0u);
  clock.Advance(100);
  EXPECT_TRUE(deadline.expired(clock));
  EXPECT_EQ(deadline.remaining_ticks(clock), 0u);
}

TEST(DeadlineTest, ZeroTickDeadlineIsBornExpired) {
  SimClock clock;
  clock.Advance(42);
  Deadline deadline = Deadline::After(clock, 0);
  EXPECT_TRUE(deadline.expired(clock));
}

TEST(DeadlineTest, AfterSaturatesInsteadOfWrapping) {
  SimClock clock;
  clock.Advance(100);
  Deadline deadline = Deadline::After(clock, UINT64_MAX - 10);
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.expired(clock));
}

TEST(DeadlineTest, AtTickPinsAnAbsolutePoint) {
  SimClock clock;
  Deadline deadline = Deadline::AtTick(3);
  EXPECT_EQ(deadline.tick(), 3u);
  clock.Advance(2);
  EXPECT_FALSE(deadline.expired(clock));
  clock.Advance(1);
  EXPECT_TRUE(deadline.expired(clock));
}

TEST(DeadlineTest, PropagatesIntoRetryPolicyViaTruncated) {
  // The intended composition: an enclosing request deadline narrows the
  // nested retry loop's budget instead of letting it widen the request's.
  SimClock clock;
  Deadline deadline = Deadline::After(clock, 20);
  clock.Advance(15);
  RetryPolicy policy;  // deadline_ticks = 512 by default
  RetryPolicy scoped = policy.Truncated(deadline.remaining_ticks(clock));
  EXPECT_EQ(scoped.deadline_ticks, 5u);
}

TEST(DeadlineTest, ErrorHelperIsTyped) {
  Status status = DeadlineExceededError("pir read");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("pir read"), std::string::npos);
}

}  // namespace
}  // namespace tripriv
