// Robustness sweep for the CSV parser and table loader: arbitrary byte
// soup must produce a Status, never a crash, and successful parses must
// round-trip.

#include <string>

#include <gtest/gtest.h>

#include "table/io.h"
#include "util/csv.h"
#include "util/random.h"

namespace tripriv {
namespace {

TEST(CsvFuzzTest, RandomBytesNeverCrashParser) {
  Rng rng(31337);
  for (int trial = 0; trial < 4000; ++trial) {
    const size_t len = rng.UniformU64(80);
    std::string soup;
    for (size_t i = 0; i < len; ++i) {
      // Bias toward CSV-special characters to hit the quote machinery.
      switch (rng.UniformU64(6)) {
        case 0:
          soup += '"';
          break;
        case 1:
          soup += ',';
          break;
        case 2:
          soup += '\n';
          break;
        case 3:
          soup += '\r';
          break;
        default:
          soup += static_cast<char>(32 + rng.UniformU64(95));
      }
    }
    auto parsed = ParseCsv(soup);
    if (parsed.ok()) {
      // Whatever parsed must serialize and re-parse identically.
      auto reparsed = ParseCsv(WriteCsv(*parsed));
      ASSERT_TRUE(reparsed.ok());
      EXPECT_EQ(*reparsed, *parsed);
    }
  }
}

TEST(CsvFuzzTest, RandomBytesNeverCrashInferredLoader) {
  Rng rng(4242);
  for (int trial = 0; trial < 1500; ++trial) {
    const size_t len = rng.UniformU64(60);
    std::string soup;
    for (size_t i = 0; i < len; ++i) {
      switch (rng.UniformU64(8)) {
        case 0:
          soup += ',';
          break;
        case 1:
          soup += '\n';
          break;
        case 2:
          soup += static_cast<char>('0' + rng.UniformU64(10));
          break;
        case 3:
          soup += '.';
          break;
        default:
          soup += static_cast<char>('a' + rng.UniformU64(26));
      }
    }
    IgnoreError(TableFromCsvInferred(soup).status());  // ok() or error, never a crash
  }
}

TEST(CsvFuzzTest, DuplicateHeaderNamesRejectedNotCrashed) {
  // Duplicate headers would violate the Schema invariant (a CHECK / abort);
  // the loader must catch them first and return a clean error. This case
  // is fuzz-reachable, so it was found by the random loader sweep.
  auto r = TableFromCsvInferred("a,a\n1,2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Names that differ only by surrounding whitespace are also duplicates
  // after trimming.
  EXPECT_FALSE(TableFromCsvInferred("a, a\n1,2\n").ok());
}

}  // namespace
}  // namespace tripriv
