#include "util/status.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace tripriv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EveryCodeRoundTripsToUniqueNonNullString) {
  // Regression guard: adding a StatusCode without extending
  // StatusCodeToString would fall through to "Unknown" and collide.
  const StatusCode all[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition,
      StatusCode::kAlreadyExists,
      StatusCode::kUnimplemented,
      StatusCode::kInternal,
      StatusCode::kPermissionDenied,
      StatusCode::kUnavailable,
      StatusCode::kDeadlineExceeded,
      StatusCode::kResourceExhausted,
  };
  std::set<std::string> names;
  for (StatusCode code : all) {
    const char* name = StatusCodeToString(code);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "");
    EXPECT_STRNE(name, "Unknown") << "code " << static_cast<int>(code);
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate name '" << name << "'";
  }
  EXPECT_EQ(names.size(), std::size(all));
}

TEST(StatusTest, TransientCodes) {
  EXPECT_TRUE(IsTransientCode(StatusCode::kUnavailable));
  EXPECT_TRUE(IsTransientCode(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsTransientCode(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsTransientCode(StatusCode::kOk));
  EXPECT_FALSE(IsTransientCode(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsTransientCode(StatusCode::kInternal));
  EXPECT_TRUE(Status::Unavailable("mailbox empty").transient());
  EXPECT_TRUE(Status::DeadlineExceeded("out of ticks").transient());
  EXPECT_TRUE(Status::ResourceExhausted("queue full").transient());
  EXPECT_FALSE(Status::NotFound("x").transient());
  EXPECT_FALSE(Status().transient());
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kPermissionDenied),
               "PermissionDenied");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("no such row"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TRIPRIV_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> bad = Quarter(6);  // 6/2 = 3 is odd
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int x) {
  TRIPRIV_RETURN_IF_ERROR(FailIfNegative(x));
  TRIPRIV_RETURN_IF_ERROR(FailIfNegative(x - 10));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(15).ok());
  EXPECT_EQ(Chain(5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Chain(-1).code(), StatusCode::kOutOfRange);
}

TEST(CheckDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.value(); }, "CHECK failed");
}

TEST(CheckDeathTest, CheckMacroStreamsContext) {
  EXPECT_DEATH({ TRIPRIV_CHECK(1 == 2) << "ctx" << 42; }, "ctx 42");
}

}  // namespace
}  // namespace tripriv
