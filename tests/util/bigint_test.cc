#include "util/bigint.h"

#include <gtest/gtest.h>

namespace tripriv {
namespace {

BigInt FromStr(const std::string& s) {
  auto r = BigInt::FromString(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

TEST(BigIntTest, ZeroBasics) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.IsNegative());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_EQ(z.ToHex(), "0");
  EXPECT_EQ(z, BigInt(0));
}

TEST(BigIntTest, SmallConstruction) {
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-42).ToString(), "-42");
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
  EXPECT_EQ(BigInt::FromU64(UINT64_MAX).ToString(), "18446744073709551615");
}

TEST(BigIntTest, RoundTripToI64) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{123456789},
                    INT64_MAX, INT64_MIN, INT64_MIN + 1}) {
    auto back = BigInt(v).ToI64();
    ASSERT_TRUE(back.has_value()) << v;
    EXPECT_EQ(*back, v);
  }
  // Too large values do not fit.
  BigInt big = BigInt(INT64_MAX) + BigInt(1);
  EXPECT_FALSE(big.ToI64().has_value());
}

TEST(BigIntTest, DecimalStringRoundTrip) {
  const std::string digits =
      "123456789012345678901234567890123456789012345678901234567890";
  EXPECT_EQ(FromStr(digits).ToString(), digits);
  EXPECT_EQ(FromStr("-" + digits).ToString(), "-" + digits);
  EXPECT_EQ(FromStr("000123").ToString(), "123");
  EXPECT_EQ(FromStr("-0").ToString(), "0");
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("12a3").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("1.5").ok());
}

TEST(BigIntTest, HexRoundTrip) {
  EXPECT_EQ(FromStr("255").ToHex(), "ff");
  auto h = BigInt::FromHex("deadbeefcafebabe0123456789");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value().ToHex(), "deadbeefcafebabe0123456789");
  EXPECT_FALSE(BigInt::FromHex("xyz").ok());
}

TEST(BigIntTest, AdditionWithCarryChains) {
  // 2^96 - 1 plus 1 carries across three limbs.
  BigInt v = (BigInt(1) << 96) - BigInt(1);
  EXPECT_EQ((v + BigInt(1)).ToHex(), "1000000000000000000000000");
}

TEST(BigIntTest, SignedArithmetic) {
  EXPECT_EQ((BigInt(10) + BigInt(-4)).ToString(), "6");
  EXPECT_EQ((BigInt(-10) + BigInt(4)).ToString(), "-6");
  EXPECT_EQ((BigInt(-10) + BigInt(-4)).ToString(), "-14");
  EXPECT_EQ((BigInt(4) - BigInt(10)).ToString(), "-6");
  EXPECT_EQ((BigInt(-4) - BigInt(-10)).ToString(), "6");
  EXPECT_EQ((BigInt(3) * BigInt(-7)).ToString(), "-21");
  EXPECT_EQ((BigInt(-3) * BigInt(-7)).ToString(), "21");
}

TEST(BigIntTest, MultiplicationLarge) {
  const BigInt a = FromStr("123456789123456789123456789");
  const BigInt b = FromStr("987654321987654321987654321");
  EXPECT_EQ((a * b).ToString(),
            "121932631356500531591068431581771069347203169112635269");
}

TEST(BigIntTest, DivisionSmallDivisor) {
  const BigInt a = FromStr("1000000000000000000000000007");
  EXPECT_EQ((a / BigInt(7)).ToString(), "142857142857142857142857143");
  EXPECT_EQ((a % BigInt(7)).ToString(), "6");
}

TEST(BigIntTest, DivisionMultiLimb) {
  const BigInt a = FromStr("340282366920938463463374607431768211456");  // 2^128
  const BigInt b = FromStr("18446744073709551629");  // prime > 2^64
  BigInt q;
  BigInt r;
  BigInt::DivMod(a, b, &q, &r);
  EXPECT_EQ(q * b + r, a);
  EXPECT_TRUE(r < b);
  EXPECT_FALSE(r.IsNegative());
}

TEST(BigIntTest, DivisionIdentityRandomized) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    BigInt a = BigInt::Random(1 + rng.UniformU64(192), &rng);
    BigInt b = BigInt::Random(1 + rng.UniformU64(128), &rng);
    if (b.IsZero()) continue;
    BigInt q;
    BigInt r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r.Abs() < b.Abs());
  }
}

TEST(BigIntTest, TruncatedDivisionSigns) {
  // C-style: quotient truncates toward zero, remainder keeps dividend sign.
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToString(), "3");
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToString(), "-3");
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToString(), "-3");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToString(), "-1");
  EXPECT_EQ((BigInt(7) % BigInt(-2)).ToString(), "1");
}

TEST(BigIntTest, ModIsCanonical) {
  EXPECT_EQ(BigInt(-7).Mod(BigInt(5)).ToString(), "3");
  EXPECT_EQ(BigInt(7).Mod(BigInt(5)).ToString(), "2");
  EXPECT_EQ(BigInt(-10).Mod(BigInt(5)).ToString(), "0");
}

TEST(BigIntTest, Shifts) {
  EXPECT_EQ((BigInt(1) << 100).ToHex(), "10000000000000000000000000");
  EXPECT_EQ(((BigInt(1) << 100) >> 100).ToString(), "1");
  EXPECT_EQ((FromStr("12345678901234567890") >> 64).ToString(), "0");
  EXPECT_EQ((BigInt(0xFF) >> 4).ToString(), "15");
}

TEST(BigIntTest, BitOps) {
  BigInt v = FromStr("1025");  // 10000000001b
  EXPECT_EQ(v.BitLength(), 11u);
  EXPECT_TRUE(v.TestBit(0));
  EXPECT_FALSE(v.TestBit(1));
  EXPECT_TRUE(v.TestBit(10));
  EXPECT_FALSE(v.TestBit(11));
  EXPECT_FALSE(v.TestBit(1000));
  EXPECT_TRUE(v.IsOdd());
  EXPECT_TRUE((v + BigInt(1)).IsEven());
}

TEST(BigIntTest, Comparison) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_LT(FromStr("999999999999999999"), FromStr("1000000000000000000"));
  EXPECT_EQ(BigInt(7), BigInt(7));
}

TEST(BigIntTest, ModExpKnownValues) {
  // 2^10 mod 1000 = 24; Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(BigInt::ModExp(BigInt(2), BigInt(10), BigInt(1000)).ToString(), "24");
  const BigInt p = FromStr("1000000007");
  EXPECT_EQ(BigInt::ModExp(BigInt(12345), p - BigInt(1), p), BigInt(1));
  EXPECT_EQ(BigInt::ModExp(BigInt(5), BigInt(0), BigInt(7)), BigInt(1));
  EXPECT_EQ(BigInt::ModExp(BigInt(5), BigInt(3), BigInt(1)), BigInt(0));
}

TEST(BigIntTest, ModExpLarge) {
  const BigInt p = FromStr("170141183460469231731687303715884105727");  // 2^127-1
  const BigInt a = FromStr("123456789123456789");
  EXPECT_EQ(BigInt::ModExp(a, p - BigInt(1), p), BigInt(1));  // Fermat
}

TEST(BigIntTest, ModInverse) {
  auto inv = BigInt::ModInverse(BigInt(3), BigInt(11));
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv.value().ToString(), "4");  // 3*4 = 12 = 1 mod 11
  EXPECT_FALSE(BigInt::ModInverse(BigInt(6), BigInt(9)).ok());  // gcd 3
}

TEST(BigIntTest, ModInverseRandomized) {
  Rng rng(7);
  const BigInt p = FromStr("170141183460469231731687303715884105727");
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::RandomBelow(p - BigInt(1), &rng) + BigInt(1);
    auto inv = BigInt::ModInverse(a, p);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ(BigInt::ModMul(a, inv.value(), p), BigInt(1));
  }
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToString(), "5");
  EXPECT_EQ(BigInt::Lcm(BigInt(4), BigInt(6)).ToString(), "12");
  EXPECT_EQ(BigInt::Lcm(BigInt(0), BigInt(6)).ToString(), "0");
}

TEST(BigIntTest, RandomHasRequestedBits) {
  Rng rng(13);
  for (size_t bits : {1u, 31u, 32u, 33u, 64u, 100u, 256u}) {
    BigInt v = BigInt::Random(bits, &rng);
    EXPECT_LE(v.BitLength(), bits);
  }
}

TEST(BigIntTest, RandomBelowIsBelow) {
  Rng rng(17);
  const BigInt bound = FromStr("98765432109876543210");
  for (int i = 0; i < 100; ++i) {
    BigInt v = BigInt::RandomBelow(bound, &rng);
    EXPECT_TRUE(v < bound);
    EXPECT_FALSE(v.IsNegative());
  }
}

TEST(BigIntTest, PrimalityKnownPrimes) {
  Rng rng(19);
  for (const char* p : {"2", "3", "5", "97", "1000000007",
                        "170141183460469231731687303715884105727"}) {
    EXPECT_TRUE(BigInt::IsProbablePrime(FromStr(p), 20, &rng)) << p;
  }
}

TEST(BigIntTest, PrimalityKnownComposites) {
  Rng rng(23);
  // Includes Carmichael numbers 561 and 41041 which fool the Fermat test.
  for (const char* c : {"0", "1", "4", "100", "561", "41041",
                        "1000000008", "340282366920938463463374607431768211456"}) {
    EXPECT_FALSE(BigInt::IsProbablePrime(FromStr(c), 20, &rng)) << c;
  }
}

TEST(BigIntTest, RandomPrimeHasExactBitLength) {
  Rng rng(29);
  for (size_t bits : {16u, 48u, 96u}) {
    BigInt p = BigInt::RandomPrime(bits, &rng);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(BigInt::IsProbablePrime(p, 30, &rng));
  }
}

TEST(BigIntTest, ModAddSubStayCanonical) {
  const BigInt m(97);
  EXPECT_EQ(BigInt::ModAdd(BigInt(90), BigInt(10), m).ToString(), "3");
  EXPECT_EQ(BigInt::ModSub(BigInt(3), BigInt(10), m).ToString(), "90");
  EXPECT_EQ(BigInt::ModMul(BigInt(50), BigInt(2), m).ToString(), "3");
}

}  // namespace
}  // namespace tripriv
