#include "util/string_util.h"

#include <gtest/gtest.h>

namespace tripriv {
namespace {

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("SeLeCt CoUnT"), "select count");
  EXPECT_EQ(ToLower("123_ab"), "123_ab");
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_TRUE(ParseInt64("  9  ", &v));
  EXPECT_EQ(v, 9);
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("4.25", &v));
  EXPECT_DOUBLE_EQ(v, 4.25);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_TRUE(ParseDouble("7", &v));
  EXPECT_DOUBLE_EQ(v, 7.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("1.5extra", &v));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(146.0), "146");
  EXPECT_EQ(FormatDouble(0.125), "0.125");
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 3), "0.333");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("SELECT COUNT", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

}  // namespace
}  // namespace tripriv
