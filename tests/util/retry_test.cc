// Tests for RetryPolicy backoff arithmetic and transient classification.

#include "util/retry.h"

#include <gtest/gtest.h>

namespace tripriv {
namespace {

TEST(RetryPolicyTest, ExponentialBackoffWithCeiling) {
  RetryPolicy policy;
  policy.initial_backoff_ticks = 2;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ticks = 16;
  EXPECT_EQ(policy.BackoffTicks(0), 2u);
  EXPECT_EQ(policy.BackoffTicks(1), 4u);
  EXPECT_EQ(policy.BackoffTicks(2), 8u);
  EXPECT_EQ(policy.BackoffTicks(3), 16u);
  EXPECT_EQ(policy.BackoffTicks(4), 16u);   // clamped
  EXPECT_EQ(policy.BackoffTicks(60), 16u);  // no overflow at large attempts
}

TEST(RetryPolicyTest, DegenerateParametersStaySane) {
  RetryPolicy policy;
  policy.initial_backoff_ticks = 0;  // silently raised to 1
  policy.backoff_multiplier = 0.5;   // silently raised to 1 (never shrinks)
  policy.max_backoff_ticks = 0;      // silently raised to 1
  EXPECT_EQ(policy.BackoffTicks(0), 1u);
  EXPECT_EQ(policy.BackoffTicks(7), 1u);
}

TEST(RetryPolicyTest, ConstantBackoffWhenMultiplierIsOne) {
  RetryPolicy policy;
  policy.initial_backoff_ticks = 3;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_ticks = 100;
  for (size_t attempt = 0; attempt < 10; ++attempt) {
    EXPECT_EQ(policy.BackoffTicks(attempt), 3u);
  }
}

TEST(RetryPolicyTest, HugeCeilingDoesNotOverflowTheCast) {
  // Regression: with max_backoff_ticks near 2^64 the unclamped value
  // initial * multiplier^attempt overflows double-to-uint64 conversion
  // (undefined behaviour) before the old min() could run. The ceiling must
  // win without ever casting an out-of-range double.
  RetryPolicy policy;
  policy.initial_backoff_ticks = 3;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_ticks = UINT64_MAX;
  EXPECT_EQ(policy.BackoffTicks(0), 3u);
  EXPECT_EQ(policy.BackoffTicks(30), UINT64_MAX);       // 3e31 > 2^64
  EXPECT_EQ(policy.BackoffTicks(100000), UINT64_MAX);   // pow -> inf
}

TEST(RetryPolicyTest, LargeFiniteCeilingIsExact) {
  RetryPolicy policy;
  policy.initial_backoff_ticks = 1;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ticks = (1ull << 62);
  EXPECT_EQ(policy.BackoffTicks(61), 1ull << 61);
  EXPECT_EQ(policy.BackoffTicks(62), 1ull << 62);
  EXPECT_EQ(policy.BackoffTicks(63), 1ull << 62);  // clamped
  EXPECT_EQ(policy.BackoffTicks(4096), 1ull << 62);
}

TEST(RetryPolicyTest, TruncatedCapsOnlyTheDeadline) {
  RetryPolicy policy;
  policy.deadline_ticks = 512;
  RetryPolicy tighter = policy.Truncated(100);
  EXPECT_EQ(tighter.deadline_ticks, 100u);
  EXPECT_EQ(tighter.max_attempts, policy.max_attempts);
  EXPECT_EQ(tighter.max_backoff_ticks, policy.max_backoff_ticks);
  RetryPolicy unchanged = policy.Truncated(10'000);
  EXPECT_EQ(unchanged.deadline_ticks, 512u);  // never widens
}

TEST(RetryPolicyTest, TransientClassification) {
  EXPECT_TRUE(IsTransient(Status::Unavailable("mailbox empty")));
  EXPECT_TRUE(IsTransient(Status::DeadlineExceeded("budget spent")));
  EXPECT_TRUE(IsTransient(Status::ResourceExhausted("load shed")));
  EXPECT_FALSE(IsTransient(Status::OK()));
  EXPECT_FALSE(IsTransient(Status::InvalidArgument("bad")));
  EXPECT_FALSE(IsTransient(Status::Internal("bug")));
  EXPECT_FALSE(IsTransient(Status::FailedPrecondition("state")));
}

TEST(RetryPolicyTest, DefaultsAreUsableForChaosSweeps) {
  // The defaults must tolerate a 20% drop rate: enough attempts that loss
  // of all transmissions is vanishingly rare, and a deadline larger than
  // the worst-case cumulative backoff of one message.
  RetryPolicy policy;
  EXPECT_GE(policy.max_attempts, 4u);
  uint64_t worst_case = 0;
  for (size_t a = 0; a + 1 < policy.max_attempts; ++a) {
    worst_case += policy.BackoffTicks(a);
  }
  EXPECT_GT(policy.deadline_ticks, worst_case);
}

}  // namespace
}  // namespace tripriv
