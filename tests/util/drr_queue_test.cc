// DrrQueue semantics: bounded pushes, weight-proportional service,
// activation-order visits with deficit forfeit on empty, and newest-first
// shedding — the fairness core the traffic scheduler builds on.

#include "util/drr_queue.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace tripriv {
namespace {

TEST(DrrQueueTest, PushRefusesBeyondCapacityAndCountsTheShed) {
  DrrQueue queue({{1, 2}, {1, 2}}, /*quantum=*/1);
  EXPECT_TRUE(queue.Push(0, 10).ok());
  EXPECT_TRUE(queue.Push(0, 11).ok());
  const Status full = queue.Push(0, 12);
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  // The other tenant's bound is untouched by tenant 0's overflow.
  EXPECT_TRUE(queue.Push(1, 20).ok());
  EXPECT_EQ(queue.backlog(), 3u);
  EXPECT_EQ(queue.tenant_backlog(0), 2u);
  EXPECT_EQ(queue.stats().pushed, 3u);
  EXPECT_EQ(queue.stats().shed_full, 1u);
}

TEST(DrrQueueTest, WeightsBuyProportionalThroughput) {
  // Two saturated tenants at weights 2:1 must drain ~2:1.
  DrrQueue queue({{2, 256}, {1, 256}}, /*quantum=*/1);
  for (uint64_t i = 0; i < 240; ++i) {
    ASSERT_TRUE(queue.Push(0, i).ok());
    ASSERT_TRUE(queue.Push(1, 1000 + i).ok());
  }
  size_t popped[2] = {0, 0};
  std::vector<std::pair<uint32_t, uint64_t>> out;
  while (popped[0] + popped[1] < 180) {
    out.clear();
    ASSERT_GT(queue.PollRound(16, /*cost_per_item=*/1, &out), 0u);
    for (const auto& [tenant, item] : out) ++popped[tenant];
  }
  const double ratio =
      static_cast<double>(popped[0]) / static_cast<double>(popped[1]);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.2);
}

TEST(DrrQueueTest, PerTenantOrderIsFifoAndDispatchIsDeterministic) {
  DrrQueue a({{1, 8}, {1, 8}}, /*quantum=*/1);
  DrrQueue b({{1, 8}, {1, 8}}, /*quantum=*/1);
  for (DrrQueue* queue : {&a, &b}) {
    ASSERT_TRUE(queue->Push(1, 100).ok());  // tenant 1 activates first
    ASSERT_TRUE(queue->Push(0, 1).ok());
    ASSERT_TRUE(queue->Push(0, 2).ok());
    ASSERT_TRUE(queue->Push(1, 101).ok());
  }
  std::vector<std::pair<uint32_t, uint64_t>> out_a, out_b;
  while (a.backlog() > 0) a.PollRound(1, 1, &out_a);
  while (b.backlog() > 0) b.PollRound(1, 1, &out_b);
  EXPECT_EQ(out_a, out_b);
  // Activation order: tenant 1 (first backlog) is visited first; each
  // tenant's own items come out FIFO.
  std::vector<uint64_t> tenant0, tenant1;
  for (const auto& [tenant, item] : out_a) {
    (tenant == 0 ? tenant0 : tenant1).push_back(item);
  }
  EXPECT_EQ(tenant0, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(tenant1, (std::vector<uint64_t>{100, 101}));
  EXPECT_EQ(out_a.front().first, 1u);
}

TEST(DrrQueueTest, DrainedTenantForfeitsDeficit) {
  DrrQueue queue({{1, 8}}, /*quantum=*/4);
  ASSERT_TRUE(queue.Push(0, 1).ok());
  std::vector<std::pair<uint32_t, uint64_t>> out;
  // One visit: deficit tops up to 4, one item of cost 1 pops, the queue
  // empties, and the remaining 3 ticks of deficit are forfeited.
  EXPECT_EQ(queue.PollRound(8, 1, &out), 1u);
  EXPECT_EQ(queue.tenant_deficit(0), 0u);
  // An empty queue yields nothing and builds no credit while idle.
  out.clear();
  EXPECT_EQ(queue.PollRound(8, 1, &out), 0u);
  EXPECT_EQ(queue.tenant_deficit(0), 0u);
}

TEST(DrrQueueTest, CostGatesDispatchUntilDeficitAccumulates) {
  // cost 8 vs weight*quantum 3: a tenant needs three visits of top-up
  // before its first dispatch.
  DrrQueue queue({{1, 8}, {1, 8}}, /*quantum=*/3);
  ASSERT_TRUE(queue.Push(0, 1).ok());
  ASSERT_TRUE(queue.Push(1, 2).ok());
  std::vector<std::pair<uint32_t, uint64_t>> out;
  EXPECT_EQ(queue.PollRound(8, /*cost_per_item=*/8, &out), 0u);
  EXPECT_EQ(queue.PollRound(8, /*cost_per_item=*/8, &out), 0u);
  EXPECT_EQ(queue.PollRound(8, /*cost_per_item=*/8, &out), 2u);
}

TEST(DrrQueueTest, ShedNewestPopsFromTheBack) {
  DrrQueue queue({{1, 8}}, /*quantum=*/1);
  for (uint64_t i = 1; i <= 5; ++i) ASSERT_TRUE(queue.Push(0, i).ok());
  std::vector<uint64_t> shed;
  EXPECT_EQ(queue.ShedNewest(0, 2, &shed), 2u);
  // Latest arrivals go first; the long-waiting head keeps its place.
  EXPECT_EQ(shed, (std::vector<uint64_t>{5, 4}));
  EXPECT_EQ(queue.tenant_backlog(0), 3u);
  std::vector<std::pair<uint32_t, uint64_t>> out;
  while (queue.backlog() > 0) queue.PollRound(8, 1, &out);
  EXPECT_EQ(out.front().second, 1u);
}

TEST(DrrQueueTest, ShedToEmptyDeactivatesTheTenant) {
  DrrQueue queue({{1, 8}, {1, 8}}, /*quantum=*/1);
  ASSERT_TRUE(queue.Push(0, 1).ok());
  ASSERT_TRUE(queue.Push(1, 2).ok());
  std::vector<uint64_t> shed;
  EXPECT_EQ(queue.ShedNewest(0, 4, &shed), 1u);
  std::vector<std::pair<uint32_t, uint64_t>> out;
  EXPECT_EQ(queue.PollRound(8, 1, &out), 1u);
  EXPECT_EQ(out.front().first, 1u);
  EXPECT_EQ(queue.backlog(), 0u);
}

}  // namespace
}  // namespace tripriv
