// The bounded-garbage guarantee: ten thousand flips under concurrent
// pinning readers hold peak live epochs to the configured bound (2), free
// every retiree once its pins drain, and keep the durable store's image
// footprint constant — retired snapshots never accumulate.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "service/epoch_service.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

TEST(EpochGcTest, TenThousandFlipsUnderReadersHoldTwoLiveEpochs) {
  MemWalIo wal;
  EpochStore store;
  EpochConfig config;
  config.k = 3;
  config.qi_cols = {0, 1};
  config.max_live_epochs = 2;
  auto db = EpochedDatabase::Create(MakeClinicalTrial(9, 5), config, &wal,
                                    &store);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  constexpr int kFlips = 10000;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};

  // Two readers pin, touch the frozen snapshot, and unpin, as fast as they
  // can — the adversarial workload for the garbage list.
  std::vector<std::thread> readers;
  EpochManager* manager = db->manager();
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([manager, &done, &reads] {
      while (!done.load(std::memory_order_relaxed)) {
        PinnedEpoch pinned = manager->Pin();
        // Touch the snapshot so the pin is real work, not dead code.
        volatile double sink = pinned->protected_table.at(0, 0).ToDouble();
        (void)sink;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 0; i < kFlips; ++i) {
    ASSERT_TRUE(
        db->SubmitMutation(
              RowMutation::Update(i % 9, {160 + (i % 30), 60 + (i % 40),
                                          140 + (i % 20), "N"}))
            .ok());
    auto flipped = db->Flip();
    ASSERT_TRUE(flipped.ok()) << "flip " << i << ": "
                              << flipped.status().ToString();
  }
  done.store(true);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(db->epoch(), 1u + kFlips);
  // THE bound: never more than two epochs in memory; with every pin
  // drained, every one of the 10000 retirees has been freed.
  EXPECT_LE(db->manager()->peak_live_epochs(), 2u);
  EXPECT_EQ(db->manager()->epochs_published(), static_cast<uint64_t>(kFlips));
  EXPECT_EQ(db->manager()->live_epochs(), 1u);
  EXPECT_EQ(db->manager()->epochs_freed(), static_cast<uint64_t>(kFlips));
  // The durable store footprint is bounded too (current + predecessor).
  EXPECT_LE(store.num_images(), 2u);
  EXPECT_GT(reads.load(), 0u);
}

TEST(EpochGcTest, AForgottenPinOnlyDefersFreeingNotForever) {
  MemWalIo wal;
  EpochStore store;
  EpochConfig config;
  config.k = 3;
  config.qi_cols = {0, 1};
  auto db = EpochedDatabase::Create(MakeClinicalTrial(9, 7), config, &wal,
                                    &store);
  ASSERT_TRUE(db.ok());

  PinnedEpoch held = db->Pin();  // epoch 1, held across the flip
  ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(0)).ok());
  ASSERT_TRUE(db->Flip().ok());
  EXPECT_EQ(db->manager()->live_epochs(), 2u);

  // The writer would now block on a third epoch; dropping the pin lets the
  // retiree free and the next flip proceed unblocked.
  held.Release();
  EXPECT_EQ(db->manager()->live_epochs(), 1u);
  ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(1)).ok());
  ASSERT_TRUE(db->Flip().ok());
  EXPECT_LE(db->manager()->peak_live_epochs(), 2u);
}

}  // namespace
}  // namespace tripriv
