#include "table/data_table.h"

#include <gtest/gtest.h>

namespace tripriv {
namespace {

Schema SmallSchema() {
  return Schema({
      {"age", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"income", AttributeType::kReal, AttributeRole::kConfidential},
      {"city", AttributeType::kCategorical, AttributeRole::kQuasiIdentifier},
  });
}

DataTable SmallTable() {
  auto t = DataTable::FromRows(SmallSchema(), {
                                                  {30, 1000.0, "x"},
                                                  {40, 2000.0, "y"},
                                                  {50, 3000.0, "x"},
                                              });
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(DataTableTest, FromRowsBasics) {
  DataTable t = SmallTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.at(1, 0), Value(40));
  EXPECT_EQ(t.at(2, 2), Value("x"));
}

TEST(DataTableTest, AppendValidatesArity) {
  DataTable t(SmallSchema());
  EXPECT_FALSE(t.AppendRow({Value(1)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(1), Value(2.0), Value("z")}).ok());
}

TEST(DataTableTest, AppendValidatesTypes) {
  DataTable t(SmallSchema());
  // Real where integer expected.
  EXPECT_FALSE(t.AppendRow({Value(1.5), Value(2.0), Value("z")}).ok());
  // String where real expected.
  EXPECT_FALSE(t.AppendRow({Value(1), Value("no"), Value("z")}).ok());
  // Integer is acceptable for a real column (numeric coercion).
  EXPECT_TRUE(t.AppendRow({Value(1), Value(2), Value("z")}).ok());
  // Number where categorical expected.
  EXPECT_FALSE(t.AppendRow({Value(1), Value(2.0), Value(3)}).ok());
}

TEST(DataTableTest, NullAllowedEverywhere) {
  DataTable t(SmallSchema());
  EXPECT_TRUE(t.AppendRow({Value::Null(), Value::Null(), Value::Null()}).ok());
}

TEST(DataTableTest, SetValidates) {
  DataTable t = SmallTable();
  EXPECT_TRUE(t.Set(0, 0, Value(99)).ok());
  EXPECT_EQ(t.at(0, 0), Value(99));
  EXPECT_FALSE(t.Set(0, 0, Value("nope")).ok());
}

TEST(DataTableTest, ColumnValues) {
  DataTable t = SmallTable();
  auto col = t.ColumnValues(2);
  EXPECT_EQ(col, (std::vector<Value>{Value("x"), Value("y"), Value("x")}));
}

TEST(DataTableTest, NumericColumn) {
  DataTable t = SmallTable();
  auto ages = t.NumericColumn(size_t{0});
  ASSERT_TRUE(ages.ok());
  EXPECT_EQ(*ages, (std::vector<double>{30, 40, 50}));
  auto by_name = t.NumericColumn("income");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(*by_name, (std::vector<double>{1000, 2000, 3000}));
  EXPECT_FALSE(t.NumericColumn(size_t{2}).ok());   // categorical
  EXPECT_FALSE(t.NumericColumn("missing").ok());
}

TEST(DataTableTest, SetColumnAndSetNumericColumn) {
  DataTable t = SmallTable();
  ASSERT_TRUE(t.SetNumericColumn(1, {1.5, 2.5, 3.5}).ok());
  EXPECT_EQ(t.at(0, 1), Value(1.5));
  // Rounding into an integer column.
  ASSERT_TRUE(t.SetNumericColumn(0, {30.4, 40.6, 50.0}).ok());
  EXPECT_EQ(t.at(0, 0), Value(30));
  EXPECT_EQ(t.at(1, 0), Value(41));
  EXPECT_FALSE(t.SetNumericColumn(0, {1.0}).ok());  // size mismatch
  ASSERT_TRUE(t.SetColumn(2, {Value("a"), Value("b"), Value("c")}).ok());
  EXPECT_EQ(t.at(2, 2), Value("c"));
}

TEST(DataTableTest, Project) {
  DataTable t = SmallTable();
  DataTable p = t.Project({2, 0});
  EXPECT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.schema().attribute(0).name, "city");
  EXPECT_EQ(p.at(1, 1), Value(40));
}

TEST(DataTableTest, SelectRows) {
  DataTable t = SmallTable();
  DataTable s = t.SelectRows({2, 0});
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.at(0, 0), Value(50));
  EXPECT_EQ(s.at(1, 0), Value(30));
}

TEST(DataTableTest, Filter) {
  DataTable t = SmallTable();
  DataTable f = t.Filter(
      [](const std::vector<Value>& row) { return row[0].AsInt() >= 40; });
  EXPECT_EQ(f.num_rows(), 2u);
  EXPECT_EQ(f.at(0, 0), Value(40));
}

TEST(DataTableTest, NumericMatrix) {
  DataTable t = SmallTable();
  auto m = t.NumericMatrix({0, 1});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)[1], (std::vector<double>{40, 2000}));
  EXPECT_FALSE(t.NumericMatrix({2}).ok());
}

TEST(DataTableTest, PrettyStringShowsHeaderAndTruncation) {
  DataTable t = SmallTable();
  std::string s = t.ToPrettyString(2);
  EXPECT_NE(s.find("age"), std::string::npos);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

TEST(DataTableTest, EqualityIsDeep) {
  EXPECT_EQ(SmallTable(), SmallTable());
  DataTable t = SmallTable();
  ASSERT_TRUE(t.Set(0, 0, Value(31)).ok());
  EXPECT_FALSE(t == SmallTable());
}

}  // namespace
}  // namespace tripriv
