#include "table/datasets.h"

#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

namespace tripriv {
namespace {

// Multiplicity of each (height, weight) combination.
std::map<std::pair<int64_t, int64_t>, int> KeyCounts(const DataTable& t) {
  std::map<std::pair<int64_t, int64_t>, int> counts;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    counts[{t.at(r, 0).AsInt(), t.at(r, 1).AsInt()}]++;
  }
  return counts;
}

TEST(PaperDatasetsTest, SchemaRolesMatchPaper) {
  Schema s = PatientSchema();
  EXPECT_EQ(s.QuasiIdentifierIndices(), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(s.ConfidentialIndices(), (std::vector<size_t>{2, 3}));
}

TEST(PaperDatasetsTest, Dataset1Is3Anonymous) {
  DataTable t = PaperDataset1();
  EXPECT_EQ(t.num_rows(), 10u);
  for (const auto& [key, count] : KeyCounts(t)) {
    EXPECT_GE(count, 3) << "(" << key.first << "," << key.second << ")";
  }
}

TEST(PaperDatasetsTest, Dataset1ClassesHaveDiverseConfidentials) {
  // Footnote 3: groups sharing key attributes should not share a single
  // confidential value (2-sensitivity). Check the AIDS attribute.
  DataTable t = PaperDataset1();
  std::map<std::pair<int64_t, int64_t>, std::set<std::string>> aids_by_class;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    aids_by_class[{t.at(r, 0).AsInt(), t.at(r, 1).AsInt()}].insert(
        t.at(r, 3).AsString());
  }
  for (const auto& [key, values] : aids_by_class) {
    EXPECT_GE(values.size(), 2u);
  }
}

TEST(PaperDatasetsTest, Dataset2IsNot3Anonymous) {
  DataTable t = PaperDataset2();
  EXPECT_EQ(t.num_rows(), 10u);
  int unique_combos = 0;
  for (const auto& [key, count] : KeyCounts(t)) {
    if (count < 3) ++unique_combos;
  }
  EXPECT_GT(unique_combos, 0);
}

TEST(PaperDatasetsTest, Dataset2HasTheSection3Respondent) {
  DataTable t = PaperDataset2();
  int matches = 0;
  int64_t bp = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.at(r, 0).AsInt() < 165 && t.at(r, 1).AsInt() > 105) {
      ++matches;
      bp = t.at(r, 2).AsInt();
    }
  }
  EXPECT_EQ(matches, 1);
  EXPECT_EQ(bp, 146);
}

TEST(PaperDatasetsTest, AllPatientsHypertensive) {
  for (const DataTable& t : {PaperDataset1(), PaperDataset2()}) {
    for (size_t r = 0; r < t.num_rows(); ++r) {
      EXPECT_GE(t.at(r, 2).AsInt(), 140);
    }
  }
}

TEST(SyntheticTest, ClinicalTrialDeterministicAndHypertensive) {
  DataTable a = MakeClinicalTrial(200, 42);
  DataTable b = MakeClinicalTrial(200, 42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.num_rows(), 200u);
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_GE(a.at(r, 2).AsInt(), 140);
    const std::string& aids = a.at(r, 3).AsString();
    EXPECT_TRUE(aids == "Y" || aids == "N");
  }
  EXPECT_FALSE(a == MakeClinicalTrial(200, 43));
}

TEST(SyntheticTest, ClinicalTrialHeightWeightCorrelated) {
  DataTable t = MakeClinicalTrial(2000, 7);
  auto h = t.NumericColumn("height").value();
  auto w = t.NumericColumn("weight").value();
  double mh = 0;
  double mw = 0;
  for (size_t i = 0; i < h.size(); ++i) {
    mh += h[i];
    mw += w[i];
  }
  mh /= h.size();
  mw /= w.size();
  double cov = 0;
  double vh = 0;
  double vw = 0;
  for (size_t i = 0; i < h.size(); ++i) {
    cov += (h[i] - mh) * (w[i] - mw);
    vh += (h[i] - mh) * (h[i] - mh);
    vw += (w[i] - mw) * (w[i] - mw);
  }
  const double corr = cov / std::sqrt(vh * vw);
  EXPECT_GT(corr, 0.4);
}

TEST(SyntheticTest, CensusSchemaAndRanges) {
  DataTable t = MakeCensus(500, 1);
  EXPECT_EQ(t.num_rows(), 500u);
  EXPECT_EQ(t.schema().QuasiIdentifierIndices().size(), 4u);
  EXPECT_EQ(t.schema().ConfidentialIndices().size(), 2u);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const int64_t age = t.at(r, 0).AsInt();
    EXPECT_GE(age, 18);
    EXPECT_LE(age, 90);
    const int64_t edu = t.at(r, 3).AsInt();
    EXPECT_GE(edu, 1);
    EXPECT_LE(edu, 16);
    EXPECT_GT(t.at(r, 4).ToDouble(), 0.0);
  }
  EXPECT_EQ(t, MakeCensus(500, 1));
}

TEST(SyntheticTest, HighDimBinaryShape) {
  DataTable t = MakeHighDimBinary(300, 8, 3);
  EXPECT_EQ(t.num_rows(), 300u);
  EXPECT_EQ(t.num_columns(), 8u);
  EXPECT_EQ(t.schema().QuasiIdentifierIndices().size(), 7u);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      const int64_t v = t.at(r, c).AsInt();
      EXPECT_TRUE(v == 0 || v == 1);
    }
  }
}

TEST(SyntheticTest, HighDimSparsityGrowsWithDimension) {
  // More attributes => more unique QI combinations (the [11] regime).
  auto unique_fraction = [](const DataTable& t) {
    std::set<std::vector<Value>> combos;
    std::map<std::vector<Value>, int> counts;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      std::vector<Value> key;
      for (size_t c = 0; c + 1 < t.num_columns(); ++c) key.push_back(t.at(r, c));
      counts[key]++;
    }
    int unique = 0;
    for (const auto& [k, n] : counts) {
      if (n == 1) ++unique;
    }
    return static_cast<double>(unique) / static_cast<double>(t.num_rows());
  };
  const double low = unique_fraction(MakeHighDimBinary(500, 3, 11));
  const double high = unique_fraction(MakeHighDimBinary(500, 14, 11));
  EXPECT_LT(low, high);
  EXPECT_GT(high, 0.3);
}

TEST(SyntheticTest, ClassificationLabelsFollowFunctions) {
  for (int f = 1; f <= 3; ++f) {
    DataTable t = MakeClassification(300, f, 5);
    EXPECT_EQ(t.num_rows(), 300u);
    size_t a_count = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      const std::string& g = t.at(r, 4).AsString();
      EXPECT_TRUE(g == "A" || g == "B");
      if (g == "A") ++a_count;
    }
    // Both classes are represented.
    EXPECT_GT(a_count, 0u);
    EXPECT_LT(a_count, t.num_rows());
  }
}

TEST(SyntheticTest, ClassificationFunction1Definition) {
  DataTable t = MakeClassification(500, 1, 9);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const double age = t.at(r, 0).AsReal();
    const bool expect_a = age < 40.0 || age >= 60.0;
    EXPECT_EQ(t.at(r, 4).AsString(), expect_a ? "A" : "B");
  }
}

}  // namespace
}  // namespace tripriv
