#include "table/value.h"

#include <gtest/gtest.h>

namespace tripriv {
namespace {

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_numeric());
  EXPECT_EQ(v, Value::Null());
  EXPECT_EQ(v.ToDisplayString(), "");
}

TEST(ValueTest, IntBasics) {
  Value v(42);
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_numeric());
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_DOUBLE_EQ(v.ToDouble(), 42.0);
  EXPECT_EQ(v.ToDisplayString(), "42");
}

TEST(ValueTest, RealBasics) {
  Value v(3.5);
  EXPECT_TRUE(v.is_real());
  EXPECT_DOUBLE_EQ(v.AsReal(), 3.5);
  EXPECT_DOUBLE_EQ(v.ToDouble(), 3.5);
  EXPECT_EQ(v.ToDisplayString(), "3.5");
}

TEST(ValueTest, StringBasics) {
  Value v("hello");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "hello");
  EXPECT_EQ(v.ToDisplayString(), "hello");
}

TEST(ValueTest, IntAndRealAreDistinctTypes) {
  EXPECT_NE(Value(1), Value(1.0));
  EXPECT_EQ(Value(1), Value(int64_t{1}));
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_NE(Value("1"), Value(1));
  EXPECT_NE(Value::Null(), Value(0));
}

TEST(ValueTest, OrderingNullNumericString) {
  EXPECT_LT(Value::Null(), Value(-100));
  EXPECT_LT(Value(5), Value("a"));
  EXPECT_LT(Value(2), Value(10));
  EXPECT_LT(Value(2.5), Value(3));
  EXPECT_LT(Value("apple"), Value("banana"));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, OrderingIsStrictWeak) {
  // Numerically equal but differently typed values order consistently.
  Value i(1);
  Value r(1.0);
  EXPECT_TRUE(i < r || r < i);
  EXPECT_FALSE(i < r && r < i);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(7).Hash(), Value(7).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(ValueDeathTest, WrongAccessorAborts) {
  EXPECT_DEATH({ (void)Value("s").AsInt(); }, "CHECK failed");
  EXPECT_DEATH({ (void)Value(1).AsReal(); }, "CHECK failed");
  EXPECT_DEATH({ (void)Value(1.0).AsString(); }, "CHECK failed");
  EXPECT_DEATH({ (void)Value("s").ToDouble(); }, "CHECK failed");
}

}  // namespace
}  // namespace tripriv
