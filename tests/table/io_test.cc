#include "table/io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "table/datasets.h"

namespace tripriv {
namespace {

TEST(TableIoTest, CsvRoundTripPaperDataset) {
  DataTable t = PaperDataset1();
  std::string csv = TableToCsv(t);
  auto back = TableFromCsv(t.schema(), csv);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, t);
}

TEST(TableIoTest, ParsesTypedCells) {
  Schema s({
      {"i", AttributeType::kInteger, AttributeRole::kNonConfidential},
      {"r", AttributeType::kReal, AttributeRole::kNonConfidential},
      {"c", AttributeType::kCategorical, AttributeRole::kNonConfidential},
  });
  auto t = TableFromCsv(s, "i,r,c\n1,2.5,hello\n-7,1e3,\"a,b\"\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->at(0, 0), Value(1));
  EXPECT_EQ(t->at(0, 1), Value(2.5));
  EXPECT_EQ(t->at(1, 1), Value(1000.0));
  EXPECT_EQ(t->at(1, 2), Value("a,b"));
}

TEST(TableIoTest, EmptyCellsBecomeNull) {
  Schema s({
      {"i", AttributeType::kInteger, AttributeRole::kNonConfidential},
      {"c", AttributeType::kCategorical, AttributeRole::kNonConfidential},
  });
  auto t = TableFromCsv(s, "i,c\n,\n5,x\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->at(0, 0).is_null());
  EXPECT_TRUE(t->at(0, 1).is_null());
  EXPECT_EQ(t->at(1, 0), Value(5));
}

TEST(TableIoTest, HeaderMismatchFails) {
  Schema s({{"a", AttributeType::kInteger, AttributeRole::kNonConfidential}});
  EXPECT_FALSE(TableFromCsv(s, "b\n1\n").ok());
  EXPECT_FALSE(TableFromCsv(s, "a,b\n1,2\n").ok());
  EXPECT_FALSE(TableFromCsv(s, "").ok());
}

TEST(TableIoTest, BadCellFails) {
  Schema s({{"a", AttributeType::kInteger, AttributeRole::kNonConfidential}});
  EXPECT_FALSE(TableFromCsv(s, "a\nxyz\n").ok());
  EXPECT_FALSE(TableFromCsv(s, "a\n1.5\n").ok());
}

TEST(TableIoTest, RaggedRowFails) {
  Schema s({
      {"a", AttributeType::kInteger, AttributeRole::kNonConfidential},
      {"b", AttributeType::kInteger, AttributeRole::kNonConfidential},
  });
  EXPECT_FALSE(TableFromCsv(s, "a,b\n1\n").ok());
}

TEST(TableIoTest, InferenceDetectsTypes) {
  auto t = TableFromCsvInferred("n,score,tag\n1,1.5,x\n2,2,y\n3,-0.25,z\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->schema().attribute(0).type, AttributeType::kInteger);
  EXPECT_EQ(t->schema().attribute(1).type, AttributeType::kReal);
  EXPECT_EQ(t->schema().attribute(2).type, AttributeType::kCategorical);
}

TEST(TableIoTest, InferenceAllEmptyColumnIsCategorical) {
  auto t = TableFromCsvInferred("a,b\n1,\n2,\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().attribute(1).type, AttributeType::kCategorical);
}

TEST(TableIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tripriv_io_test.csv";
  DataTable t = PaperDataset2();
  ASSERT_TRUE(WriteFile(path, TableToCsv(t)).ok());
  auto content = ReadFile(path);
  ASSERT_TRUE(content.ok());
  auto back = TableFromCsv(t.schema(), *content);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
  std::remove(path.c_str());
}

TEST(TableIoTest, ReadMissingFileFails) {
  auto r = ReadFile("/nonexistent/path/xyz.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tripriv
