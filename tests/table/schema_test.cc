#include "table/schema.h"

#include <gtest/gtest.h>

namespace tripriv {
namespace {

Schema TestSchema() {
  return Schema({
      {"name", AttributeType::kCategorical, AttributeRole::kIdentifier},
      {"height", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"weight", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"bp", AttributeType::kReal, AttributeRole::kConfidential},
      {"note", AttributeType::kCategorical, AttributeRole::kNonConfidential},
  });
}

TEST(SchemaTest, SizeAndAccess) {
  Schema s = TestSchema();
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.attribute(1).name, "height");
  EXPECT_EQ(s.attribute(1).type, AttributeType::kInteger);
  EXPECT_EQ(s.attribute(3).role, AttributeRole::kConfidential);
}

TEST(SchemaTest, FindIndex) {
  Schema s = TestSchema();
  EXPECT_EQ(s.FindIndex("weight"), 2u);
  EXPECT_FALSE(s.FindIndex("missing").has_value());
}

TEST(SchemaTest, IndexOfStatus) {
  Schema s = TestSchema();
  auto ok = s.IndexOf("bp");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 3u);
  auto bad = s.IndexOf("zzz");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, RoleQueries) {
  Schema s = TestSchema();
  EXPECT_EQ(s.QuasiIdentifierIndices(), (std::vector<size_t>{1, 2}));
  EXPECT_EQ(s.ConfidentialIndices(), (std::vector<size_t>{3}));
  EXPECT_EQ(s.IndicesWithRole(AttributeRole::kIdentifier),
            (std::vector<size_t>{0}));
}

TEST(SchemaTest, Project) {
  Schema s = TestSchema();
  Schema p = s.Project({1, 3});
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.attribute(0).name, "height");
  EXPECT_EQ(p.attribute(1).name, "bp");
}

TEST(SchemaTest, EnumNames) {
  EXPECT_STREQ(AttributeTypeToString(AttributeType::kInteger), "integer");
  EXPECT_STREQ(AttributeTypeToString(AttributeType::kReal), "real");
  EXPECT_STREQ(AttributeTypeToString(AttributeType::kCategorical), "categorical");
  EXPECT_STREQ(AttributeRoleToString(AttributeRole::kQuasiIdentifier),
               "quasi-identifier");
  EXPECT_STREQ(AttributeRoleToString(AttributeRole::kConfidential),
               "confidential");
}

TEST(SchemaDeathTest, DuplicateNamesAbort) {
  EXPECT_DEATH(
      {
        Schema s({{"a", AttributeType::kReal, AttributeRole::kNonConfidential},
                  {"a", AttributeType::kReal, AttributeRole::kNonConfidential}});
      },
      "duplicate attribute name");
}

}  // namespace
}  // namespace tripriv
