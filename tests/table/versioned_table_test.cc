// Tests for the mutation primitives and the epoch machinery: uid-stable
// batch application, transactional failure, fingerprint/checksum
// determinism, pin/publish/sweep lifecycle, the blocking live-epoch bound,
// and the epoch store's staged/durable crash semantics.

#include "table/versioned_table.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "table/mutation.h"

namespace tripriv {
namespace {

Schema TwoColumnSchema() {
  return Schema({
      {"x", AttributeType::kReal, AttributeRole::kQuasiIdentifier},
      {"y", AttributeType::kReal, AttributeRole::kQuasiIdentifier},
  });
}

DataTable SmallTable() {
  auto t = DataTable::FromRows(TwoColumnSchema(), {
                                                      {1.0, 10.0},
                                                      {2.0, 20.0},
                                                      {3.0, 30.0},
                                                      {4.0, 40.0},
                                                  });
  TRIPRIV_CHECK(t.ok());
  return std::move(t).value();
}

struct Image {
  DataTable base = SmallTable();
  std::vector<uint64_t> uids = {0, 1, 2, 3};
  uint64_t next_uid = 4;
};

TEST(MutationTest, InsertAssignsFreshUids) {
  Image img;
  auto applied = ApplyMutations({RowMutation::Insert({5.0, 50.0}),
                                 RowMutation::Insert({6.0, 60.0})},
                                &img.base, &img.uids, &img.next_uid);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->inserts, 2u);
  ASSERT_EQ(img.base.num_rows(), 6u);
  EXPECT_EQ(img.uids, (std::vector<uint64_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(img.next_uid, 6u);
  EXPECT_EQ(applied->dirty_uids, (std::vector<uint64_t>{4, 5}));
}

TEST(MutationTest, DeleteCompactsRowsButUidsSurvive) {
  Image img;
  auto applied = ApplyMutations({RowMutation::Delete(1)}, &img.base,
                                &img.uids, &img.next_uid);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied->deletes, 1u);
  ASSERT_EQ(img.base.num_rows(), 3u);
  // Positions compact; the surviving rows keep their stable uids.
  EXPECT_EQ(img.uids, (std::vector<uint64_t>{0, 2, 3}));
  EXPECT_DOUBLE_EQ(img.base.at(1, 0).ToDouble(), 3.0);
  // The deleted uid is dirty: its old group lost a member.
  EXPECT_EQ(applied->dirty_uids, (std::vector<uint64_t>{1}));
}

TEST(MutationTest, UpdateRewritesInPlace) {
  Image img;
  auto applied = ApplyMutations({RowMutation::Update(2, {99.0, 990.0})},
                                &img.base, &img.uids, &img.next_uid);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied->updates, 1u);
  EXPECT_DOUBLE_EQ(img.base.at(2, 0).ToDouble(), 99.0);
  EXPECT_EQ(img.uids, (std::vector<uint64_t>{0, 1, 2, 3}));
}

TEST(MutationTest, UnknownUidFailsTheWholeBatch) {
  Image img;
  auto applied = ApplyMutations(
      {RowMutation::Insert({5.0, 50.0}), RowMutation::Delete(77)}, &img.base,
      &img.uids, &img.next_uid);
  EXPECT_EQ(applied.status().code(), StatusCode::kNotFound);
}

TEST(MutationTest, InvalidPayloadFailsTheWholeBatch) {
  Image wrong_arity;
  EXPECT_FALSE(ApplyMutations({RowMutation::Insert({5.0})}, &wrong_arity.base,
                              &wrong_arity.uids, &wrong_arity.next_uid)
                   .ok());
  Image wrong_type;
  EXPECT_FALSE(ApplyMutations({RowMutation::Update(0, {Value("text"), 1.0})},
                              &wrong_type.base, &wrong_type.uids,
                              &wrong_type.next_uid)
                   .ok());
}

TEST(MutationTest, BatchFingerprintIsOrderSensitive) {
  const std::vector<RowMutation> ab = {RowMutation::Delete(1),
                                       RowMutation::Delete(2)};
  const std::vector<RowMutation> ba = {RowMutation::Delete(2),
                                       RowMutation::Delete(1)};
  EXPECT_EQ(MutationBatchFingerprint(ab), MutationBatchFingerprint(ab));
  EXPECT_NE(MutationBatchFingerprint(ab), MutationBatchFingerprint(ba));
  EXPECT_NE(MutationBatchFingerprint(ab), MutationBatchFingerprint({}));
}

TEST(MutationTest, TableChecksumSeesEveryCell) {
  const DataTable a = SmallTable();
  DataTable b = SmallTable();
  EXPECT_EQ(TableChecksum(a), TableChecksum(b));
  ASSERT_TRUE(b.Set(3, 1, Value(40.0000001)).ok());
  EXPECT_NE(TableChecksum(a), TableChecksum(b));
}

std::shared_ptr<const EpochData> MakeEpoch(uint64_t number) {
  auto e = std::make_shared<EpochData>();
  e->epoch = number;
  return e;
}

TEST(EpochManagerTest, PinFreezesTheEpochAcrossAPublish) {
  EpochManager manager(2);
  manager.Bootstrap(MakeEpoch(1));
  EXPECT_EQ(manager.current_epoch(), 1u);

  PinnedEpoch pin = manager.Pin();
  manager.Publish(MakeEpoch(2));
  EXPECT_EQ(manager.current_epoch(), 2u);
  // The reader still sees its pinned snapshot; both epochs are live.
  EXPECT_EQ(pin->epoch, 1u);
  EXPECT_EQ(manager.live_epochs(), 2u);

  pin.Release();
  EXPECT_EQ(manager.live_epochs(), 1u);
  EXPECT_EQ(manager.epochs_freed(), 1u);
}

TEST(EpochManagerTest, UnpinnedRetireeIsFreedImmediately) {
  EpochManager manager(2);
  manager.Bootstrap(MakeEpoch(1));
  manager.Publish(MakeEpoch(2));
  EXPECT_EQ(manager.live_epochs(), 1u);
  EXPECT_EQ(manager.epochs_freed(), 1u);
  // The retiree was freed inside the publish itself: the settled peak
  // never even saw two resident epochs.
  EXPECT_EQ(manager.peak_live_epochs(), 1u);
}

TEST(EpochManagerTest, PublishBlocksUntilTheLiveBoundHolds) {
  EpochManager manager(2);
  manager.Bootstrap(MakeEpoch(1));
  PinnedEpoch pin = manager.Pin();
  manager.Publish(MakeEpoch(2));  // live = 2: at the bound, does not block

  // A third epoch would exceed the bound while epoch 1 is pinned; Publish
  // must block until the pin drains.
  std::thread releaser([&pin] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pin.Release();
  });
  manager.Publish(MakeEpoch(3));
  releaser.join();
  EXPECT_EQ(manager.current_epoch(), 3u);
  EXPECT_LE(manager.live_epochs(), 2u);
  EXPECT_LE(manager.peak_live_epochs(), 2u);
}

TEST(EpochManagerTest, RetireesFreeInOrderAsPinsDrain) {
  EpochManager manager(3);
  manager.Bootstrap(MakeEpoch(1));
  PinnedEpoch pin1 = manager.Pin();
  manager.Publish(MakeEpoch(2));
  PinnedEpoch pin2 = manager.Pin();
  manager.Publish(MakeEpoch(3));
  EXPECT_EQ(manager.live_epochs(), 3u);

  // Epoch 2's pin drains first, but epoch 1 is older and still pinned: the
  // sweep stops at the first pinned retiree (frees strictly in order).
  pin2.Release();
  EXPECT_EQ(manager.live_epochs(), 3u);
  pin1.Release();
  EXPECT_EQ(manager.live_epochs(), 1u);
  EXPECT_EQ(manager.epochs_freed(), 2u);
}

TEST(EpochStoreTest, StagedImagesDieWithACrashDurableOnesSurvive) {
  EpochStore store;
  store.Put(MakeEpoch(1));
  ASSERT_TRUE(store.Sync().ok());
  store.Put(MakeEpoch(2));  // staged only

  EXPECT_EQ(store.num_images(), 2u);
  store.SimulateCrash();
  EXPECT_EQ(store.num_images(), 1u);
  EXPECT_NE(store.Get(1), nullptr);
  EXPECT_EQ(store.Get(2), nullptr);
}

TEST(EpochStoreTest, FailedSyncLeavesTheImageVolatile) {
  EpochStore store;
  store.set_fail_syncs(true);
  store.Put(MakeEpoch(1));
  EXPECT_FALSE(store.Sync().ok());
  EXPECT_NE(store.Get(1), nullptr);  // still visible while the process lives
  store.SimulateCrash();
  EXPECT_EQ(store.Get(1), nullptr);  // ...but it was never durable

  store.set_fail_syncs(false);
  store.Put(MakeEpoch(1));
  ASSERT_TRUE(store.Sync().ok());
  store.SimulateCrash();
  EXPECT_NE(store.Get(1), nullptr);
}

TEST(EpochStoreTest, EraseIsIdempotentAndEpochsAreSorted) {
  EpochStore store;
  store.Put(MakeEpoch(3));
  store.Put(MakeEpoch(1));
  ASSERT_TRUE(store.Sync().ok());
  EXPECT_EQ(store.Epochs(), (std::vector<uint64_t>{1, 3}));
  store.Erase(3);
  store.Erase(3);
  EXPECT_EQ(store.Epochs(), (std::vector<uint64_t>{1}));
}

}  // namespace
}  // namespace tripriv
