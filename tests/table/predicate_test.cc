#include "table/predicate.h"

#include <gtest/gtest.h>

#include "table/datasets.h"

namespace tripriv {
namespace {

TEST(PredicateTest, TrueMatchesAll) {
  DataTable t = PaperDataset2();
  auto rows = Predicate::True().MatchingRows(t);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), t.num_rows());
}

TEST(PredicateTest, PaperSection3Predicate) {
  // height < 165 AND weight > 105 isolates exactly one record of Dataset 2.
  DataTable t = PaperDataset2();
  Predicate p = Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(165)),
      Predicate::Compare("weight", CompareOp::kGt, Value(105)));
  auto rows = p.MatchingRows(t);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  // ... whose blood pressure is 146.
  const size_t bp_col = *t.schema().FindIndex("blood_pressure");
  EXPECT_EQ(t.at((*rows)[0], bp_col), Value(146));
}

TEST(PredicateTest, AllComparisonOps) {
  DataTable t = PaperDataset1();
  auto count = [&](Predicate p) {
    auto rows = p.MatchingRows(t);
    EXPECT_TRUE(rows.ok());
    return rows->size();
  };
  EXPECT_EQ(count(Predicate::Compare("height", CompareOp::kEq, Value(160))), 4u);
  EXPECT_EQ(count(Predicate::Compare("height", CompareOp::kNe, Value(160))), 6u);
  EXPECT_EQ(count(Predicate::Compare("height", CompareOp::kLt, Value(170))), 4u);
  EXPECT_EQ(count(Predicate::Compare("height", CompareOp::kLe, Value(170))), 7u);
  EXPECT_EQ(count(Predicate::Compare("height", CompareOp::kGt, Value(170))), 3u);
  EXPECT_EQ(count(Predicate::Compare("height", CompareOp::kGe, Value(170))), 6u);
}

TEST(PredicateTest, StringComparisons) {
  DataTable t = PaperDataset1();
  Predicate y = Predicate::Compare("aids", CompareOp::kEq, Value("Y"));
  auto rows = y.MatchingRows(t);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // Y N N N Y N N Y N N
}

TEST(PredicateTest, OrAndNot) {
  DataTable t = PaperDataset1();
  Predicate tall_or_short = Predicate::Or(
      Predicate::Compare("height", CompareOp::kGe, Value(180)),
      Predicate::Compare("height", CompareOp::kLe, Value(160)));
  auto rows = tall_or_short.MatchingRows(t);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 7u);

  auto middle = Predicate::Not(tall_or_short).MatchingRows(t);
  ASSERT_TRUE(middle.ok());
  EXPECT_EQ(middle->size(), 3u);
}

TEST(PredicateTest, TypeMismatchIsError) {
  DataTable t = PaperDataset1();
  Predicate p = Predicate::Compare("aids", CompareOp::kLt, Value(10));
  EXPECT_FALSE(p.MatchingRows(t).ok());
}

TEST(PredicateTest, UnknownAttributeIsError) {
  DataTable t = PaperDataset1();
  Predicate p = Predicate::Compare("shoe_size", CompareOp::kEq, Value(42));
  auto r = p.MatchingRows(t);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(PredicateTest, NullCellsMatchOnlyNe) {
  Schema s({{"x", AttributeType::kInteger, AttributeRole::kNonConfidential}});
  auto t = DataTable::FromRows(s, {{Value::Null()}, {5}});
  ASSERT_TRUE(t.ok());
  auto eq = Predicate::Compare("x", CompareOp::kEq, Value(5)).MatchingRows(*t);
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->size(), 1u);
  auto ne = Predicate::Compare("x", CompareOp::kNe, Value(7)).MatchingRows(*t);
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->size(), 2u);  // null counts as "not equal"
  auto lt = Predicate::Compare("x", CompareOp::kLt, Value(100)).MatchingRows(*t);
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(lt->size(), 1u);
}

TEST(PredicateTest, ReferencedAttributes) {
  Predicate p = Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(165)),
      Predicate::Not(Predicate::Compare("weight", CompareOp::kGt, Value(105))));
  EXPECT_EQ(p.ReferencedAttributes(),
            (std::vector<std::string>{"height", "weight"}));
  EXPECT_TRUE(Predicate::True().ReferencedAttributes().empty());
}

TEST(PredicateTest, ToStringRendersSqlish) {
  Predicate p = Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(165)),
      Predicate::Compare("aids", CompareOp::kEq, Value("Y")));
  EXPECT_EQ(p.ToString(), "(height < 165 AND aids = 'Y')");
  EXPECT_EQ(Predicate::True().ToString(), "TRUE");
}

TEST(PredicateTest, ShortCircuitDoesNotMaskErrors) {
  // AND short-circuits on false LHS, so an invalid RHS never evaluates.
  DataTable t = PaperDataset1();
  Predicate p = Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(0)),
      Predicate::Compare("missing", CompareOp::kEq, Value(1)));
  auto rows = p.MatchingRows(t);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

}  // namespace
}  // namespace tripriv
