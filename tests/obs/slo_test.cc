// SloGate semantics: conservative bucket-upper-bound quantiles, fail-closed
// evaluation on missing series, vacuous passes on idle classes, and the
// deterministic report rendering CI archives.

#include "obs/slo.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace tripriv {
namespace {

using obs::HistogramData;
using obs::MetricKind;
using obs::MetricSample;
using obs::MetricsSnapshot;
using obs::SloGate;
using obs::SloReport;
using obs::SloTarget;

HistogramData MakeHistogram(std::vector<uint64_t> bounds,
                            std::vector<uint64_t> counts) {
  HistogramData histogram;
  histogram.bounds = std::move(bounds);
  histogram.counts = std::move(counts);
  for (uint64_t c : histogram.counts) histogram.count += c;
  return histogram;
}

MetricSample LatencySample(const std::string& cls, HistogramData histogram) {
  MetricSample sample;
  sample.name = "tripriv_traffic_latency_ticks";
  sample.kind = MetricKind::kHistogram;
  sample.labels = {{"class", cls}};
  sample.histogram = std::move(histogram);
  return sample;
}

TEST(SloGateTest, QuantileResolvesToTheCoveringBucketUpperBound) {
  // bounds {1,2,4,8}: 10 obs <=1, 70 in (1,2], 15 in (2,4], 5 in (4,8].
  const HistogramData h = MakeHistogram({1, 2, 4, 8}, {10, 70, 15, 5, 0});
  EXPECT_EQ(SloGate::QuantileUpperBound(h, 0.10), 1u);
  EXPECT_EQ(SloGate::QuantileUpperBound(h, 0.11), 2u);
  EXPECT_EQ(SloGate::QuantileUpperBound(h, 0.50), 2u);
  EXPECT_EQ(SloGate::QuantileUpperBound(h, 0.80), 2u);
  EXPECT_EQ(SloGate::QuantileUpperBound(h, 0.95), 4u);
  EXPECT_EQ(SloGate::QuantileUpperBound(h, 0.99), 8u);
  EXPECT_EQ(SloGate::QuantileUpperBound(h, 1.0), 8u);
}

TEST(SloGateTest, QuantileInTheInfBucketIsMax) {
  const HistogramData h = MakeHistogram({1, 2}, {1, 0, 3});
  EXPECT_EQ(SloGate::QuantileUpperBound(h, 0.99), UINT64_MAX);
  // And an empty histogram reports zero.
  const HistogramData empty = MakeHistogram({1, 2}, {0, 0, 0});
  EXPECT_EQ(SloGate::QuantileUpperBound(empty, 0.5), 0u);
}

TEST(SloGateTest, EvaluateFailsClosedWhenTheSeriesIsMissing) {
  MetricsSnapshot snapshot;
  snapshot.samples.push_back(
      LatencySample("interactive", MakeHistogram({1}, {1, 0})));
  SloGate gate;
  // "batch" was never wired: the gate must error, not pass silently.
  auto report = gate.Evaluate(snapshot, {{"batch", 100, 1000}});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SloGateTest, ZeroObservationsPassVacuously) {
  MetricsSnapshot snapshot;
  snapshot.samples.push_back(
      LatencySample("analytics", MakeHistogram({1, 2}, {0, 0, 0})));
  SloGate gate;
  auto report = gate.Evaluate(snapshot, {{"analytics", 1, 1}});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok);
  EXPECT_TRUE(report->classes[0].pass);
  EXPECT_EQ(report->classes[0].count, 0u);
}

TEST(SloGateTest, VerdictsGateOnBothQuantiles) {
  MetricsSnapshot snapshot;
  // p50 = 2, p99 = 8.
  snapshot.samples.push_back(
      LatencySample("interactive", MakeHistogram({1, 2, 4, 8}, {0, 60, 30, 10, 0})));
  SloGate gate;
  auto pass = gate.Evaluate(snapshot, {{"interactive", 2, 8}});
  ASSERT_TRUE(pass.ok());
  EXPECT_TRUE(pass->ok);
  auto p50_fail = gate.Evaluate(snapshot, {{"interactive", 1, 8}});
  ASSERT_TRUE(p50_fail.ok());
  EXPECT_FALSE(p50_fail->ok);
  auto p99_fail = gate.Evaluate(snapshot, {{"interactive", 2, 4}});
  ASSERT_TRUE(p99_fail.ok());
  EXPECT_FALSE(p99_fail->ok);
}

TEST(SloGateTest, RenderReportsClassesAndVerdict) {
  MetricsSnapshot snapshot;
  snapshot.samples.push_back(
      LatencySample("interactive", MakeHistogram({1, 2}, {5, 5, 0})));
  snapshot.samples.push_back(
      LatencySample("abusive", MakeHistogram({1, 2}, {0, 0, 10})));
  SloGate gate;
  auto report =
      gate.Evaluate(snapshot, {{"interactive", 2, 2}, {"abusive", 1, 1}});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok);  // abusive p99 is +inf
  const std::string rendered = RenderSloReport(*report);
  EXPECT_NE(rendered.find("interactive"), std::string::npos);
  EXPECT_NE(rendered.find("abusive"), std::string::npos);
  EXPECT_NE(rendered.find("VIOLATED"), std::string::npos);
  EXPECT_NE(rendered.find("slo gate: FAIL"), std::string::npos);
  // Rendering is deterministic byte-for-byte.
  EXPECT_EQ(rendered, RenderSloReport(*report));
}

}  // namespace
}  // namespace tripriv
