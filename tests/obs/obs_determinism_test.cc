// Observability determinism (`ctest -L obs` + `-L parallel`): the exported
// snapshot of a fully instrumented serving run — Prometheus text, JSON, and
// the trace export — must be BYTE-identical at 0, 1, 2, and 8 worker
// threads. Instruments ride the same execution discipline as the WAL
// (pushes happen only on the serial serving path, parallel code writes only
// per-shard slots merged in shard order), so the thread count must be
// invisible in every exported byte.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/budget.h"
#include "obs/export.h"
#include "obs/instruments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "querydb/query.h"
#include "service/batch_executor.h"
#include "service/pir_failover.h"
#include "service/query_service.h"
#include "table/datasets.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

const size_t kThreadCounts[] = {0, 1, 2, 8};

StatQuery Parse(const std::string& sql) {
  auto query = ParseQuery(sql);
  TRIPRIV_CHECK(query.ok()) << sql;
  return std::move(query).value();
}

struct Exports {
  std::string prometheus;
  std::string json;
  std::string trace;
};

/// One full instrumented run: a faulty statistical batch (protected, DP,
/// and refused answers; WAL appends; epsilon spends), a PIR batch through
/// a failover client with one corrupting server, then a publish step.
Exports RunWorkload(size_t threads) {
  const std::vector<StatQuery> batch = {
      Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 172"),
      Parse("SELECT COUNT(*) FROM t WHERE weight > 80"),
      Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 171"),
      Parse("SELECT AVG(weight) FROM t WHERE height >= 160"),
      Parse("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105"),
      Parse("SELECT SUM(weight) FROM t WHERE blood_pressure > 100"),
  };
  QueryServiceConfig config;
  config.protection.mode = ProtectionMode::kAudit;
  config.protection.min_query_set_size = 2;
  config.faults.backend_fault_rate = 0.3;

  MemWalIo wal;
  auto service = QueryService::Create(PaperDataset2(), config, &wal);
  TRIPRIV_CHECK(service.ok());

  obs::MetricsConfig metrics_config;
  metrics_config.shards = threads == 0 ? 1 : threads;
  obs::MetricsRegistry registry(metrics_config);
  obs::TraceRecorder trace(service->sim_clock());
  obs::PrivacyBudgetAccountant accountant(&registry);
  auto metrics =
      obs::ServiceMetrics::Create(&registry, &trace, &accountant, {});
  TRIPRIV_CHECK(metrics.ok());
  service->AttachInstruments(&*metrics);

  ThreadPool pool(threads);
  BatchExecutor executor(&*service, &pool);
  executor.ExecuteQueryBatch(batch);

  std::vector<std::vector<uint8_t>> records(96, std::vector<uint8_t>(16));
  Rng fill(61);
  for (auto& record : records) {
    for (auto& byte : record) byte = static_cast<uint8_t>(fill.NextU64());
  }
  SimClock pir_clock;
  auto pir = FailoverPirClient::Build(records, /*num_pairs=*/2, RetryPolicy{},
                                      &pir_clock, /*seed=*/62);
  TRIPRIV_CHECK(pir.ok());
  PirServerFault corrupt;
  corrupt.corrupt_rate = 1.0;
  pir->InjectFault(1, corrupt);
  service->AttachPirBackend(&*pir);
  executor.ExecutePirBatch({7, 50, 7, 95, 0}, Deadline());

  service->PublishMetrics();
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  return Exports{obs::ToPrometheusText(snapshot), obs::ToJson(snapshot),
                 obs::TraceToJson(trace)};
}

TEST(ObsDeterminismTest, ExportsAreByteIdenticalAtAnyThreadCount) {
  const Exports ref = RunWorkload(0);
#ifndef TRIPRIV_OBS_DISABLED
  // The workload actually exercised the instruments. (In a
  // -DTRIPRIV_OBS=OFF build the bundle is inert and registers nothing;
  // the byte-identity contract below must still hold on the empty
  // exports.)
  EXPECT_NE(ref.prometheus.find("tripriv_service_answers_total"),
            std::string::npos);
  EXPECT_NE(ref.prometheus.find("tripriv_wal_fsync_ticks_bucket"),
            std::string::npos);
  EXPECT_NE(ref.json.find("tripriv_privacy_epsilon_spent"),
            std::string::npos);
  EXPECT_NE(ref.trace.find("\"name\":\"submit\""), std::string::npos);
  EXPECT_NE(ref.trace.find("\"name\":\"pir_batch\""), std::string::npos);
#endif

  for (size_t threads : kThreadCounts) {
    const Exports got = RunWorkload(threads);
    EXPECT_EQ(got.prometheus, ref.prometheus) << "threads=" << threads;
    EXPECT_EQ(got.json, ref.json) << "threads=" << threads;
    EXPECT_EQ(got.trace, ref.trace) << "threads=" << threads;
  }
}

TEST(ObsDeterminismTest, ShardCountIsInvisibleInTheSnapshot) {
  // Same serial workload, different slot layouts: a registry sized for 8
  // shards must export the same bytes as a 1-shard registry.
  auto run = [](size_t shards) {
    obs::MetricsConfig config;
    config.shards = shards;
    obs::MetricsRegistry registry(config);
    auto counter = registry.RegisterCounter("tripriv_events_total", "h");
    auto histogram =
        registry.RegisterHistogram("tripriv_ticks", "h", {2, 8, 32});
    TRIPRIV_CHECK(counter.ok() && histogram.ok());
    for (uint64_t i = 0; i < 100; ++i) {
      (*counter)->Add(i % 7, i % shards);
      (*histogram)->Observe(i % 40, i % shards);
    }
    return obs::ToPrometheusText(registry.Snapshot());
  };
  const std::string ref = run(1);
  EXPECT_EQ(run(2), ref);
  EXPECT_EQ(run(8), ref);
}

}  // namespace
}  // namespace tripriv
