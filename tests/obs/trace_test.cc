// TraceRecorder tests: SimClock stamping, parent/child links, the span
// name allowlist, status rendering, and ring-buffer eviction.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include "util/clock.h"

namespace tripriv {
namespace obs {
namespace {

TEST(TraceRecorderTest, StampsSpansFromTheSimClock) {
  SimClock clock;
  TraceRecorder trace(&clock);
  clock.Advance(10);
  const uint64_t span = trace.StartSpan("submit", 0, 7);
  ASSERT_NE(span, 0u);
  clock.Advance(5);
  trace.EndSpan(span);
  ASSERT_EQ(trace.num_spans(), 1u);
  EXPECT_EQ(trace.span(0).name, "submit");
  EXPECT_EQ(trace.span(0).query_id, 7u);
  EXPECT_EQ(trace.span(0).start_tick, 10u);
  EXPECT_EQ(trace.span(0).end_tick, 15u);
  EXPECT_EQ(trace.span(0).status, "OK");
  EXPECT_TRUE(trace.span(0).closed);
}

TEST(TraceRecorderTest, LinksChildrenToParents) {
  SimClock clock;
  TraceRecorder trace(&clock);
  const uint64_t root = trace.StartSpan("submit");
  const uint64_t policy = trace.StartSpan("policy", root);
  const uint64_t wal = trace.StartSpan("wal_append", policy);
  trace.EndSpan(wal);
  trace.EndSpan(policy);
  trace.EndSpan(root, StatusCode::kUnavailable);
  ASSERT_EQ(trace.num_spans(), 3u);
  EXPECT_EQ(trace.span(0).parent_id, 0u);
  EXPECT_EQ(trace.span(1).parent_id, root);
  EXPECT_EQ(trace.span(2).parent_id, policy);
  EXPECT_EQ(trace.span(0).status, "Unavailable");
}

TEST(TraceRecorderTest, RejectsUnknownNamesFailClosed) {
  SimClock clock;
  TraceRecorder trace(&clock);
  // A predicate-shaped name never becomes a span.
  const uint64_t bad = trace.StartSpan("SELECT salary WHERE name=bob");
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(trace.num_spans(), 0u);
  EXPECT_EQ(trace.rejected_names(), 1u);
  // The 0 id makes children and EndSpan no-ops, so an instrumented call
  // path degrades silently instead of crashing.
  trace.EndSpan(bad, StatusCode::kInternal);
  EXPECT_EQ(trace.num_spans(), 0u);
  // AllowSpanName admits new names but keeps the shape rules.
  EXPECT_EQ(trace.AllowSpanName("Not A Name").code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(trace.AllowSpanName("custom_stage").ok());
  EXPECT_NE(trace.StartSpan("custom_stage"), 0u);
}

TEST(TraceRecorderTest, UnfinishedSpansExportAsUnfinished) {
  SimClock clock;
  TraceRecorder trace(&clock);
  trace.StartSpan("primary");
  ASSERT_EQ(trace.num_spans(), 1u);
  EXPECT_FALSE(trace.span(0).closed);
  EXPECT_EQ(trace.span(0).status, "unfinished");
}

TEST(TraceRecorderTest, RingEvictsOldestAndCountsDrops) {
  SimClock clock;
  TraceRecorder trace(&clock, 3);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    clock.Advance(1);
    ids.push_back(trace.StartSpan("pir_read", 0, static_cast<uint64_t>(i)));
  }
  ASSERT_EQ(trace.num_spans(), 3u);
  EXPECT_EQ(trace.dropped(), 2u);
  // Oldest-first view holds query ids 2, 3, 4.
  EXPECT_EQ(trace.span(0).query_id, 2u);
  EXPECT_EQ(trace.span(1).query_id, 3u);
  EXPECT_EQ(trace.span(2).query_id, 4u);
  // Closing an evicted span is a no-op; closing a live one still works.
  trace.EndSpan(ids[0]);
  trace.EndSpan(ids[4], StatusCode::kDeadlineExceeded);
  EXPECT_EQ(trace.span(2).status, "DeadlineExceeded");
}

}  // namespace
}  // namespace obs
}  // namespace tripriv
