// PrivacyBudgetAccountant tests: principal registration over the paper's
// three dimensions, gauge mirroring, and fail-closed name validation.

#include "obs/budget.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tripriv {
namespace obs {
namespace {

double GaugeValue(const MetricsSnapshot& snapshot, const std::string& name,
                  const std::string& principal) {
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.name != name) continue;
    for (const auto& [key, value] : sample.labels) {
      if (key == "principal" && value == principal) {
        return sample.gauge_value;
      }
    }
  }
  ADD_FAILURE() << "no sample " << name << "{principal=" << principal << "}";
  return -1.0;
}

TEST(PrivacyBudgetAccountantTest, RegistersPrincipalsPerDimension) {
  MetricsRegistry registry;
  PrivacyBudgetAccountant accountant(&registry);
  ASSERT_TRUE(accountant
                  .RegisterPrincipal("degraded_path",
                                     PrivacyDimension::kRespondent, 8.0)
                  .ok());
  ASSERT_TRUE(registry.AllowLabelValue("principal", "audit_desk").ok());
  ASSERT_TRUE(
      accountant.RegisterPrincipal("audit_desk", PrivacyDimension::kOwner, 2.0)
          .ok());
  EXPECT_EQ(accountant.num_principals(), 2u);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(
      GaugeValue(snapshot, "tripriv_privacy_epsilon_budget", "degraded_path"),
      8.0);
  EXPECT_DOUBLE_EQ(
      GaugeValue(snapshot, "tripriv_privacy_epsilon_spent", "degraded_path"),
      0.0);
  EXPECT_DOUBLE_EQ(GaugeValue(snapshot, "tripriv_privacy_epsilon_remaining",
                              "audit_desk"),
                   2.0);
  // Each principal series is tagged with its paper dimension.
  bool saw_dimension = false;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.name != "tripriv_privacy_epsilon_budget") continue;
    for (const auto& [key, value] : sample.labels) {
      if (key != "dimension") continue;
      saw_dimension = true;
      EXPECT_TRUE(value == "respondent" || value == "owner");
    }
  }
  EXPECT_TRUE(saw_dimension);
}

TEST(PrivacyBudgetAccountantTest, RecordSpendMirrorsIntoGauges) {
  MetricsRegistry registry;
  PrivacyBudgetAccountant accountant(&registry);
  ASSERT_TRUE(accountant
                  .RegisterPrincipal("aggregate_path",
                                     PrivacyDimension::kRespondent, 4.0)
                  .ok());
  ASSERT_TRUE(accountant.RecordSpend("aggregate_path", 1.0).ok());
  ASSERT_TRUE(accountant.RecordSpend("aggregate_path", 0.5).ok());
  EXPECT_DOUBLE_EQ(accountant.spent("aggregate_path"), 1.5);
  EXPECT_DOUBLE_EQ(accountant.remaining("aggregate_path"), 2.5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(
      GaugeValue(snapshot, "tripriv_privacy_epsilon_spent", "aggregate_path"),
      1.5);
  EXPECT_DOUBLE_EQ(GaugeValue(snapshot, "tripriv_privacy_epsilon_remaining",
                              "aggregate_path"),
                   2.5);
}

TEST(PrivacyBudgetAccountantTest, RemainingClampsAtZeroOnOverspend) {
  MetricsRegistry registry;
  PrivacyBudgetAccountant accountant(&registry);
  ASSERT_TRUE(accountant
                  .RegisterPrincipal("degraded_path",
                                     PrivacyDimension::kRespondent, 1.0)
                  .ok());
  ASSERT_TRUE(accountant.RecordSpend("degraded_path", 3.0).ok());
  EXPECT_DOUBLE_EQ(accountant.spent("degraded_path"), 3.0);
  EXPECT_DOUBLE_EQ(accountant.remaining("degraded_path"), 0.0);
}

TEST(PrivacyBudgetAccountantTest, FailsClosedOnBadNames) {
  MetricsRegistry registry;
  PrivacyBudgetAccountant accountant(&registry);
  // Data-shaped principal names never reach the label allowlist.
  EXPECT_EQ(accountant
                .RegisterPrincipal("Bob's research desk",
                                   PrivacyDimension::kUser, 1.0)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      accountant.RegisterPrincipal("8675309", PrivacyDimension::kUser, 1.0)
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant.num_principals(), 0u);
  // Spends against unknown principals are refused, not auto-created.
  EXPECT_EQ(accountant.RecordSpend("degraded_path", 1.0).code(),
            StatusCode::kNotFound);
  EXPECT_DOUBLE_EQ(accountant.spent("degraded_path"), 0.0);
  // Duplicate registration is an error, not a silent reset.
  ASSERT_TRUE(accountant
                  .RegisterPrincipal("degraded_path",
                                     PrivacyDimension::kRespondent, 8.0)
                  .ok());
  EXPECT_EQ(accountant
                .RegisterPrincipal("degraded_path",
                                   PrivacyDimension::kRespondent, 2.0)
                .code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace obs
}  // namespace tripriv
