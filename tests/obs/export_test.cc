// Exporter tests: Prometheus text shape, label-value escaping, JSON
// escaping, double rendering, and cumulative histogram buckets.

#include "obs/export.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace tripriv {
namespace obs {
namespace {

TEST(ExportEscapingTest, PrometheusLabelValues) {
  EXPECT_EQ(EscapePrometheusLabelValue("plain"), "plain");
  EXPECT_EQ(EscapePrometheusLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapePrometheusLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapePrometheusLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(EscapePrometheusLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(ExportEscapingTest, JsonStrings) {
  EXPECT_EQ(EscapeJsonString("plain"), "plain");
  EXPECT_EQ(EscapeJsonString("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeJsonString("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeJsonString("a\nb\rc\td"), "a\\nb\\rc\\td");
  EXPECT_EQ(EscapeJsonString(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(EscapeJsonString(std::string(1, '\x1f')), "\\u001f");
}

TEST(ExportEscapingTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(-2.25), "-2.25");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-inf");
}

void Populate(MetricsRegistry* registry) {
  auto counter = registry->RegisterCounter("tripriv_answers_total",
                                           "Answers by tier",
                                           {{"tier", "protected"}});
  auto gauge = registry->RegisterGauge("tripriv_depth", "Queue depth");
  auto histogram =
      registry->RegisterHistogram("tripriv_ticks", "Latency", {1, 4});
  TRIPRIV_CHECK(counter.ok() && gauge.ok() && histogram.ok());
  (*counter)->Add(7);
  (*gauge)->Set(2.5);
  (*histogram)->Observe(1);
  (*histogram)->Observe(3);
  (*histogram)->Observe(99);
}

TEST(PrometheusExportTest, RendersAllKindsWithCumulativeBuckets) {
  MetricsRegistry registry;
  Populate(&registry);
  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# HELP tripriv_answers_total Answers by tier\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tripriv_answers_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("tripriv_answers_total{tier=\"protected\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("tripriv_depth 2.5\n"), std::string::npos);
  // Cumulative le buckets with the +Inf terminator, then _sum and _count.
  EXPECT_NE(text.find("tripriv_ticks_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tripriv_ticks_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("tripriv_ticks_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("tripriv_ticks_sum 103\n"), std::string::npos);
  EXPECT_NE(text.find("tripriv_ticks_count 3\n"), std::string::npos);
}

TEST(PrometheusExportTest, HelpAndTypeRenderOncePerName) {
  MetricsRegistry registry;
  for (const char* tier : {"protected", "refused"}) {
    TRIPRIV_CHECK(registry
                      .RegisterCounter("tripriv_answers_total", "h",
                                       {{"tier", tier}})
                      .ok());
  }
  const std::string text = ToPrometheusText(registry.Snapshot());
  size_t first = text.find("# TYPE tripriv_answers_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE tripriv_answers_total", first + 1),
            std::string::npos);
}

TEST(JsonExportTest, RendersAllKinds) {
  MetricsRegistry registry;
  Populate(&registry);
  const std::string json = ToJson(registry.Snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"tripriv_answers_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"tier\":\"protected\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\",\"labels\":{\"tier\":"
                      "\"protected\"},\"value\":7"),
            std::string::npos);
  EXPECT_NE(json.find("\"value\":2.5"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":1,\"count\":1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":\"+inf\",\"count\":1}"), std::string::npos);
  EXPECT_NE(json.find("\"count\":3,\"sum\":103"), std::string::npos);
}

TEST(TraceExportTest, RendersSpansWithLinksAndCounts) {
  SimClock clock;
  TraceRecorder trace(&clock, 8);
  const uint64_t root = trace.StartSpan("submit", 0, 41);
  clock.Advance(3);
  const uint64_t child = trace.StartSpan("policy", root, 41);
  clock.Advance(2);
  trace.EndSpan(child, StatusCode::kPermissionDenied);
  trace.EndSpan(root, StatusCode::kOk);
  trace.StartSpan("not_a_span_name");  // rejected, counted

  const std::string json = TraceToJson(trace);
  EXPECT_NE(json.find("\"name\":\"submit\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":" + std::to_string(root)),
            std::string::npos);
  EXPECT_NE(json.find("\"query_id\":41"), std::string::npos);
  EXPECT_NE(json.find("\"start\":3,\"end\":5"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"PermissionDenied\""), std::string::npos);
  EXPECT_NE(json.find("\"rejected_names\":1"), std::string::npos);
  EXPECT_EQ(json.find("not_a_span_name"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace tripriv
