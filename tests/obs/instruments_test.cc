// ServiceMetrics integration: the instrumented serving ladder's counters
// mirror ServiceStats, spans follow the ladder stages, durable epsilon
// spends (including WAL-recovered ones) mirror into the budget accountant,
// and PublishMetrics copies component counters into gauges.

#include "obs/instruments.h"

#include <gtest/gtest.h>

#include "obs/budget.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "querydb/query.h"
#include "service/batch_executor.h"
#include "service/pir_failover.h"
#include "service/query_service.h"
#include "table/datasets.h"
#include "util/random.h"

namespace tripriv {
namespace {

using obs::MetricSample;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::PrivacyBudgetAccountant;
using obs::ServiceMetrics;
using obs::ServiceMetricsOptions;
using obs::TraceRecorder;

StatQuery Parse(const std::string& sql) {
  auto query = ParseQuery(sql);
  TRIPRIV_CHECK(query.ok()) << sql;
  return std::move(query).value();
}

std::vector<StatQuery> WorkloadBatch() {
  return {
      Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 172"),
      Parse("SELECT COUNT(*) FROM t WHERE weight > 80"),
      Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 171"),
      Parse("SELECT AVG(weight) FROM t WHERE height >= 160"),
      Parse("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105"),
      Parse("SELECT SUM(weight) FROM t WHERE blood_pressure > 100"),
  };
}

QueryServiceConfig AuditConfig(double fault_rate) {
  QueryServiceConfig config;
  config.protection.mode = ProtectionMode::kAudit;
  config.protection.min_query_set_size = 2;
  config.faults.backend_fault_rate = fault_rate;
  return config;
}

const MetricSample* Find(const MetricsSnapshot& snapshot,
                         const std::string& name, const obs::LabelSet& labels) {
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.name == name && sample.labels == labels) return &sample;
  }
  return nullptr;
}

uint64_t CounterValue(const MetricsSnapshot& snapshot, const std::string& name,
                      const obs::LabelSet& labels = {}) {
  const MetricSample* sample = Find(snapshot, name, labels);
  if (sample == nullptr) {
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  }
  return sample->counter_value;
}

double GaugeValue(const MetricsSnapshot& snapshot, const std::string& name,
                  const obs::LabelSet& labels = {}) {
  const MetricSample* sample = Find(snapshot, name, labels);
  if (sample == nullptr) {
    ADD_FAILURE() << "missing gauge " << name;
    return -1.0;
  }
  return sample->gauge_value;
}

struct Harness {
  MetricsRegistry registry;
  std::unique_ptr<TraceRecorder> trace;
  std::unique_ptr<PrivacyBudgetAccountant> accountant;
  std::unique_ptr<ServiceMetrics> metrics;

  void Attach(QueryService* service, double epsilon_budget) {
    trace = std::make_unique<TraceRecorder>(service->sim_clock());
    accountant = std::make_unique<PrivacyBudgetAccountant>(&registry);
    ServiceMetricsOptions options;
    options.degraded_budget = epsilon_budget;
    auto bundle = ServiceMetrics::Create(&registry, trace.get(),
                                         accountant.get(), options);
    TRIPRIV_CHECK(bundle.ok());
    metrics = std::make_unique<ServiceMetrics>(std::move(*bundle));
    service->AttachInstruments(metrics.get());
  }
};

TEST(InstrumentsTest, CountersMirrorServiceStats) {
  MemWalIo wal;
  auto service = QueryService::Create(PaperDataset2(), AuditConfig(0.3), &wal);
  ASSERT_TRUE(service.ok());
  Harness harness;
  harness.Attach(&*service, 8.0);

  BatchExecutor executor(&*service, nullptr);
  executor.ExecuteQueryBatch(WorkloadBatch());

  const ServiceStats& stats = service->stats();
  ASSERT_EQ(stats.received, 6u);
  const MetricsSnapshot snapshot = harness.registry.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "tripriv_service_answers_total",
                         {{"tier", "protected"}}),
            stats.protected_answers);
  EXPECT_EQ(CounterValue(snapshot, "tripriv_service_answers_total",
                         {{"tier", "dp_degraded"}}),
            stats.dp_answers);
  EXPECT_EQ(CounterValue(snapshot, "tripriv_service_answers_total",
                         {{"tier", "refused"}}),
            stats.refusals);
  EXPECT_EQ(CounterValue(snapshot, "tripriv_service_policy_refusals_total",
                         {{"dimension", "owner"}}),
            stats.policy_refusals);
  EXPECT_EQ(CounterValue(snapshot, "tripriv_service_shed_total"), stats.shed);
  EXPECT_EQ(CounterValue(snapshot, "tripriv_wal_append_failures_total"),
            stats.wal_append_failures);
  EXPECT_EQ(CounterValue(snapshot, "tripriv_wal_bytes_total"),
            service->wal().bytes_appended());
  // One fsync-latency observation per durable append.
  const MetricSample* fsync = Find(snapshot, "tripriv_wal_fsync_ticks", {});
  ASSERT_NE(fsync, nullptr);
  EXPECT_EQ(fsync->histogram.count,
            CounterValue(snapshot, "tripriv_wal_appends_total"));
  EXPECT_GT(fsync->histogram.count, 0u);
  // The batch-shape histogram saw exactly one batch of six.
  const MetricSample* batch = Find(snapshot, "tripriv_stat_batch_size", {});
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->histogram.count, 1u);
  EXPECT_EQ(batch->histogram.sum, 6u);
}

TEST(InstrumentsTest, ShedsCarryTenantClassLabels) {
  MemWalIo wal;
  QueryServiceConfig config = AuditConfig(0.0);
  // Stateless protection so every Submit clears the policy stage and the
  // admission queue is the only thing refusing.
  config.protection.mode = ProtectionMode::kQuerySetSize;
  config.admission.capacity = 1;
  config.admission.service_ticks = 1000;  // nothing drains during the burst
  auto service = QueryService::Create(PaperDataset2(), config, &wal);
  ASSERT_TRUE(service.ok());
  Harness harness;
  harness.Attach(&*service, 8.0);

  // Fill the one admission slot, then shed twice: once tagged interactive,
  // once untagged (the tag resets after every request, so the third Submit
  // must land in "unattributed", not inherit "interactive").
  const StatQuery query = Parse("SELECT COUNT(*) FROM t WHERE height < 175");
  EXPECT_EQ(service->Submit(query).tier, AnswerTier::kProtected);
  service->set_request_class(obs::kClassInteractive);
  auto shed_tagged = service->Submit(query);
  EXPECT_EQ(shed_tagged.refusal.code(), StatusCode::kResourceExhausted);
  auto shed_untagged = service->Submit(query);
  EXPECT_EQ(shed_untagged.refusal.code(), StatusCode::kResourceExhausted);

  const MetricsSnapshot snapshot = harness.registry.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "tripriv_service_shed_total"), 2u);
  EXPECT_EQ(CounterValue(snapshot, "tripriv_service_shed_by_class_total",
                         {{"class", "interactive"}}),
            1u);
  EXPECT_EQ(CounterValue(snapshot, "tripriv_service_shed_by_class_total",
                         {{"class", "unattributed"}}),
            1u);
  EXPECT_EQ(CounterValue(snapshot, "tripriv_service_shed_by_class_total",
                         {{"class", "abusive"}}),
            0u);
}

TEST(InstrumentsTest, SpansFollowTheServingLadder) {
  MemWalIo wal;
  auto service = QueryService::Create(PaperDataset2(), AuditConfig(0.0), &wal);
  ASSERT_TRUE(service.ok());
  Harness harness;
  harness.Attach(&*service, 8.0);

  const ServiceAnswer answer =
      service->Submit(Parse("SELECT COUNT(*) FROM t WHERE weight > 80"));
  EXPECT_EQ(answer.tier, AnswerTier::kProtected);

  TraceRecorder& trace = *harness.trace;
  ASSERT_GE(trace.num_spans(), 3u);
  const obs::TraceSpan& root = trace.span(0);
  EXPECT_EQ(root.name, "submit");
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_TRUE(root.closed);
  EXPECT_EQ(root.status, "OK");
  bool saw_policy = false;
  bool saw_wal = false;
  for (size_t i = 1; i < trace.num_spans(); ++i) {
    const obs::TraceSpan& span = trace.span(i);
    EXPECT_EQ(span.parent_id, root.id) << span.name;
    EXPECT_TRUE(span.closed) << span.name;
    if (span.name == "policy") saw_policy = true;
    if (span.name == "wal_append") saw_wal = true;
  }
  EXPECT_TRUE(saw_policy);
  EXPECT_TRUE(saw_wal);
}

TEST(InstrumentsTest, EpsilonSpendsMirrorIntoBudget) {
  // Every primary attempt fails, so every non-refused answer is a degraded
  // DP answer and charges the durable budget.
  MemWalIo wal;
  auto service = QueryService::Create(PaperDataset2(), AuditConfig(1.0), &wal);
  ASSERT_TRUE(service.ok());
  Harness harness;
  harness.Attach(&*service, 8.0);
  for (const StatQuery& query : WorkloadBatch()) service->Submit(query);
  ASSERT_GT(service->stats().dp_answers, 0u);
  EXPECT_GT(service->epsilon_spent(), 0.0);
  EXPECT_DOUBLE_EQ(harness.accountant->spent("degraded_path"),
                   service->epsilon_spent());
  EXPECT_DOUBLE_EQ(harness.accountant->remaining("degraded_path"),
                   8.0 - service->epsilon_spent());

  // Restart on the same WAL: AttachInstruments seeds a fresh accountant
  // with the recovered spend, so gauges agree with the durable log.
  auto restarted =
      QueryService::Create(PaperDataset2(), AuditConfig(1.0), &wal);
  ASSERT_TRUE(restarted.ok());
  EXPECT_DOUBLE_EQ(restarted->epsilon_spent(), service->epsilon_spent());
  Harness fresh;
  fresh.Attach(&*restarted, 8.0);
  EXPECT_DOUBLE_EQ(fresh.accountant->spent("degraded_path"),
                   restarted->epsilon_spent());
}

TEST(InstrumentsTest, PublishCopiesComponentCountersIntoGauges) {
  MemWalIo wal;
  auto service = QueryService::Create(PaperDataset2(), AuditConfig(1.0), &wal);
  ASSERT_TRUE(service.ok());
  Harness harness;
  harness.Attach(&*service, 8.0);
  for (const StatQuery& query : WorkloadBatch()) service->Submit(query);

  // A PIR backend with one always-corrupting server forces failovers.
  std::vector<std::vector<uint8_t>> records(64, std::vector<uint8_t>(8));
  Rng fill(51);
  for (auto& record : records) {
    for (auto& byte : record) byte = static_cast<uint8_t>(fill.NextU64());
  }
  SimClock pir_clock;
  auto pir = FailoverPirClient::Build(records, /*num_pairs=*/2, RetryPolicy{},
                                      &pir_clock, /*seed=*/52);
  ASSERT_TRUE(pir.ok());
  PirServerFault corrupt;
  corrupt.corrupt_rate = 1.0;
  pir->InjectFault(1, corrupt);
  service->AttachPirBackend(&*pir);
  auto one = service->PirRead(5, Deadline());
  ASSERT_TRUE(one.ok());
  auto batch = service->PirReadBatch({1, 2, 3}, Deadline());
  for (const auto& record : batch) ASSERT_TRUE(record.ok());

  // Breaker-open submissions refuse without burning backoff ticks, so
  // advance simulated time until every admitted request's virtual service
  // window has passed before sampling gauges.
  service->sim_clock()->Advance(64);
  service->PublishMetrics();
  const MetricsSnapshot snapshot = harness.registry.Snapshot();
  const obs::LabelSet primary = {{"backend", "primary"}};
  EXPECT_DOUBLE_EQ(
      GaugeValue(snapshot, "tripriv_breaker_state", primary),
      static_cast<double>(
          static_cast<uint8_t>(service->primary_breaker().state())));
  EXPECT_DOUBLE_EQ(
      GaugeValue(snapshot, "tripriv_breaker_opens", primary),
      static_cast<double>(service->primary_breaker().times_opened()));
  EXPECT_GT(GaugeValue(snapshot, "tripriv_breaker_opens", primary), 0.0);
  EXPECT_DOUBLE_EQ(
      GaugeValue(snapshot, "tripriv_breaker_rejections", primary),
      static_cast<double>(service->primary_breaker().rejected()));
  EXPECT_DOUBLE_EQ(
      GaugeValue(snapshot, "tripriv_breaker_half_open_probes", primary),
      static_cast<double>(service->primary_breaker().half_open_probes()));
  // Serial submits (plus the explicit advance above) drain the admission
  // queue before Publish runs.
  EXPECT_DOUBLE_EQ(GaugeValue(snapshot, "tripriv_service_queue_depth"), 0.0);
  const obs::LabelSet user = {{"dimension", "user"}};
  EXPECT_DOUBLE_EQ(GaugeValue(snapshot, "tripriv_pir_bytes_xored", user),
                   static_cast<double>(pir->total_bytes_xored()));
  EXPECT_DOUBLE_EQ(GaugeValue(snapshot, "tripriv_pir_failover_replays", user),
                   static_cast<double>(pir->failovers()));
  EXPECT_GT(GaugeValue(snapshot, "tripriv_pir_corrupt_answers", user), 0.0);
  EXPECT_DOUBLE_EQ(
      GaugeValue(snapshot, "tripriv_pir_queries_answered", user),
      static_cast<double>(pir->total_queries_answered()));
  EXPECT_EQ(CounterValue(snapshot, "tripriv_pir_reads_total", user), 4u);
  const MetricSample* batch_size =
      Find(snapshot, "tripriv_pir_batch_size", user);
  ASSERT_NE(batch_size, nullptr);
  EXPECT_EQ(batch_size->histogram.count, 1u);
  EXPECT_EQ(batch_size->histogram.sum, 3u);
}

}  // namespace
}  // namespace tripriv
