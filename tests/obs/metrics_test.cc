// MetricsRegistry tests: fail-closed label admission, per-shard merge
// order, histogram bucket-boundary semantics, and snapshot shape.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace tripriv {
namespace obs {
namespace {

TEST(LabelAllowlistTest, RejectsDataShapedKeysAndValues) {
  LabelAllowlist allowlist;
  EXPECT_TRUE(allowlist.AllowKey("tier").ok());
  // Keys: lowercase identifier shape only.
  EXPECT_EQ(allowlist.AllowKey("Tier").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(allowlist.AllowKey("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(allowlist.AllowKey("1tier").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(allowlist.AllowKey("t-ier").code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(allowlist.AllowValue("tier", "dp_degraded").ok());
  // Values for an unknown key fail closed.
  EXPECT_EQ(allowlist.AllowValue("nope", "x").code(),
            StatusCode::kInvalidArgument);
  // Data-shaped values: uppercase (record values), all digits (ids and
  // rendered fingerprints), too long (predicate strings), wrong charset.
  EXPECT_EQ(allowlist.AllowValue("tier", "WHERE age > 40").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(allowlist.AllowValue("tier", "1234567890123456").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(allowlist.AllowValue("tier", std::string(49, 'a')).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(allowlist.AllowValue("tier", "has space").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(allowlist.AllowValue("tier", "").code(),
            StatusCode::kInvalidArgument);
  // Mixed alnum with a letter is fine (version-ish tokens).
  EXPECT_TRUE(allowlist.AllowValue("tier", "v2").ok());
}

TEST(LabelAllowlistTest, RejectionNeverEchoesTheValue) {
  // A rejected label value is exactly the string that must not leak; the
  // error message may describe the rule but not quote the candidate.
  LabelAllowlist allowlist;
  ASSERT_TRUE(allowlist.AllowKey("tier").ok());
  const std::string secret = "salary.of.bob";  // allowlist-legal charset
  Status status = allowlist.Validate({{"tier", secret}});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message().find(secret), std::string::npos);
  Status rejected = allowlist.AllowValue("tier", "WHERE age > 40");
  EXPECT_EQ(rejected.message().find("WHERE"), std::string::npos);
}

TEST(MetricsRegistryTest, UnknownLabelFailsClosed) {
  MetricsRegistry registry;
  // Unknown key.
  EXPECT_EQ(registry.RegisterCounter("tripriv_x_total", "h", {{"nope", "a"}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Known key, unregistered value.
  EXPECT_EQ(registry.RegisterCounter("tripriv_x_total", "h",
                                     {{"tier", "not_registered"}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Registered key/value passes.
  EXPECT_TRUE(
      registry.RegisterCounter("tripriv_x_total", "h", {{"tier", "refused"}})
          .ok());
}

TEST(MetricsRegistryTest, RejectsBadNamesDupSeriesAndKindChanges) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.RegisterCounter("Bad-Name", "h").status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(registry.RegisterCounter("tripriv_a_total", "h").ok());
  // Same (name, labels) series twice.
  EXPECT_EQ(registry.RegisterCounter("tripriv_a_total", "h").status().code(),
            StatusCode::kAlreadyExists);
  // Same name as a different kind.
  EXPECT_EQ(registry.RegisterGauge("tripriv_a_total", "h").status().code(),
            StatusCode::kInvalidArgument);
  // Duplicate label key within one series.
  EXPECT_EQ(registry
                .RegisterCounter("tripriv_b_total", "h",
                                 {{"tier", "refused"}, {"tier", "protected"}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(MetricsRegistryTest, CounterMergesShardSlotsInOrder) {
  MetricsConfig config;
  config.shards = 4;
  MetricsRegistry registry(config);
  auto counter = registry.RegisterCounter("tripriv_work_total", "h");
  ASSERT_TRUE(counter.ok());
  (*counter)->Add(1, 0);
  (*counter)->Add(10, 1);
  (*counter)->Add(100, 2);
  (*counter)->Add(1000, 3);
  EXPECT_EQ((*counter)->value(), 1111u);
}

TEST(MetricsRegistryTest, ParallelShardWritesMatchSerial) {
  // The determinism contract in miniature: each shard writes only its own
  // slot; the merged value equals the serial sum at any thread count.
  const size_t kItems = 1000;
  auto run = [](size_t threads) {
    ThreadPool pool(threads);
    MetricsConfig config;
    config.shards = threads == 0 ? 1 : threads;
    MetricsRegistry registry(config);
    auto counter = registry.RegisterCounter("tripriv_items_total", "h");
    auto histogram = registry.RegisterHistogram("tripriv_item_value", "h",
                                                {10, 100, 500});
    TRIPRIV_CHECK(counter.ok() && histogram.ok());
    Counter* c = *counter;
    Histogram* h = *histogram;
    pool.ParallelFor(kItems, [c, h](size_t shard, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        c->Add(i, shard);
        h->Observe(i % 600, shard);
      }
    });
    struct Out {
      uint64_t count;
      uint64_t sum;
      std::vector<uint64_t> buckets;
      uint64_t counter;
    };
    return Out{h->count(), h->sum(), h->bucket_counts(), c->value()};
  };
  const auto ref = run(0);
  EXPECT_EQ(ref.counter, kItems * (kItems - 1) / 2);
  EXPECT_EQ(ref.count, kItems);
  for (size_t threads : {1u, 2u, 8u}) {
    const auto got = run(threads);
    EXPECT_EQ(got.counter, ref.counter) << threads;
    EXPECT_EQ(got.count, ref.count) << threads;
    EXPECT_EQ(got.sum, ref.sum) << threads;
    EXPECT_EQ(got.buckets, ref.buckets) << threads;
  }
}

TEST(HistogramTest, ValueEqualToUpperBoundLandsInThatBucket) {
  MetricsRegistry registry;
  auto histogram =
      registry.RegisterHistogram("tripriv_ticks", "h", {1, 4, 16});
  ASSERT_TRUE(histogram.ok());
  Histogram* h = *histogram;
  h->Observe(0);   // <= 1
  h->Observe(1);   // == bound 1 -> bucket le=1, not le=4
  h->Observe(2);   // <= 4
  h->Observe(4);   // == bound 4 -> bucket le=4
  h->Observe(16);  // == last bound -> le=16, not +inf
  h->Observe(17);  // +inf bucket
  const auto counts = h->bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + implicit +inf
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h->count(), 6u);
  EXPECT_EQ(h->sum(), 0u + 1 + 2 + 4 + 16 + 17);
}

TEST(HistogramTest, RegistrationValidatesBounds) {
  MetricsRegistry registry;
  EXPECT_EQ(
      registry.RegisterHistogram("tripriv_h1", "h", {}).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.RegisterHistogram("tripriv_h2", "h", {4, 4})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.RegisterHistogram("tripriv_h3", "h", {4, 1})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByNameThenLabels) {
  MetricsRegistry registry;
  ASSERT_TRUE(
      registry.RegisterCounter("tripriv_z_total", "last by name").ok());
  ASSERT_TRUE(registry
                  .RegisterCounter("tripriv_answers_total", "by tier",
                                   {{"tier", "refused"}})
                  .ok());
  ASSERT_TRUE(registry
                  .RegisterCounter("tripriv_answers_total", "by tier",
                                   {{"tier", "protected"}})
                  .ok());
  auto gauge = registry.RegisterGauge("tripriv_depth", "gauge");
  ASSERT_TRUE(gauge.ok());
  (*gauge)->Set(3.5);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.samples.size(), 4u);
  EXPECT_EQ(snapshot.samples[0].name, "tripriv_answers_total");
  EXPECT_EQ(snapshot.samples[0].labels[0].second, "protected");
  EXPECT_EQ(snapshot.samples[1].labels[0].second, "refused");
  EXPECT_EQ(snapshot.samples[2].name, "tripriv_depth");
  EXPECT_DOUBLE_EQ(snapshot.samples[2].gauge_value, 3.5);
  EXPECT_EQ(snapshot.samples[3].name, "tripriv_z_total");
}

TEST(MetricsRegistryTest, AllowLabelValueExtendsTheAllowlist) {
  MetricsRegistry registry;
  EXPECT_EQ(registry
                .RegisterGauge("tripriv_budget", "g",
                               {{"principal", "research_group"}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(registry.AllowLabelValue("principal", "research_group").ok());
  EXPECT_TRUE(registry
                  .RegisterGauge("tripriv_budget", "g",
                                 {{"principal", "research_group"}})
                  .ok());
  // Still fail-closed for data-shaped additions.
  EXPECT_EQ(registry.AllowLabelValue("principal", "8675309").code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace obs
}  // namespace tripriv
