// Tests for the crash-recoverable audit WAL: framing round-trips, torn-tail
// truncation, checksum rejection, append-side tail repair, and the
// fail-stop latch.

#include "service/audit_wal.h"

#include <gtest/gtest.h>

#include <vector>

namespace tripriv {
namespace {

WalRecord Decision(uint64_t id, std::vector<uint64_t> rows) {
  WalRecord r;
  r.type = WalRecordType::kDecision;
  r.query_id = id;
  r.query_fingerprint = 0xFEEDull * (id + 1);
  r.decision = WalDecision::kAdmitted;
  r.rows = std::move(rows);
  return r;
}

WalRecord Refusal(uint64_t id) {
  WalRecord r;
  r.type = WalRecordType::kDecision;
  r.query_id = id;
  r.query_fingerprint = 0xFEEDull * (id + 1);
  r.decision = WalDecision::kPolicyRefused;
  return r;
}

WalRecord Spend(uint64_t id, double epsilon) {
  WalRecord r;
  r.type = WalRecordType::kEpsilonSpend;
  r.query_id = id;
  r.decision = WalDecision::kAdmitted;
  r.epsilon = epsilon;
  return r;
}

TEST(AuditWalTest, RecordsRoundTripThroughRecovery) {
  MemWalIo io;
  AuditWal wal(&io);
  const std::vector<WalRecord> written = {
      Decision(0, {1, 4, 9}), Refusal(1), Spend(2, 0.5), Decision(3, {})};
  for (const auto& r : written) ASSERT_TRUE(wal.Append(r).ok());
  EXPECT_EQ(wal.records_appended(), written.size());

  auto recovered = AuditWal::Recover(&io);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->bytes_truncated, 0u);
  ASSERT_EQ(recovered->records.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    EXPECT_TRUE(recovered->records[i] == written[i]) << "record " << i;
  }
}

TEST(AuditWalTest, EmptyLogRecoversToNothing) {
  MemWalIo io;
  auto recovered = AuditWal::Recover(&io);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->records.empty());
  EXPECT_EQ(recovered->bytes_truncated, 0u);
}

TEST(AuditWalTest, CrashDropsOnlyUnsyncedBytes) {
  MemWalIo io;
  AuditWal wal(&io);
  ASSERT_TRUE(wal.Append(Decision(0, {1, 2, 3})).ok());
  // Simulate a torn write the appender never got to repair: raw bytes land
  // after the last sync, then the process dies.
  ASSERT_TRUE(io.Append({0xDE, 0xAD, 0xBE}).ok());
  io.SimulateCrash();

  auto recovered = AuditWal::Recover(&io);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->records.size(), 1u);
  EXPECT_TRUE(recovered->records[0] == Decision(0, {1, 2, 3}));
  EXPECT_EQ(recovered->bytes_truncated, 0u);  // crash already dropped them
}

TEST(AuditWalTest, TornTailIsTruncatedAtRecovery) {
  MemWalIo io;
  AuditWal wal(&io);
  ASSERT_TRUE(wal.Append(Decision(0, {5})).ok());
  const size_t durable = io.size();
  // A torn frame that DID get synced (e.g. the crash hit between the data
  // sync and the appender's bookkeeping): recovery must cut it off.
  ASSERT_TRUE(io.Append({0x09, 0x00, 0x00, 0x00, 0x11, 0x22}).ok());
  ASSERT_TRUE(io.Sync().ok());

  auto recovered = AuditWal::Recover(&io);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->records.size(), 1u);
  EXPECT_EQ(recovered->bytes_truncated, 6u);
  EXPECT_EQ(io.size(), durable);  // the device itself was repaired
}

TEST(AuditWalTest, CorruptTailRecordIsRejectedByChecksum) {
  MemWalIo io;
  AuditWal wal(&io);
  ASSERT_TRUE(wal.Append(Decision(0, {1})).ok());
  const size_t first_end = io.size();
  ASSERT_TRUE(wal.Append(Decision(1, {2})).ok());
  io.CorruptByte(io.size() - 1);  // flip one payload byte of record 1

  auto recovered = AuditWal::Recover(&io);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->records.size(), 1u);
  EXPECT_TRUE(recovered->records[0] == Decision(0, {1}));
  EXPECT_EQ(io.size(), first_end);
}

TEST(AuditWalTest, AppendAfterRecoveryContinuesTheLog) {
  MemWalIo io;
  {
    AuditWal wal(&io);
    ASSERT_TRUE(wal.Append(Decision(0, {1})).ok());
    ASSERT_TRUE(io.Append({0x77}).ok());  // torn garbage, synced
    ASSERT_TRUE(io.Sync().ok());
  }
  auto recovered = AuditWal::Recover(&io);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->bytes_truncated, 1u);

  AuditWal wal(&io);  // constructed over the repaired device
  ASSERT_TRUE(wal.Append(Decision(1, {2})).ok());
  auto again = AuditWal::Recover(&io);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->records.size(), 2u);
  EXPECT_EQ(again->records[1].query_id, 1u);
}

TEST(AuditWalTest, ShortWriteIsRepairedAndReported) {
  MemWalIo base;
  WalFaultPlan plan;
  plan.short_write_rate = 1.0;  // every append tears
  FaultyWalIo io(&base, plan);
  AuditWal wal(&io);

  Status appended = wal.Append(Decision(0, {1, 2}));
  ASSERT_FALSE(appended.ok());
  EXPECT_EQ(appended.code(), StatusCode::kUnavailable);
  EXPECT_GE(io.short_writes(), 1u);
  // Tail repair ran: the device holds no partial frame.
  EXPECT_EQ(base.size(), 0u);
  auto recovered = AuditWal::Recover(&base);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->records.empty());
}

TEST(AuditWalTest, SyncFailureMeansRecordNotDurable) {
  MemWalIo base;
  WalFaultPlan plan;
  plan.sync_fail_rate = 1.0;
  FaultyWalIo io(&base, plan);
  AuditWal wal(&io);

  Status appended = wal.Append(Decision(0, {3}));
  ASSERT_FALSE(appended.ok());
  EXPECT_GE(io.sync_failures(), 1u);
  // The appender truncated the unsynced frame; nothing to recover.
  auto recovered = AuditWal::Recover(&base);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->records.empty());
}

TEST(AuditWalTest, DeadDeviceLatchesFailStop) {
  MemWalIo base;
  WalFaultPlan plan;
  plan.die_after_appends = 1;  // first append works, then the device dies
  FaultyWalIo io(&base, plan);
  AuditWal wal(&io);

  ASSERT_TRUE(wal.Append(Decision(0, {1})).ok());
  // Device dead: append fails AND the repair truncate fails -> fail-stop.
  Status second = wal.Append(Decision(1, {2}));
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(wal.broken());
  Status third = wal.Append(Decision(2, {3}));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kUnavailable);
  // The durable prefix survives untouched.
  auto recovered = AuditWal::Recover(&base);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->records.size(), 1u);
}

TEST(AuditWalTest, FaultFreeFaultyIoIsTransparent) {
  MemWalIo base;
  FaultyWalIo io(&base, WalFaultPlan{});
  AuditWal wal(&io);
  ASSERT_TRUE(wal.Append(Decision(0, {1, 2, 3})).ok());
  ASSERT_TRUE(wal.Append(Spend(0, 0.25)).ok());
  auto recovered = AuditWal::Recover(&base);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->records.size(), 2u);
  EXPECT_EQ(io.short_writes(), 0u);
  EXPECT_EQ(io.sync_failures(), 0u);
}

TEST(AuditWalTest, TruncatePastEndIsRejected) {
  MemWalIo io;
  EXPECT_EQ(io.Truncate(4).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace tripriv
