// Tests for the multi-server IT-PIR failover client: correct retrieval,
// crashed-server failover, corrupt-answer detection via record checksums,
// deadline enforcement, and single-server blindness across retries.

#include "service/pir_failover.h"

#include <gtest/gtest.h>

#include <vector>

namespace tripriv {
namespace {

std::vector<std::vector<uint8_t>> TestRecords(size_t n, size_t record_size) {
  std::vector<std::vector<uint8_t>> records(n);
  for (size_t i = 0; i < n; ++i) {
    records[i].resize(record_size);
    for (size_t j = 0; j < record_size; ++j) {
      records[i][j] = static_cast<uint8_t>(i * 31 + j);
    }
  }
  return records;
}

TEST(PirFailoverTest, HealthyPairsRetrieveEveryRecord) {
  SimClock clock;
  auto records = TestRecords(13, 5);
  auto client = FailoverPirClient::Build(records, 2, RetryPolicy{}, &clock, 7);
  ASSERT_TRUE(client.ok());
  for (size_t i = 0; i < records.size(); ++i) {
    auto read = client->Read(i, Deadline());
    ASSERT_TRUE(read.ok()) << "record " << i;
    EXPECT_EQ(*read, records[i]);
  }
  EXPECT_EQ(client->failovers(), 0u);
  EXPECT_EQ(client->corrupt_answers_detected(), 0u);
}

TEST(PirFailoverTest, CrashedPairFailsOverToHealthyPair) {
  SimClock clock;
  auto records = TestRecords(8, 4);
  auto client = FailoverPirClient::Build(records, 2, RetryPolicy{}, &clock, 7);
  ASSERT_TRUE(client.ok());
  client->InjectFault(0, PirServerFault{.crashed = true});  // pair 0 side A

  for (size_t i = 0; i < records.size(); ++i) {
    auto read = client->Read(i, Deadline());
    ASSERT_TRUE(read.ok()) << "record " << i;
    EXPECT_EQ(*read, records[i]);
  }
  EXPECT_GT(client->failovers(), 0u);
}

TEST(PirFailoverTest, AllPairsDownIsTypedUnavailable) {
  SimClock clock;
  auto records = TestRecords(4, 3);
  auto client = FailoverPirClient::Build(records, 2, RetryPolicy{}, &clock, 7);
  ASSERT_TRUE(client.ok());
  for (size_t s = 0; s < 4; ++s) {
    client->InjectFault(s, PirServerFault{.crashed = true});
  }
  auto read = client->Read(0, Deadline());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
}

TEST(PirFailoverTest, CorruptAnswerIsDetectedNeverReturned) {
  SimClock clock;
  auto records = TestRecords(16, 6);
  auto client = FailoverPirClient::Build(records, 3, RetryPolicy{}, &clock, 11);
  ASSERT_TRUE(client.ok());
  // Pair 0's side B flips a byte in every answer. The checksum must catch
  // it and fail over; the caller sees only correct data or typed errors.
  client->InjectFault(1, PirServerFault{.corrupt_rate = 1.0});

  for (size_t i = 0; i < records.size(); ++i) {
    auto read = client->Read(i, Deadline());
    ASSERT_TRUE(read.ok()) << "record " << i;
    EXPECT_EQ(*read, records[i]);  // never silently corrupt
  }
  EXPECT_GT(client->corrupt_answers_detected(), 0u);
}

TEST(PirFailoverTest, DeadlineBoundsFailoverAttempts) {
  SimClock clock;
  auto records = TestRecords(4, 3);
  RetryPolicy retry;
  retry.initial_backoff_ticks = 4;
  auto client = FailoverPirClient::Build(records, 2, retry, &clock, 7);
  ASSERT_TRUE(client.ok());
  for (size_t s = 0; s < 4; ++s) {
    client->InjectFault(s, PirServerFault{.crashed = true});
  }
  // Enough budget for one backoff, not the full attempt ladder.
  auto read = client->Read(0, Deadline::After(clock, 5));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(PirFailoverTest, OutOfRangeIndexIsPermanent) {
  SimClock clock;
  auto records = TestRecords(4, 3);
  auto client = FailoverPirClient::Build(records, 1, RetryPolicy{}, &clock, 7);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client->Read(99, Deadline()).status().code(),
            StatusCode::kOutOfRange);
}

TEST(PirFailoverTest, RetriesUseFreshRandomnessPerPair) {
  // Failover re-issues the query with fresh selection vectors: the two
  // selections a single server observes across a retried read must differ
  // (with overwhelming probability), so its view stays blind.
  SimClock clock;
  auto records = TestRecords(64, 4);
  auto client = FailoverPirClient::Build(records, 1, RetryPolicy{}, &clock, 7);
  ASSERT_TRUE(client.ok());
  client->EnableObservationLogs(2);
  ASSERT_TRUE(client->Read(3, Deadline()).ok());
  ASSERT_TRUE(client->Read(3, Deadline()).ok());
  // Both reads went to pair 0 (only one pair). Each side saw two selection
  // vectors; identical ones would let the server diff queries over time.
  for (size_t side = 0; side < 2; ++side) {
    const auto& server = client->server(side);
    ASSERT_EQ(server.num_observed(), 2u);
    EXPECT_NE(server.observed_query(0), server.observed_query(1))
        << "server " << side;
  }
}

}  // namespace
}  // namespace tripriv
