// Fairness isolation under adversarial load: a tenant flooding at ~100x
// its fair share (and a slow-loris tenant poisoning queues with doomed
// deadlines) must be absorbed entirely by typed refusals charged to the
// abuser — well-behaved tenants keep their queues, their answers, and
// their p99, within a fixed bound of the no-flood baseline.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/instruments.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "service/traffic/simulator.h"
#include "service/traffic/traffic_profile.h"

namespace tripriv {
namespace traffic {
namespace {

// The three organic classes; kClassAbusive is the flood/loris surface and
// kClassUnattributed never occurs in generated traffic.
constexpr uint8_t kWellBehaved[] = {obs::kClassInteractive, obs::kClassBatch,
                                    obs::kClassAnalytics};

// Scheduler tuned so the overload path (not just queue_full) engages: the
// abusive class gets a deep queue but the global watermark sits well below
// it, so a flood drives total backlog over the line and overload shedding
// must pick its victim.
FairSchedulerConfig OverloadProneScheduler() {
  FairSchedulerConfig scheduler;
  scheduler.high_watermark = 128;
  scheduler.by_class[obs::kClassAbusive].queue_capacity = 512;
  return scheduler;
}

SimulatorConfig BaseConfig(const TrafficProfile& profile) {
  SimulatorConfig config;
  config.profile = profile;
  config.scheduler = OverloadProneScheduler();
  config.num_windows = 48;
  config.drain_windows = 8;
  config.table_rows = 128;
  return config;
}

#ifndef TRIPRIV_OBS_DISABLED
// p99 (bucket upper bound) of the per-class latency histogram, or 0 when
// the class saw no served traffic.
uint64_t ClassP99(const obs::MetricsSnapshot& snapshot,
                  const std::string& cls) {
  for (const auto& sample : snapshot.samples) {
    if (sample.name != "tripriv_traffic_latency_ticks") continue;
    for (const auto& [key, value] : sample.labels) {
      if (key == "class" && value == cls) {
        return obs::SloGate::QuantileUpperBound(sample.histogram, 0.99);
      }
    }
  }
  return 0;
}
#endif

TEST(TrafficFairnessTest, FloodIsAbsorbedByTypedRefusalsOnTheAbuser) {
  obs::MetricsRegistry registry;
  auto report = RunTrafficSimulation(BaseConfig(TrafficProfile::Flood(17)),
                                     /*pool=*/nullptr, &registry);
  ASSERT_TRUE(report.ok());

  const ClassTotals& abusive = report->by_class[obs::kClassAbusive];
  // The flood actually happened and the scheduler actually pushed back:
  // the abuser ate typed sheds, including the overload path.
  EXPECT_GT(abusive.arrivals, 1000u);
  EXPECT_GT(abusive.shed_queue_full + abusive.shed_overload, 0u);
  EXPECT_GT(abusive.shed_overload, 0u);

  // Bounded harm: no well-behaved request was shed to make room.
  for (uint8_t cls : kWellBehaved) {
    const ClassTotals& totals = report->by_class[cls];
    EXPECT_GT(totals.arrivals, 0u) << "class " << int(cls);
    EXPECT_EQ(totals.shed_overload, 0u) << "class " << int(cls);
    EXPECT_EQ(totals.shed_queue_full, 0u) << "class " << int(cls);
    EXPECT_EQ(totals.shed_deadline, 0u) << "class " << int(cls);
  }

  // Degradation ladder, not degradation of protection: everything served
  // left as exact, epsilon-DP, or a typed refusal — and shed + served
  // never exceeds what arrived (no request is invented or double-counted).
  for (size_t cls = 0; cls < obs::kNumTenantClasses; ++cls) {
    const ClassTotals& totals = report->by_class[cls];
    EXPECT_EQ(totals.protected_answers + totals.dp_answers + totals.refusals,
              totals.served)
        << "class " << cls;
    EXPECT_LE(totals.served + totals.shed_queue_full + totals.shed_overload +
                  totals.shed_deadline,
              totals.arrivals)
        << "class " << cls;
  }
}

TEST(TrafficFairnessTest, WellBehavedP99SurvivesTheFlood) {
  // Same scheduler, same organic seed, with and without the flooder.
  obs::MetricsRegistry baseline_registry;
  auto baseline =
      RunTrafficSimulation(BaseConfig(TrafficProfile::Steady(17)),
                           /*pool=*/nullptr, &baseline_registry);
  ASSERT_TRUE(baseline.ok());

  obs::MetricsRegistry flood_registry;
  auto flood = RunTrafficSimulation(BaseConfig(TrafficProfile::Flood(17)),
                                    /*pool=*/nullptr, &flood_registry);
  ASSERT_TRUE(flood.ok());

  // Well-behaved tenants keep getting real answers under the flood.
  for (uint8_t cls : kWellBehaved) {
    EXPECT_GT(flood->by_class[cls].served, 0u) << "class " << int(cls);
  }

#ifndef TRIPRIV_OBS_DISABLED
  // The isolation bound: flooded p99 within a fixed additive budget of the
  // no-flood baseline for every well-behaved class. The budget is a few
  // DRR rounds of extra queueing — what weighted sharing legitimately
  // costs — not the unbounded collapse an unfair scheduler would show.
  constexpr uint64_t kP99BudgetTicks = 64;
  const obs::MetricsSnapshot base_snap = baseline_registry.Snapshot();
  const obs::MetricsSnapshot flood_snap = flood_registry.Snapshot();
  const char* names[] = {"interactive", "batch", "analytics"};
  for (const char* cls : names) {
    const uint64_t base_p99 = ClassP99(base_snap, cls);
    const uint64_t flood_p99 = ClassP99(flood_snap, cls);
    ASSERT_NE(flood_p99, UINT64_MAX) << cls << " p99 escaped the buckets";
    EXPECT_LE(flood_p99, base_p99 + kP99BudgetTicks) << cls;
  }
#endif
}

TEST(TrafficFairnessTest, SlowLorisExpiresInQueueWithoutBackendWork) {
  obs::MetricsRegistry registry;
  auto report = RunTrafficSimulation(BaseConfig(TrafficProfile::SlowLoris(23)),
                                     /*pool=*/nullptr, &registry);
  ASSERT_TRUE(report.ok());

  // Doomed deadlines die at dispatch, charged to the loris tenant's class.
  const ClassTotals& abusive = report->by_class[obs::kClassAbusive];
  EXPECT_GT(abusive.arrivals, 0u);
  EXPECT_GT(abusive.shed_deadline, 0u);
  // And the poison stays contained: nobody else loses a deadline.
  for (uint8_t cls : kWellBehaved) {
    EXPECT_EQ(report->by_class[cls].shed_deadline, 0u) << "class " << int(cls);
  }
}

}  // namespace
}  // namespace traffic
}  // namespace tripriv
