// Parallel determinism suite (`ctest -L parallel`, the TSan CI leg's
// payload): for every parallel path added by the batch-execution subsystem,
// the same seed and the same batch must produce byte-identical answers,
// stats, observation rings, and audit WAL bytes at ANY thread count — the
// worker count may change wall-clock time and nothing else. The serial
// reference (pool of 0) anchors each comparison, so these tests pin the
// parallel paths to the exact transcripts the fault-injection and
// WAL-recovery suites replay.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pir/it_pir.h"
#include "querydb/query.h"
#include "sdc/microaggregation.h"
#include "service/batch_executor.h"
#include "service/pir_failover.h"
#include "service/query_service.h"
#include "table/datasets.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

const size_t kThreadCounts[] = {0, 1, 2, 8};

std::vector<std::vector<uint8_t>> MakeRecords(size_t n, size_t size,
                                              uint64_t seed) {
  std::vector<std::vector<uint8_t>> records(n, std::vector<uint8_t>(size));
  Rng rng(seed);
  for (auto& r : records) {
    for (auto& b : r) b = static_cast<uint8_t>(rng.NextU64());
  }
  return records;
}

TEST(ParallelDeterminismTest, ShardedAnswerIsBitIdenticalToSerial) {
  // 4096 x 16 B = 64 KiB crosses the parallel threshold, so the sharded
  // kernel actually runs; a non-multiple-of-8 record count exercises the
  // padding byte.
  auto records = MakeRecords(4093, 16, 11);
  auto server = XorPirServer::Create(records);
  ASSERT_TRUE(server.ok());
  Rng rng(12);
  for (int trial = 0; trial < 8; ++trial) {
    const auto selection = RandomSelectionBits(records.size(), &rng);
    const auto serial = server->ComputeAnswer(selection, nullptr);
    ASSERT_TRUE(serial.ok());
    for (size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      const auto sharded = server->ComputeAnswer(selection, &pool);
      ASSERT_TRUE(sharded.ok());
      EXPECT_EQ(*sharded, *serial) << "threads=" << threads;
    }
  }
}

TEST(ParallelDeterminismTest, BatchReadMatchesSerialLoopAtAnyThreadCount) {
  const size_t n = 1021;
  const size_t record_size = 24;
  auto records = MakeRecords(n, record_size, 21);
  std::vector<size_t> indices;
  Rng pick(22);
  for (int i = 0; i < 48; ++i) {
    indices.push_back(static_cast<size_t>(pick.UniformU64(n)));
  }

  // Serial reference: a TwoServerPirRead loop from seed 23.
  auto ref_a = XorPirServer::Create(records);
  auto ref_b = XorPirServer::Create(records);
  ASSERT_TRUE(ref_a.ok() && ref_b.ok());
  ref_a->EnableObservationLog(8);
  ref_b->EnableObservationLog(8);
  Rng ref_rng(23);
  std::vector<std::vector<uint8_t>> ref_answers;
  PirStats ref_stats;
  for (size_t index : indices) {
    PirStats step;
    auto got = TwoServerPirRead(&*ref_a, &*ref_b, index, &ref_rng, &step);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, records[index]);
    ref_answers.push_back(std::move(*got));
    ref_stats.upload_bits += step.upload_bits;
    ref_stats.download_bits += step.download_bits;
  }

  for (size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    auto a = XorPirServer::Create(records);
    auto b = XorPirServer::Create(records);
    ASSERT_TRUE(a.ok() && b.ok());
    a->EnableObservationLog(8);
    b->EnableObservationLog(8);
    Rng rng(23);
    PirStats stats;
    auto answers = TwoServerPirBatchRead(&*a, &*b, indices, &rng, &pool,
                                         &stats);
    ASSERT_TRUE(answers.ok());
    // Identical answers, communication accounting, counters, and
    // single-server views (the full bounded observation rings, entry by
    // entry) — the thread count is invisible in the transcript.
    EXPECT_EQ(*answers, ref_answers) << "threads=" << threads;
    EXPECT_EQ(stats.upload_bits, ref_stats.upload_bits);
    EXPECT_EQ(stats.download_bits, ref_stats.download_bits);
    EXPECT_EQ(a->queries_answered(), ref_a->queries_answered());
    EXPECT_EQ(b->queries_answered(), ref_b->queries_answered());
    ASSERT_EQ(a->num_observed(), ref_a->num_observed());
    for (size_t i = 0; i < a->num_observed(); ++i) {
      EXPECT_EQ(a->observed_query(i), ref_a->observed_query(i)) << i;
      EXPECT_EQ(b->observed_query(i), ref_b->observed_query(i)) << i;
    }
  }
}

TEST(ParallelDeterminismTest, FailoverReadBatchIsThreadCountInvariant) {
  // A corrupt server forces fast-path failures and serial-ladder fallbacks;
  // the whole transcript (answers, counters, clock, server views) must
  // still be independent of the worker count.
  auto records = MakeRecords(257, 12, 31);
  std::vector<size_t> indices;
  Rng pick(32);
  for (int i = 0; i < 24; ++i) {
    indices.push_back(static_cast<size_t>(pick.UniformU64(records.size())));
  }

  struct RunResult {
    std::vector<Status> codes;
    std::vector<std::vector<uint8_t>> payloads;
    size_t failovers = 0;
    size_t corrupt_detected = 0;
    uint64_t clock_now = 0;
    std::vector<uint64_t> queries_answered;
  };
  auto run = [&records, &indices](size_t threads) {
    SimClock clock;
    auto client =
        FailoverPirClient::Build(records, /*num_pairs=*/2, RetryPolicy{},
                                 &clock, /*seed=*/33);
    TRIPRIV_CHECK(client.ok());
    PirServerFault corrupt;
    corrupt.corrupt_rate = 1.0;
    client->InjectFault(1, corrupt);  // pair 0, side B: always corrupts
    ThreadPool pool(threads);
    RunResult out;
    auto results = client->ReadBatch(indices, Deadline(), &pool);
    for (size_t i = 0; i < results.size(); ++i) {
      out.codes.push_back(results[i].ok() ? Status::OK()
                                          : results[i].status());
      if (results[i].ok()) {
        TRIPRIV_CHECK(*results[i] == records[indices[i]]);
        out.payloads.push_back(*results[i]);
      }
    }
    out.failovers = client->failovers();
    out.corrupt_detected = client->corrupt_answers_detected();
    out.clock_now = clock.now();
    for (size_t s = 0; s < 4; ++s) {
      out.queries_answered.push_back(client->server(s).queries_answered());
    }
    return out;
  };

  const RunResult ref = run(0);
  EXPECT_GT(ref.corrupt_detected, 0u);  // the fault actually fired
  EXPECT_FALSE(ref.payloads.empty());
  for (size_t threads : {1u, 2u, 8u}) {
    const RunResult got = run(threads);
    ASSERT_EQ(got.codes.size(), ref.codes.size());
    for (size_t i = 0; i < ref.codes.size(); ++i) {
      EXPECT_EQ(got.codes[i].code(), ref.codes[i].code()) << i;
    }
    EXPECT_EQ(got.payloads, ref.payloads) << "threads=" << threads;
    EXPECT_EQ(got.failovers, ref.failovers);
    EXPECT_EQ(got.corrupt_detected, ref.corrupt_detected);
    EXPECT_EQ(got.clock_now, ref.clock_now);
    EXPECT_EQ(got.queries_answered, ref.queries_answered);
  }
}

StatQuery Parse(const std::string& sql) {
  auto query = ParseQuery(sql);
  TRIPRIV_CHECK(query.ok()) << sql;
  return std::move(query).value();
}

TEST(ParallelDeterminismTest, QueryBatchMatchesSerialSubmitByteForByte) {
  // The decisive comparison: the audit WAL a batched run commits must be
  // BYTE-identical to the serial run's — the WAL is what recovery replays,
  // so any divergence would let a thread count change post-crash behaviour.
  const std::vector<StatQuery> batch = {
      Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 172"),
      Parse("SELECT COUNT(*) FROM t WHERE weight > 80"),
      Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 171"),
      Parse("SELECT AVG(weight) FROM t WHERE height >= 160"),
      Parse("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105"),
      Parse("SELECT SUM(weight) FROM t WHERE blood_pressure > 100"),
  };
  QueryServiceConfig config;
  config.protection.mode = ProtectionMode::kAudit;
  config.protection.min_query_set_size = 2;
  config.faults.backend_fault_rate = 0.3;  // exercise the fault rng too

  // Serial reference: plain Submit calls.
  MemWalIo ref_wal;
  auto ref_service = QueryService::Create(PaperDataset2(), config, &ref_wal);
  ASSERT_TRUE(ref_service.ok());
  std::vector<ServiceAnswer> ref_answers;
  for (const auto& query : batch) ref_answers.push_back(ref_service->Submit(query));
  auto ref_bytes = ref_wal.ReadAll();
  ASSERT_TRUE(ref_bytes.ok());

  for (size_t threads : kThreadCounts) {
    MemWalIo wal;
    auto service = QueryService::Create(PaperDataset2(), config, &wal);
    ASSERT_TRUE(service.ok());
    ThreadPool pool(threads);
    BatchExecutor executor(&*service, &pool);
    const auto answers = executor.ExecuteQueryBatch(batch);

    ASSERT_EQ(answers.size(), ref_answers.size());
    for (size_t i = 0; i < answers.size(); ++i) {
      EXPECT_EQ(answers[i].tier, ref_answers[i].tier) << i;
      EXPECT_EQ(answers[i].query_id, ref_answers[i].query_id) << i;
      EXPECT_EQ(answers[i].refusal.code(), ref_answers[i].refusal.code()) << i;
      if (answers[i].tier != AnswerTier::kRefused) {
        EXPECT_DOUBLE_EQ(answers[i].answer.value, ref_answers[i].answer.value)
            << i;
      }
    }
    // Stats identical field by field.
    const ServiceStats& got = service->stats();
    const ServiceStats& want = ref_service->stats();
    EXPECT_EQ(got.received, want.received);
    EXPECT_EQ(got.protected_answers, want.protected_answers);
    EXPECT_EQ(got.dp_answers, want.dp_answers);
    EXPECT_EQ(got.refusals, want.refusals);
    EXPECT_EQ(got.policy_refusals, want.policy_refusals);
    EXPECT_EQ(got.shed, want.shed);
    EXPECT_EQ(got.degraded_attempts, want.degraded_attempts);
    EXPECT_EQ(got.wal_append_failures, want.wal_append_failures);
    // WAL bytes identical.
    auto bytes = wal.ReadAll();
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(*bytes, *ref_bytes) << "threads=" << threads;
    EXPECT_EQ(executor.stats().stat_queries, batch.size());
  }
}

TEST(ParallelDeterminismTest, ServicePirBatchIsThreadCountInvariant) {
  auto records = MakeRecords(128, 20, 41);
  const std::vector<size_t> indices = {5, 90, 5, 127, 0, 63};

  auto run = [&records, &indices](size_t threads) {
    MemWalIo wal;
    QueryServiceConfig config;
    auto service = QueryService::Create(PaperDataset2(), config, &wal);
    TRIPRIV_CHECK(service.ok());
    SimClock clock;
    auto pir = FailoverPirClient::Build(records, 2, RetryPolicy{}, &clock, 43);
    TRIPRIV_CHECK(pir.ok());
    service->AttachPirBackend(&*pir);
    ThreadPool pool(threads);
    BatchExecutor executor(&*service, &pool);
    auto results = executor.ExecutePirBatch(indices, Deadline());
    std::vector<std::vector<uint8_t>> payloads;
    for (auto& r : results) {
      TRIPRIV_CHECK(r.ok());
      payloads.push_back(std::move(*r));
    }
    return payloads;
  };

  const auto ref = run(0);
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(ref[i], records[indices[i]]) << i;
  }
  for (size_t threads : {1u, 2u, 8u}) {
    EXPECT_EQ(run(threads), ref) << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, MdavGroupingIsThreadCountInvariant) {
  // 5000 rows crosses the distance-scan parallel threshold for the first
  // MDAV iterations, so the sharded argmax and distance fill actually run.
  DataTable data = MakeClinicalTrial(5000, 7);
  const auto cols = data.schema().QuasiIdentifierIndices();
  ASSERT_FALSE(cols.empty());

  auto serial = MdavMicroaggregate(data, /*k=*/400, cols, nullptr);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    auto parallel = MdavMicroaggregate(data, /*k=*/400, cols, &pool);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->group_of_row, serial->group_of_row)
        << "threads=" << threads;
    EXPECT_EQ(parallel->num_groups, serial->num_groups);
    // Exact double equality is intentional: the parallel path must perform
    // the same arithmetic in the same order, not merely similar arithmetic.
    EXPECT_EQ(parallel->within_group_sse, serial->within_group_sse);
  }
}

}  // namespace
}  // namespace tripriv
