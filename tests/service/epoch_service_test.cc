// Tests for the epoch-versioned mutable protected database: bootstrap
// protection, flip application, the fail-closed privacy gate (old epoch
// keeps serving, pending writes survive), typed I/O refusals, write
// admission, WAL-driven recovery, and checksum-verified epoch adoption.

#include "service/epoch_service.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sdc/anonymity.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

EpochConfig SmallConfig() {
  EpochConfig config;
  config.k = 3;
  config.qi_cols = {0, 1};
  return config;
}

Result<EpochedDatabase> MakeDb(MemWalIo* wal, EpochStore* store,
                               size_t rows = 30,
                               EpochConfig config = SmallConfig()) {
  return EpochedDatabase::Create(MakeClinicalTrial(rows, 5), std::move(config),
                                 wal, store);
}

TEST(EpochServiceTest, BootstrapProtectsAndJournalsEpochOne) {
  MemWalIo wal;
  EpochStore store;
  auto db = MakeDb(&wal, &store);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  EXPECT_EQ(db->epoch(), 1u);
  PinnedEpoch pinned = db->Pin();
  EXPECT_TRUE(IsKAnonymous(pinned->protected_table, 3, {0, 1}));
  EXPECT_EQ(pinned->protected_checksum,
            TableChecksum(pinned->protected_table));

  // Begin + commit journaled; the durable image matches the WAL digest.
  auto recovered = AuditWal::Recover(&wal);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->records.size(), 2u);
  EXPECT_EQ(recovered->records[0].type, WalRecordType::kEpochFlipBegin);
  EXPECT_EQ(recovered->records[1].type, WalRecordType::kEpochFlipCommit);
  EXPECT_EQ(recovered->records[1].query_id, 1u);
  ASSERT_NE(store.Get(1), nullptr);
  EXPECT_EQ(TableChecksum(store.Get(1)->protected_table),
            recovered->records[1].query_fingerprint);
}

TEST(EpochServiceTest, UnprotectableInitialBaseRefusesToStart) {
  MemWalIo wal;
  EpochStore store;
  auto db = MakeDb(&wal, &store, /*rows=*/2);
  EXPECT_EQ(db.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EpochServiceTest, FlipAppliesMutationsAndOldPinStaysFrozen) {
  MemWalIo wal;
  EpochStore store;
  auto db = MakeDb(&wal, &store);
  ASSERT_TRUE(db.ok());
  PinnedEpoch before = db->Pin();

  ASSERT_TRUE(db->SubmitMutation(
                    RowMutation::Insert({170, 74, 151, "N"}))
                  .ok());
  ASSERT_TRUE(db->SubmitMutation(
                    RowMutation::Insert({168, 70, 148, "Y"}))
                  .ok());
  ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(3)).ok());
  ASSERT_TRUE(
      db->SubmitMutation(RowMutation::Update(7, {180, 88, 160, "N"})).ok());

  auto flipped = db->Flip();
  ASSERT_TRUE(flipped.ok()) << flipped.status().ToString();
  EXPECT_EQ(*flipped, 2u);
  EXPECT_EQ(db->epoch(), 2u);
  EXPECT_EQ(db->pending_mutations(), 0u);

  PinnedEpoch after = db->Pin();
  EXPECT_EQ(after->base.num_rows(), 31u);  // 30 + 2 - 1
  EXPECT_TRUE(IsKAnonymous(after->protected_table, 3, {0, 1}));
  // The pre-flip pin still reads the old epoch, bit for bit.
  EXPECT_EQ(before->epoch, 1u);
  EXPECT_EQ(before->base.num_rows(), 30u);
  EXPECT_EQ(db->stats().flips_committed, 1u);
  EXPECT_EQ(db->stats().mutations_applied, 4u);
}

TEST(EpochServiceTest, PrivacyGateRefusalKeepsOldEpochAndPendingWrites) {
  MemWalIo wal;
  EpochStore store;
  EpochConfig config = SmallConfig();
  config.k = 4;
  auto db = MakeDb(&wal, &store, 9, config);  // 9 rows: 2 groups of 4..5
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  // Deleting 3 rows leaves 6 < 2k: some group must drop below k, OR the
  // maintainer squeezes to one group of 6 (>= k). Delete down to < k rows
  // to make the refusal unconditional.
  for (uint64_t uid : {0u, 1u, 2u, 3u, 4u, 5u}) {
    ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(uid)).ok());
  }
  const size_t pending_before = db->pending_mutations();
  auto flipped = db->Flip();
  EXPECT_EQ(flipped.status().code(), StatusCode::kFailedPrecondition);

  // Fail closed: old epoch serves, writes stay pending, refusal journaled.
  EXPECT_EQ(db->epoch(), 1u);
  EXPECT_EQ(db->pending_mutations(), pending_before);
  EXPECT_EQ(db->stats().flips_refused_privacy, 1u);
  EXPECT_TRUE(IsKAnonymous(db->Pin()->protected_table, 4, {0, 1}));
  auto recovered = AuditWal::Recover(&wal);
  ASSERT_TRUE(recovered.ok());
  const WalRecord& last = recovered->records.back();
  EXPECT_EQ(last.type, WalRecordType::kEpochFlipAbort);
  EXPECT_EQ(last.query_id, 2u);
  EXPECT_EQ(static_cast<WalFlipAbortReason>(last.decision),
            WalFlipAbortReason::kPrivacyGate);

  // Covering inserts rescue the same pending deletes: the retry commits.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db->SubmitMutation(
                      RowMutation::Insert({170 + i, 70 + i, 150, "N"}))
                    .ok());
  }
  auto retry = db->Flip();
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(db->epoch(), 2u);
  EXPECT_EQ(db->Pin()->base.num_rows(), 6u);  // 9 - 6 + 3
}

TEST(EpochServiceTest, DeletingEveryRowIsAGateRefusalNotAPoisonedBatch) {
  MemWalIo wal;
  EpochStore store;
  auto db = MakeDb(&wal, &store, 9);
  ASSERT_TRUE(db.ok());
  for (uint64_t uid = 0; uid < 9; ++uid) {
    ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(uid)).ok());
  }
  auto flipped = db->Flip();
  EXPECT_EQ(flipped.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db->epoch(), 1u);
  EXPECT_EQ(db->pending_mutations(), 9u);  // kept for a covering retry
  EXPECT_EQ(db->stats().flips_refused_privacy, 1u);
}

TEST(EpochServiceTest, PoisonedBatchIsDroppedWithItsTypedError) {
  MemWalIo wal;
  EpochStore store;
  auto db = MakeDb(&wal, &store);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(999)).ok());
  auto flipped = db->Flip();
  EXPECT_EQ(flipped.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db->epoch(), 1u);
  // Retrying a poisoned batch can never succeed: it is dropped.
  EXPECT_EQ(db->pending_mutations(), 0u);
  EXPECT_EQ(db->stats().flips_refused_io, 1u);
  // The database still flips cleanly afterwards.
  ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(0)).ok());
  EXPECT_TRUE(db->Flip().ok());
}

TEST(EpochServiceTest, StoreSyncFaultIsATypedIoRefusal) {
  MemWalIo wal;
  EpochStore store;
  auto db = MakeDb(&wal, &store);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(0)).ok());

  store.set_fail_syncs(true);
  auto flipped = db->Flip();
  EXPECT_EQ(flipped.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(db->epoch(), 1u);
  EXPECT_EQ(db->pending_mutations(), 1u);  // the write is not lost
  EXPECT_EQ(db->stats().flips_refused_io, 1u);
  // The failed candidate image was garbage-collected.
  EXPECT_EQ(store.Epochs(), (std::vector<uint64_t>{1}));

  store.set_fail_syncs(false);
  auto retry = db->Flip();
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(db->Pin()->base.num_rows(), 29u);
}

TEST(EpochServiceTest, AdmissionShedsBeyondThePendingBound) {
  MemWalIo wal;
  EpochStore store;
  EpochConfig config = SmallConfig();
  config.max_pending_mutations = 2;
  auto db = MakeDb(&wal, &store, 30, config);
  ASSERT_TRUE(db.ok());

  ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(0)).ok());
  ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(1)).ok());
  auto shed = db->SubmitMutation(RowMutation::Delete(2));
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(db->stats().mutations_admitted, 2u);
  EXPECT_EQ(db->stats().mutations_shed, 1u);
  // A flip drains the buffer and re-opens admission.
  ASSERT_TRUE(db->Flip().ok());
  EXPECT_TRUE(db->SubmitMutation(RowMutation::Delete(2)).ok());
}

TEST(EpochServiceTest, RecoveryAdoptsTheLastCommittedEpoch) {
  MemWalIo wal;
  EpochStore store;
  uint64_t expected_checksum = 0;
  {
    auto db = MakeDb(&wal, &store);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(2)).ok());
    ASSERT_TRUE(db->Flip().ok());
    ASSERT_TRUE(
        db->SubmitMutation(RowMutation::Insert({172, 80, 144, "N"})).ok());
    ASSERT_TRUE(db->Flip().ok());
    expected_checksum = db->Pin()->protected_checksum;
  }

  // Reboot over the surviving WAL + store. The initial base is ignored.
  auto db = EpochedDatabase::Create(MakeClinicalTrial(5, 99), SmallConfig(),
                                    &wal, &store);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->epoch(), 3u);
  EXPECT_EQ(db->stats().recovered_epoch, 3u);
  EXPECT_EQ(db->Pin()->protected_checksum, expected_checksum);
  EXPECT_EQ(db->Pin()->base.num_rows(), 30u);  // 30 - 1 + 1
  // Recovery GC'd everything but the adopted image.
  EXPECT_EQ(store.Epochs(), (std::vector<uint64_t>{3}));
  // Mutations continue: uid allocation resumed past the recovered epoch.
  ASSERT_TRUE(
      db->SubmitMutation(RowMutation::Insert({169, 71, 152, "Y"})).ok());
  auto flipped = db->Flip();
  ASSERT_TRUE(flipped.ok());
  EXPECT_EQ(*flipped, 4u);
}

TEST(EpochServiceTest, CorruptStoreImageFailsRecoveryClosed) {
  MemWalIo wal;
  EpochStore store;
  {
    auto db = MakeDb(&wal, &store);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(0)).ok());
    ASSERT_TRUE(db->Flip().ok());
  }
  // Swap the committed image for a tampered one: same epoch number,
  // different bytes. Adoption must refuse — serving an image that fails
  // its journaled digest would serve unverified data.
  auto forged = std::make_shared<EpochData>();
  forged->epoch = 2;
  forged->protected_table = MakeClinicalTrial(8, 1);
  store.Erase(2);
  store.Put(forged);
  ASSERT_TRUE(store.Sync().ok());

  auto db = MakeDb(&wal, &store);
  EXPECT_EQ(db.status().code(), StatusCode::kInternal);
}

TEST(EpochServiceTest, MissingStoreImageFailsRecoveryClosed) {
  MemWalIo wal;
  EpochStore store;
  {
    auto db = MakeDb(&wal, &store);
    ASSERT_TRUE(db.ok());
  }
  store.Erase(1);
  auto db = MakeDb(&wal, &store);
  EXPECT_EQ(db.status().code(), StatusCode::kInternal);
}

TEST(EpochServiceTest, FlipChargesTheDeterministicCostModel) {
  MemWalIo wal;
  EpochStore store;
  auto db = MakeDb(&wal, &store);
  ASSERT_TRUE(db.ok());
  const uint64_t after_bootstrap = db->sim_clock()->now();
  ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(5)).ok());
  ASSERT_TRUE(db->Flip().ok());
  const uint64_t flip_cost = db->sim_clock()->now() - after_bootstrap;
  EXPECT_EQ(flip_cost, db->config().flip_base_ticks +
                           db->config().flip_ticks_per_row *
                               db->stats().rows_reclustered_total);
}

}  // namespace
}  // namespace tripriv
