// Tests for the bounded-queue admission controller: shedding at capacity,
// typed kResourceExhausted, drain on simulated time, and parallelism.

#include "service/admission.h"

#include <gtest/gtest.h>

namespace tripriv {
namespace {

TEST(AdmissionTest, AdmitsUpToCapacityThenSheds) {
  SimClock clock;
  AdmissionConfig config;
  config.capacity = 3;
  config.service_ticks = 10;
  AdmissionController admission(config, &clock);

  EXPECT_TRUE(admission.Admit().ok());
  EXPECT_TRUE(admission.Admit().ok());
  EXPECT_TRUE(admission.Admit().ok());
  Status shed = admission.Admit();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(shed.transient());  // callers may retry after backing off
  EXPECT_EQ(admission.admitted(), 3u);
  EXPECT_EQ(admission.shed(), 1u);
  EXPECT_EQ(admission.in_system(), 3u);
}

TEST(AdmissionTest, QueueDrainsAsSimulatedTimePasses) {
  SimClock clock;
  AdmissionConfig config;
  config.capacity = 2;
  config.service_ticks = 5;
  config.parallelism = 1;
  AdmissionController admission(config, &clock);

  ASSERT_TRUE(admission.Admit().ok());  // finishes at tick 5
  ASSERT_TRUE(admission.Admit().ok());  // queued; finishes at tick 10
  ASSERT_FALSE(admission.Admit().ok());

  clock.Advance(5);  // first request done
  EXPECT_EQ(admission.in_system(), 1u);
  EXPECT_TRUE(admission.Admit().ok());  // slot freed

  clock.Advance(100);  // everything done
  EXPECT_EQ(admission.in_system(), 0u);
  EXPECT_TRUE(admission.Admit().ok());
}

TEST(AdmissionTest, ParallelWorkersServeConcurrently) {
  SimClock clock;
  AdmissionConfig config;
  config.capacity = 4;
  config.service_ticks = 8;
  config.parallelism = 2;
  AdmissionController admission(config, &clock);

  // Two run immediately (finish at 8), two queue behind them (finish 16).
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(admission.Admit().ok());
  ASSERT_FALSE(admission.Admit().ok());

  clock.Advance(8);
  EXPECT_EQ(admission.in_system(), 2u);  // both workers freed together
  EXPECT_TRUE(admission.Admit().ok());
  EXPECT_TRUE(admission.Admit().ok());
  ASSERT_FALSE(admission.Admit().ok());
}

TEST(AdmissionTest, SheddingIsWorkConserving) {
  // Shed requests must not occupy queue state: after a burst sheds, the
  // same simulated instant still has the full configured capacity serving.
  SimClock clock;
  AdmissionConfig config;
  config.capacity = 2;
  config.service_ticks = 4;
  AdmissionController admission(config, &clock);
  ASSERT_TRUE(admission.Admit().ok());
  ASSERT_TRUE(admission.Admit().ok());
  for (int i = 0; i < 10; ++i) ASSERT_FALSE(admission.Admit().ok());
  EXPECT_EQ(admission.in_system(), 2u);
  EXPECT_EQ(admission.shed(), 10u);
  clock.Advance(8);
  EXPECT_EQ(admission.in_system(), 0u);
}

}  // namespace
}  // namespace tripriv
