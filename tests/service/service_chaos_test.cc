// Chaos suite for the query service (ISSUE: robustness). Seed-deterministic
// workloads run against seed-deterministic adversity — backend drops,
// crashes mid-answer, WAL short writes and sync failures, torn log tails,
// load bursts — and four invariants must hold in every run:
//
//   1. every outcome is a protected answer, a DP-degraded answer, or a
//      TYPED refusal — never an unprotected value, never a CHECK-abort;
//   2. faults only turn answers into refusals: whatever a faulty run
//      answers, the healthy run over the same workload answered too, and a
//      healthy policy refusal is refused in every faulty run;
//   3. audit safety of acknowledged answers: every pair of answered query
//      sets has an empty or >= t symmetric difference, and sizes stay in
//      [t, n - t], even across crashes, restarts, and WAL faults;
//   4. monotone recovery: after any crash + restart, the recovered audit
//      state and epsilon spend cover every answer a client ever saw.
//
// Run on its own with `ctest -L chaos`.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include "service/query_service.h"
#include "table/datasets.h"
#include "util/random.h"

namespace tripriv {
namespace {

constexpr size_t kTableRows = 48;
constexpr size_t kMinSetSize = 3;

DataTable ChaosTable() { return MakeClinicalTrial(kTableRows, 5); }

// Seed-deterministic COUNT/SUM threshold queries. COUNT and SUM never fail
// semantically (SUM over an empty selection is 0), so in a fault-free run
// "answered" coincides exactly with "policy admitted" — the property the
// subset invariant below leans on. AVG is deliberately absent: it errors on
// empty selections, which would let a degraded DP path "answer" a query the
// healthy run refused for non-policy reasons.
std::vector<StatQuery> MakeWorkload(size_t n, uint64_t seed) {
  Rng rng(seed);
  const struct {
    const char* attr;
    int64_t lo;
    int64_t hi;
  } dims[] = {{"height", 150, 195},
              {"weight", 45, 115},
              {"blood_pressure", 135, 185}};
  std::vector<StatQuery> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    StatQuery query;
    query.table = "trial";
    if (rng.Bernoulli(0.5)) {
      query.fn = AggregateFn::kSum;
      query.attribute = "blood_pressure";
    }
    const auto& dim = dims[rng.UniformU64(3)];
    const int64_t threshold =
        dim.lo + static_cast<int64_t>(
                     rng.UniformU64(static_cast<uint64_t>(dim.hi - dim.lo)));
    query.where = Predicate::Compare(
        dim.attr, rng.Bernoulli(0.5) ? CompareOp::kLt : CompareOp::kGe,
        Value(threshold));
    queries.push_back(std::move(query));
  }
  return queries;
}

QueryServiceConfig BaseConfig() {
  QueryServiceConfig config;
  config.protection.mode = ProtectionMode::kAudit;
  config.protection.min_query_set_size = kMinSetSize;
  config.degrade_epsilon = 0.5;
  config.epsilon_budget = 64.0;
  // Generous queue: overload is exercised by its own test below.
  config.admission.capacity = 1024;
  config.admission.service_ticks = 1;
  return config;
}

std::vector<size_t> QuerySet(const DataTable& table, const StatQuery& query) {
  auto rows = query.where.MatchingRows(table);
  TRIPRIV_CHECK(rows.ok());
  return *rows;
}

bool Answered(const ServiceAnswer& outcome) {
  return outcome.tier != AnswerTier::kRefused;
}

// Invariant 1: a refusal carries a real status; an answer carries none.
void ExpectTyped(const ServiceAnswer& outcome, size_t index) {
  if (Answered(outcome)) {
    EXPECT_TRUE(outcome.refusal.ok()) << "query " << index;
    EXPECT_FALSE(outcome.answer.refused) << "query " << index;
  } else {
    EXPECT_FALSE(outcome.refusal.ok())
        << "query " << index << ": untyped refusal";
  }
}

// Invariant 3 over the query sets of all acknowledged answers.
void ExpectPairwiseAuditSafe(const std::vector<std::vector<size_t>>& sets) {
  for (const auto& set : sets) {
    EXPECT_GE(set.size(), kMinSetSize);
    EXPECT_LE(set.size(), kTableRows - kMinSetSize);
  }
  for (size_t i = 0; i < sets.size(); ++i) {
    for (size_t j = i + 1; j < sets.size(); ++j) {
      std::vector<size_t> sym_diff;
      std::set_symmetric_difference(sets[i].begin(), sets[i].end(),
                                    sets[j].begin(), sets[j].end(),
                                    std::back_inserter(sym_diff));
      EXPECT_TRUE(sym_diff.empty() || sym_diff.size() >= kMinSetSize)
          << "answered sets " << i << " and " << j << " differ in "
          << sym_diff.size() << " records — an audit-rule violation";
    }
  }
}

// Runs `workload` to completion, restarting the service (after dropping
// unsynced bytes from `crash_device`) whenever a fault plan crashes it.
struct RunResult {
  std::vector<ServiceAnswer> outcomes;
  size_t crashes = 0;
  ServiceStats total_stats;  ///< summed over every incarnation
  double final_epsilon_spent = 0.0;
  std::vector<std::vector<size_t>> final_answered_sets;
};

void Accumulate(const ServiceStats& stats, ServiceStats* total) {
  total->received += stats.received;
  total->protected_answers += stats.protected_answers;
  total->dp_answers += stats.dp_answers;
  total->refusals += stats.refusals;
  total->policy_refusals += stats.policy_refusals;
  total->shed += stats.shed;
  total->degraded_attempts += stats.degraded_attempts;
  total->wal_append_failures += stats.wal_append_failures;
}

RunResult RunWithRestarts(const DataTable& table,
                          const QueryServiceConfig& config, WalIo* io,
                          MemWalIo* crash_device,
                          const std::vector<StatQuery>& workload) {
  RunResult result;
  auto service = QueryService::Create(table, config, io);
  TRIPRIV_CHECK(service.ok()) << service.status().ToString();
  for (const auto& query : workload) {
    if (service->crashed()) {
      ++result.crashes;
      Accumulate(service->stats(), &result.total_stats);
      crash_device->SimulateCrash();
      service = QueryService::Create(table, config, io);
      TRIPRIV_CHECK(service.ok()) << service.status().ToString();
    }
    result.outcomes.push_back(service->Submit(query));
  }
  Accumulate(service->stats(), &result.total_stats);
  result.final_epsilon_spent = service->epsilon_spent();
  result.final_answered_sets = service->audit_policy().answered_sets();
  return result;
}

TEST(ServiceChaosTest, EveryOutcomeIsTypedUnderBackendFaults) {
  const DataTable table = ChaosTable();
  const auto workload = MakeWorkload(60, 21);
  QueryServiceConfig config = BaseConfig();
  config.faults.backend_fault_rate = 0.4;
  config.faults.dp_fault_rate = 0.3;
  MemWalIo io;
  auto result = RunWithRestarts(table, config, &io, &io, workload);

  ASSERT_EQ(result.outcomes.size(), workload.size());
  for (size_t i = 0; i < result.outcomes.size(); ++i) {
    ExpectTyped(result.outcomes[i], i);
  }
  // The fault rates actually exercised both ladder rungs.
  EXPECT_GT(result.total_stats.degraded_attempts, 0u);
  EXPECT_GT(result.total_stats.dp_answers, 0u);
  // The stats ledger balances: every request is answered or refused.
  EXPECT_EQ(result.total_stats.received,
            result.total_stats.protected_answers +
                result.total_stats.dp_answers + result.total_stats.refusals);
}

TEST(ServiceChaosTest, FaultsOnlyTurnAnswersIntoRefusals) {
  const DataTable table = ChaosTable();
  const auto workload = MakeWorkload(60, 22);
  const QueryServiceConfig healthy_config = BaseConfig();
  MemWalIo healthy_io;
  const auto healthy =
      RunWithRestarts(table, healthy_config, &healthy_io, &healthy_io,
                      workload);
  ASSERT_EQ(healthy.crashes, 0u);

  QueryServiceConfig faulty_config = BaseConfig();
  faulty_config.faults.backend_fault_rate = 0.5;
  faulty_config.faults.dp_fault_rate = 0.4;
  MemWalIo faulty_io;
  const auto faulty =
      RunWithRestarts(table, faulty_config, &faulty_io, &faulty_io, workload);

  for (size_t i = 0; i < workload.size(); ++i) {
    if (Answered(faulty.outcomes[i])) {
      // Invariant 2: a faulty answer implies a healthy answer. The policy
      // stage runs before any fault can strike, so its verdict is
      // identical in both runs.
      EXPECT_TRUE(Answered(healthy.outcomes[i]))
          << "query " << i << " answered under faults but refused healthy";
    }
    if (faulty.outcomes[i].tier == AnswerTier::kProtected) {
      // Exact answers are exact regardless of the faults around them.
      EXPECT_EQ(faulty.outcomes[i].answer.value,
                healthy.outcomes[i].answer.value)
          << "query " << i;
    }
    if (!Answered(healthy.outcomes[i]) &&
        healthy.outcomes[i].refusal.code() == StatusCode::kPermissionDenied) {
      // A healthy policy refusal stays refused no matter what breaks.
      EXPECT_FALSE(Answered(faulty.outcomes[i])) << "query " << i;
    }
  }
}

TEST(ServiceChaosTest, ChaosIsSeedDeterministic) {
  const DataTable table = ChaosTable();
  const auto workload = MakeWorkload(40, 23);
  QueryServiceConfig config = BaseConfig();
  config.faults.backend_fault_rate = 0.3;
  config.faults.crash_mid_answer_rate = 0.1;

  auto run = [&] {
    MemWalIo io;
    return RunWithRestarts(table, config, &io, &io, workload);
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.outcomes.size(), second.outcomes.size());
  for (size_t i = 0; i < first.outcomes.size(); ++i) {
    EXPECT_EQ(first.outcomes[i].tier, second.outcomes[i].tier) << i;
    EXPECT_EQ(first.outcomes[i].refusal.code(),
              second.outcomes[i].refusal.code())
        << i;
    EXPECT_EQ(first.outcomes[i].answer.value, second.outcomes[i].answer.value)
        << i;
  }
  EXPECT_EQ(first.crashes, second.crashes);
  EXPECT_EQ(first.final_epsilon_spent, second.final_epsilon_spent);
}

TEST(ServiceChaosTest, CrashRecoveryIsMonotone) {
  const DataTable table = ChaosTable();
  const auto workload = MakeWorkload(80, 24);
  QueryServiceConfig config = BaseConfig();
  config.faults.crash_mid_answer_rate = 0.15;
  config.faults.backend_fault_rate = 0.2;
  MemWalIo io;
  const auto result = RunWithRestarts(table, config, &io, &io, workload);
  ASSERT_GT(result.crashes, 0u) << "the chaos plan never crashed: tune seeds";

  // Invariant 4a: every acknowledged answer's admit decision is durable —
  // it survives every crash into the final recovered log.
  auto recovered = AuditWal::Recover(&io);
  ASSERT_TRUE(recovered.ok());
  std::vector<uint64_t> durable_admits;
  for (const auto& record : recovered->records) {
    if (record.type == WalRecordType::kDecision &&
        record.decision == WalDecision::kAdmitted) {
      durable_admits.push_back(record.query_id);
    }
  }
  std::vector<std::vector<size_t>> acked_sets;
  size_t acked_dp = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (!Answered(result.outcomes[i])) continue;
    EXPECT_NE(std::find(durable_admits.begin(), durable_admits.end(),
                        result.outcomes[i].query_id),
              durable_admits.end())
        << "acked query " << i << " (id " << result.outcomes[i].query_id
        << ") has no durable admit record";
    acked_sets.push_back(QuerySet(table, workload[i]));
    if (result.outcomes[i].tier == AnswerTier::kDpDegraded) ++acked_dp;
  }

  // Invariant 4b: the final audit state covers every acked answer...
  for (const auto& set : acked_sets) {
    EXPECT_NE(std::find(result.final_answered_sets.begin(),
                        result.final_answered_sets.end(), set),
              result.final_answered_sets.end());
  }
  // ...and the recovered epsilon spend covers every acked DP answer.
  EXPECT_GE(result.final_epsilon_spent,
            config.degrade_epsilon * static_cast<double>(acked_dp) - 1e-9);
  EXPECT_LE(result.final_epsilon_spent, config.epsilon_budget + 1e-9);

  // Invariant 3 held across all the restarts.
  ExpectPairwiseAuditSafe(acked_sets);
}

TEST(ServiceChaosTest, WalFaultsNeverLeakUnauditedAnswers) {
  const DataTable table = ChaosTable();
  const auto workload = MakeWorkload(80, 25);
  QueryServiceConfig config = BaseConfig();
  config.faults.crash_mid_answer_rate = 0.08;
  MemWalIo device;
  WalFaultPlan wal_faults;
  wal_faults.short_write_rate = 0.25;
  wal_faults.sync_fail_rate = 0.15;
  FaultyWalIo io(&device, wal_faults);
  const auto result = RunWithRestarts(table, config, &io, &device, workload);

  for (size_t i = 0; i < result.outcomes.size(); ++i) {
    ExpectTyped(result.outcomes[i], i);
  }
  // The I/O fault plan actually bit, and each bite forced a refusal.
  EXPECT_GT(result.total_stats.wal_append_failures, 0u);

  // Ack-after-commit: even under short writes and failed syncs, every
  // acknowledged answer has a durable admit record on the raw device.
  auto recovered = AuditWal::Recover(&device);
  ASSERT_TRUE(recovered.ok());
  std::vector<uint64_t> durable_admits;
  for (const auto& record : recovered->records) {
    if (record.type == WalRecordType::kDecision &&
        record.decision == WalDecision::kAdmitted) {
      durable_admits.push_back(record.query_id);
    }
  }
  std::vector<std::vector<size_t>> acked_sets;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (!Answered(result.outcomes[i])) continue;
    EXPECT_NE(std::find(durable_admits.begin(), durable_admits.end(),
                        result.outcomes[i].query_id),
              durable_admits.end())
        << "acked query " << i << " not durable despite ack-after-commit";
    acked_sets.push_back(QuerySet(table, workload[i]));
  }
  ExpectPairwiseAuditSafe(acked_sets);
  EXPECT_LE(result.final_epsilon_spent, config.epsilon_budget + 1e-9);
}

TEST(ServiceChaosTest, CorruptUnsyncedTailIsDiscardedOnRecovery) {
  const DataTable table = ChaosTable();
  const auto workload = MakeWorkload(30, 26);
  const QueryServiceConfig config = BaseConfig();
  MemWalIo io;
  const auto before = RunWithRestarts(table, config, &io, &io, workload);
  std::vector<std::vector<size_t>> acked_sets;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (Answered(before.outcomes[i])) {
      acked_sets.push_back(QuerySet(table, workload[i]));
    }
  }
  ASSERT_FALSE(acked_sets.empty());

  // Power loss mid-append: a torn frame (valid-looking header, truncated
  // payload) lands after the last durable record, and bit-rot flips a byte
  // in it for good measure. Only this unsynced suffix is damaged — acked
  // records are durable by ack-after-commit.
  const size_t durable_bytes = io.size();
  auto appended = io.Append({0x40, 0x00, 0x00, 0x00, 0xAB, 0xCD, 0xEF});
  ASSERT_TRUE(appended.ok());
  io.CorruptByte(io.size() - 1);

  // Recovery truncates exactly the torn tail and keeps every acked record.
  auto recovered = AuditWal::Recover(&io);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(io.size(), durable_bytes);

  // The restarted service still refuses overlaps with the old answers:
  // re-submitting an acked query minus one record must be refused.
  auto service = QueryService::Create(table, config, &io);
  ASSERT_TRUE(service.ok());
  for (const auto& set : acked_sets) {
    EXPECT_NE(std::find(service->audit_policy().answered_sets().begin(),
                        service->audit_policy().answered_sets().end(), set),
              service->audit_policy().answered_sets().end());
  }
  const auto more = MakeWorkload(30, 27);
  std::vector<std::vector<size_t>> all_acked = acked_sets;
  for (const auto& query : more) {
    if (Answered(service->Submit(query))) {
      all_acked.push_back(QuerySet(table, query));
    }
  }
  ExpectPairwiseAuditSafe(all_acked);
}

TEST(ServiceChaosTest, OverloadBurstShedsTypedAndRecovers) {
  const DataTable table = ChaosTable();
  QueryServiceConfig config = BaseConfig();
  config.admission.capacity = 2;
  config.admission.service_ticks = 512;
  MemWalIo io;
  auto service = QueryService::Create(table, config, &io);
  ASSERT_TRUE(service.ok());

  // One mid-size query repeated: identical query sets have an empty
  // symmetric difference, so the policy admits every repetition and the
  // only refusals can come from load shedding.
  StatQuery query;
  query.table = "trial";
  query.where = Predicate::Compare("height", CompareOp::kLt, Value(172));

  size_t answered = 0;
  size_t shed = 0;
  for (int i = 0; i < 12; ++i) {
    const ServiceAnswer outcome = service->Submit(query);
    if (Answered(outcome)) {
      ++answered;
    } else {
      EXPECT_EQ(outcome.refusal.code(), StatusCode::kResourceExhausted);
      EXPECT_TRUE(outcome.refusal.transient());
      ++shed;
    }
  }
  EXPECT_EQ(answered, 2u);  // the queue held exactly `capacity` requests
  EXPECT_EQ(shed, 10u);
  EXPECT_EQ(service->stats().shed, 10u);

  // Monotone recovery of availability: once the queue drains with
  // simulated time, the same client is served again.
  service->sim_clock()->Advance(2 * 512);
  EXPECT_TRUE(Answered(service->Submit(query)));
}

}  // namespace
}  // namespace tripriv
