// Chaos suite for epoch flips: kill the WAL device at EVERY append
// boundary of a multi-flip run (plus short-write storms and store-sync
// faults), crash, recover — and prove recovery lands on exactly the old or
// the new epoch, never a torn hybrid, with the recovered table matching
// the byte checksum the writer recorded for that epoch.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "service/epoch_service.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

EpochConfig ChaosConfig() {
  EpochConfig config;
  config.k = 3;
  config.qi_cols = {0, 1};
  return config;
}

/// One deterministic mutation script step for flip `i` against a database
/// whose uids started at 0..rows-1. Every step updates two rows (always
/// present: uids 0 and 1 are never deleted) so each flip has real work.
std::vector<RowMutation> ScriptStep(int i) {
  return {
      RowMutation::Update(0, {170 + (i % 7), 70 + (i % 5), 150, "N"}),
      RowMutation::Update(1, {160 + (i % 9), 62 + (i % 3), 141, "Y"}),
  };
}

/// Drives up to `flips` flips, recording (epoch, checksum) per commit.
/// Stops early once the device dies. Returns the committed trajectory.
std::map<uint64_t, uint64_t> Drive(EpochedDatabase* db, int flips) {
  std::map<uint64_t, uint64_t> committed;
  {
    PinnedEpoch pinned = db->Pin();
    committed[pinned->epoch] = pinned->protected_checksum;
  }
  for (int i = 0; i < flips; ++i) {
    for (RowMutation& m : ScriptStep(i)) {
      if (!db->SubmitMutation(std::move(m)).ok()) return committed;
    }
    auto flipped = db->Flip();
    if (!flipped.ok()) continue;  // refused: old epoch still serving
    PinnedEpoch pinned = db->Pin();
    committed[pinned->epoch] = pinned->protected_checksum;
  }
  return committed;
}

/// Crash + reboot: recovery must adopt exactly the last committed epoch of
/// the trajectory, and its image must match that epoch's checksum.
void ExpectExactRecovery(MemWalIo* device, EpochStore* store,
                         const std::map<uint64_t, uint64_t>& committed,
                         const char* context) {
  device->SimulateCrash();
  store->SimulateCrash();
  auto recovered = EpochedDatabase::Create(MakeClinicalTrial(12, 3),
                                           ChaosConfig(), device, store);
  ASSERT_TRUE(recovered.ok()) << context << ": " << recovered.status().ToString();
  if (committed.empty()) {
    // The bootstrap itself never committed: reboot starts fresh at 1.
    EXPECT_EQ(recovered->epoch(), 1u) << context;
    return;
  }
  const uint64_t last_epoch = committed.rbegin()->first;
  const uint64_t last_checksum = committed.rbegin()->second;
  EXPECT_EQ(recovered->epoch(), last_epoch) << context;
  PinnedEpoch pinned = recovered->Pin();
  EXPECT_EQ(pinned->protected_checksum, last_checksum) << context;
  EXPECT_EQ(TableChecksum(pinned->protected_table), last_checksum) << context;
  // The recovered database keeps flipping: it is a working writer, not a
  // read-only husk.
  for (RowMutation& m : ScriptStep(41)) {
    ASSERT_TRUE(recovered->SubmitMutation(std::move(m)).ok()) << context;
  }
  EXPECT_TRUE(recovered->Flip().ok()) << context;
}

TEST(EpochChaosTest, DeviceDeathAtEveryAppendBoundaryRecoversExactly) {
  // A 4-flip run appends at most 2 (bootstrap) + 4 * 2 (begin/commit)
  // records, plus abort records on refusals; sweep past the end so the
  // fault-free tail is covered too.
  constexpr uint64_t kMaxBoundary = 14;
  for (uint64_t die_at = 0; die_at <= kMaxBoundary; ++die_at) {
    MemWalIo device;
    EpochStore store;
    WalFaultPlan plan;
    plan.die_after_appends = die_at;
    FaultyWalIo faulty(&device, plan);

    std::map<uint64_t, uint64_t> committed;
    auto db = EpochedDatabase::Create(MakeClinicalTrial(12, 3), ChaosConfig(),
                                      &faulty, &store);
    if (db.ok()) {
      committed = Drive(&*db, 4);
    }
    // else: the device died inside bootstrap; nothing ever committed.
    ExpectExactRecovery(&device, &store, committed,
                        ("die_at=" + std::to_string(die_at)).c_str());
  }
}

TEST(EpochChaosTest, ShortWriteStormsNeverTearACommit) {
  for (uint64_t seed : {1u, 7u, 23u, 99u}) {
    MemWalIo device;
    EpochStore store;
    WalFaultPlan plan;
    plan.short_write_rate = 0.35;
    plan.seed = seed;
    FaultyWalIo faulty(&device, plan);

    std::map<uint64_t, uint64_t> committed;
    auto db = EpochedDatabase::Create(MakeClinicalTrial(12, 3), ChaosConfig(),
                                      &faulty, &store);
    if (db.ok()) {
      committed = Drive(&*db, 6);
    }
    ExpectExactRecovery(&device, &store, committed,
                        ("seed=" + std::to_string(seed)).c_str());
  }
}

TEST(EpochChaosTest, StoreSyncFaultMidRunRefusesThenResumes) {
  MemWalIo device;
  EpochStore store;
  auto db = EpochedDatabase::Create(MakeClinicalTrial(12, 3), ChaosConfig(),
                                    &device, &store);
  ASSERT_TRUE(db.ok());

  // Two clean flips, then the store starts refusing syncs.
  std::map<uint64_t, uint64_t> committed = Drive(&*db, 2);
  EXPECT_EQ(db->epoch(), 3u);
  store.set_fail_syncs(true);
  for (RowMutation& m : ScriptStep(10)) {
    ASSERT_TRUE(db->SubmitMutation(std::move(m)).ok());
  }
  EXPECT_EQ(db->Flip().status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(db->epoch(), 3u);  // old epoch kept serving

  // The reboot comes with a healthy store device; the refused flip must
  // have left nothing behind for recovery to trip over.
  store.set_fail_syncs(false);
  ExpectExactRecovery(&device, &store, committed, "store-sync-fault");
}

TEST(EpochChaosTest, OrphanedDurableImageIsNotAdoptedByRecovery) {
  // The exact torn window the write-ahead ordering exists for: the process
  // dies AFTER the new image became durable but BEFORE its commit record
  // did. Recovery must adopt the last committed epoch (1), never the
  // orphaned image, and must garbage-collect the orphan.
  MemWalIo device;
  EpochStore store;
  uint64_t epoch1_checksum = 0;
  {
    auto db = EpochedDatabase::Create(MakeClinicalTrial(12, 3), ChaosConfig(),
                                      &device, &store);
    ASSERT_TRUE(db.ok());
    epoch1_checksum = db->Pin()->protected_checksum;
    // The writer dies here, mid-flip: image 2 durable, commit unwritten.
    auto orphan = std::make_shared<EpochData>();
    orphan->epoch = 2;
    orphan->protected_table = MakeClinicalTrial(6, 8);
    store.Put(orphan);
    ASSERT_TRUE(store.Sync().ok());
  }
  device.SimulateCrash();
  store.SimulateCrash();

  auto recovered = EpochedDatabase::Create(MakeClinicalTrial(12, 3),
                                           ChaosConfig(), &device, &store);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->epoch(), 1u);
  EXPECT_EQ(recovered->Pin()->protected_checksum, epoch1_checksum);
  EXPECT_EQ(store.Epochs(), (std::vector<uint64_t>{1}));
}

}  // namespace
}  // namespace tripriv
