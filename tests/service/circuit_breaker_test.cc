// Tests for the three-state circuit breaker: trip on consecutive failures,
// timed reopen with seeded jitter, half-open probing, and determinism.

#include "service/circuit_breaker.h"

#include <gtest/gtest.h>

namespace tripriv {
namespace {

CircuitBreakerConfig TestConfig() {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.open_ticks = 10;
  config.open_jitter_ticks = 0;  // exact timing for the state tests
  config.half_open_successes = 2;
  return config;
}

TEST(CircuitBreakerTest, StaysClosedUnderScatteredFailures) {
  SimClock clock;
  CircuitBreaker breaker(TestConfig(), &clock);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(breaker.AllowRequest());
    breaker.RecordFailure();
    ASSERT_TRUE(breaker.AllowRequest());
    breaker.RecordSuccess();  // resets the consecutive count
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.times_opened(), 0u);
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndRejects) {
  SimClock clock;
  CircuitBreaker breaker(TestConfig(), &clock);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(breaker.consecutive_failures(), static_cast<size_t>(i));
    ASSERT_TRUE(breaker.AllowRequest());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);  // reset by the trip
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.rejected(), 2u);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesAfterEnoughSuccesses) {
  SimClock clock;
  CircuitBreaker breaker(TestConfig(), &clock);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.AllowRequest());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.half_open_probes(), 0u);
  clock.Advance(10);  // reopen tick reached
  ASSERT_TRUE(breaker.AllowRequest());  // probe 1
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.probe_in_flight());
  EXPECT_FALSE(breaker.AllowRequest());  // probe slot busy
  breaker.RecordSuccess();
  EXPECT_FALSE(breaker.probe_in_flight());
  EXPECT_EQ(breaker.half_open_successes(), 1u);
  ASSERT_TRUE(breaker.AllowRequest());  // probe 2
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.half_open_probes(), 2u);
  EXPECT_EQ(breaker.half_open_successes(), 0u);  // reset on close
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopens) {
  SimClock clock;
  CircuitBreaker breaker(TestConfig(), &clock);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.AllowRequest());
    breaker.RecordFailure();
  }
  clock.Advance(10);
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();  // backend still sick
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  EXPECT_FALSE(breaker.probe_in_flight());  // cleared by the re-trip
  EXPECT_FALSE(breaker.AllowRequest());     // a fresh open period started
  clock.Advance(10);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.half_open_probes(), 2u);  // one probe per episode
}

TEST(CircuitBreakerTest, JitterIsSeedDeterministicAndBounded) {
  auto reopen_delay = [](uint64_t seed) {
    SimClock clock;
    CircuitBreakerConfig config = TestConfig();
    config.open_jitter_ticks = 6;
    config.seed = seed;
    CircuitBreaker breaker(config, &clock);
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(breaker.AllowRequest());
      breaker.RecordFailure();
    }
    uint64_t delay = 0;
    while (!breaker.AllowRequest() && delay < 1000) {
      clock.Advance(1);
      ++delay;
    }
    return delay;
  };
  const uint64_t d1 = reopen_delay(42);
  EXPECT_EQ(d1, reopen_delay(42));  // deterministic per seed
  EXPECT_GE(d1, 10u);               // never before open_ticks
  EXPECT_LE(d1, 16u);               // never past open_ticks + jitter
  // Some seed disagrees with seed 42 within the jitter window.
  bool found_different = false;
  for (uint64_t seed = 0; seed < 16 && !found_different; ++seed) {
    found_different = reopen_delay(seed) != d1;
  }
  EXPECT_TRUE(found_different);
}

TEST(CircuitBreakerTest, StragglerSuccessWhileOpenDoesNotClose) {
  SimClock clock;
  CircuitBreaker breaker(TestConfig(), &clock);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.AllowRequest());
    breaker.RecordFailure();
  }
  breaker.RecordSuccess();  // late reply from before the trip
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_STREQ(BreakerStateToString(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateToString(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateToString(BreakerState::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace tripriv
