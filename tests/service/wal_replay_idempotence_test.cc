// Replay idempotence: recovering the same WAL twice — or re-attaching
// instruments after a restart — must leave epsilon-spend gauges and epoch
// counters exactly where one recovery put them. RecordSpend would
// double-charge on every replay; SyncRecoveredSpend (absolute, monotone)
// is the regression under test, alongside the epoch-side rule that
// recovery mirrors state with absolute Sets only.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "obs/budget.h"
#include "obs/instruments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "querydb/query.h"
#include "service/epoch_service.h"
#include "service/query_service.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

using obs::MetricsRegistry;
using obs::PrivacyBudgetAccountant;

EpochConfig EpochTestConfig() {
  EpochConfig config;
  config.k = 3;
  config.qi_cols = {0, 1};
  return config;
}

TEST(WalReplayIdempotenceTest, RecoveredSpendNeverRollsTheGaugeBack) {
  MetricsRegistry registry;
  PrivacyBudgetAccountant accountant(&registry);
  ASSERT_TRUE(accountant
                  .RegisterPrincipal("p", obs::PrivacyDimension::kRespondent,
                                     10.0)
                  .ok());
  ASSERT_TRUE(accountant.RecordSpend("p", 3.0).ok());
  // A stale replay (lower absolute total) must not roll the fact back.
  ASSERT_TRUE(accountant.SyncRecoveredSpend("p", 2.0).ok());
  EXPECT_DOUBLE_EQ(accountant.spent("p"), 3.0);
  // A newer total raises it; replaying the same total is a no-op.
  ASSERT_TRUE(accountant.SyncRecoveredSpend("p", 5.0).ok());
  ASSERT_TRUE(accountant.SyncRecoveredSpend("p", 5.0).ok());
  EXPECT_DOUBLE_EQ(accountant.spent("p"), 5.0);
}

TEST(WalReplayIdempotenceTest, RecoveryAppendsNothingToTheWal) {
  MemWalIo wal;
  EpochStore store;
  {
    auto db = EpochedDatabase::Create(MakeClinicalTrial(20, 5),
                                      EpochTestConfig(), &wal, &store);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(0)).ok());
    ASSERT_TRUE(db->Flip().ok());
  }
  const size_t bytes_before = wal.size();
  for (int recovery = 1; recovery <= 2; ++recovery) {
    auto db = EpochedDatabase::Create(MakeClinicalTrial(20, 5),
                                      EpochTestConfig(), &wal, &store);
    ASSERT_TRUE(db.ok());
  }
  // Recovery re-reads facts; it does not create them. A recovery that
  // appended would make every crash loop grow the log without bound.
  EXPECT_EQ(wal.size(), bytes_before);
}

#ifndef TRIPRIV_OBS_DISABLED

using obs::MetricSample;
using obs::MetricsSnapshot;
using obs::ServiceMetrics;
using obs::ServiceMetricsOptions;
using obs::TraceRecorder;

StatQuery Parse(const std::string& sql) {
  auto query = ParseQuery(sql);
  TRIPRIV_CHECK(query.ok()) << sql;
  return std::move(query).value();
}

double GaugeValue(const MetricsSnapshot& snapshot, const std::string& name,
                  const obs::LabelSet& labels) {
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.name == name && sample.labels == labels) {
      return sample.gauge_value;
    }
  }
  ADD_FAILURE() << "missing gauge " << name;
  return -1.0;
}

TEST(WalReplayIdempotenceTest, EpsilonGaugesSurviveDoubleRecovery) {
  MemWalIo wal;
  QueryServiceConfig config;
  config.protection.mode = ProtectionMode::kAudit;
  config.protection.min_query_set_size = 2;
  config.faults.backend_fault_rate = 1.0;
  config.retry.max_attempts = 1;
  config.degrade_epsilon = 0.5;
  config.epsilon_budget = 4.0;
  const StatQuery query = Parse("SELECT COUNT(*) FROM t WHERE height < 175");
  {
    auto service = QueryService::Create(PaperDataset2(), config, &wal);
    ASSERT_TRUE(service.ok());
    ASSERT_EQ(service->Submit(query).tier, AnswerTier::kDpDegraded);
    ASSERT_EQ(service->Submit(query).tier, AnswerTier::kDpDegraded);
    ASSERT_DOUBLE_EQ(service->epsilon_spent(), 1.0);
  }

  // One dashboard — registry, accountant, instruments — lives across BOTH
  // recoveries of the crash-looping service. Metric series register once;
  // each reboot only re-attaches.
  MetricsRegistry registry;
  PrivacyBudgetAccountant accountant(&registry);
  SimClock dashboard_clock;
  TraceRecorder trace(&dashboard_clock);
  ServiceMetricsOptions options;
  options.degraded_budget = 4.0;
  auto metrics =
      ServiceMetrics::Create(&registry, &trace, &accountant, options);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  const obs::LabelSet spent_labels = {{"dimension", "respondent"},
                                      {"principal", "degraded_path"}};

  for (int recovery = 1; recovery <= 2; ++recovery) {
    auto service = QueryService::Create(PaperDataset2(), config, &wal);
    ASSERT_TRUE(service.ok()) << "recovery " << recovery;
    service->AttachInstruments(&*metrics);

    // The recovered spend is mirrored absolutely, never re-added: 1.0
    // after the first recovery AND still 1.0 after the second.
    EXPECT_DOUBLE_EQ(accountant.spent("degraded_path"), 1.0)
        << "recovery " << recovery;
    EXPECT_DOUBLE_EQ(GaugeValue(registry.Snapshot(),
                                "tripriv_privacy_epsilon_spent", spent_labels),
                     1.0)
        << "recovery " << recovery;
    service->AttachInstruments(nullptr);
  }
}

TEST(WalReplayIdempotenceTest, EpochGaugesSurviveDoubleRecovery) {
  MemWalIo wal;
  EpochStore store;
  {
    auto db = EpochedDatabase::Create(MakeClinicalTrial(20, 5),
                                      EpochTestConfig(), &wal, &store);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(0)).ok());
    ASSERT_TRUE(db->Flip().ok());
    ASSERT_TRUE(db->SubmitMutation(RowMutation::Delete(1)).ok());
    ASSERT_TRUE(db->Flip().ok());
  }

  MetricsRegistry registry;
  auto metrics = obs::EpochMetrics::Create(&registry);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  for (int recovery = 1; recovery <= 2; ++recovery) {
    auto db = EpochedDatabase::Create(MakeClinicalTrial(20, 5),
                                      EpochTestConfig(), &wal, &store);
    ASSERT_TRUE(db.ok()) << "recovery " << recovery;
    EXPECT_EQ(db->epoch(), 3u) << "recovery " << recovery;
    db->AttachInstruments(&*metrics);
    // Gauges are absolute: double recovery reads 3, not 6.
    EXPECT_DOUBLE_EQ(
        GaugeValue(registry.Snapshot(), "tripriv_epoch_current", {}), 3.0)
        << "recovery " << recovery;
  }
}

#endif  // TRIPRIV_OBS_DISABLED

}  // namespace
}  // namespace tripriv
