// Tests for QueryService: the degradation ladder, WAL-backed audit
// recovery, admission shedding, deadline enforcement, crash semantics, and
// the attached aggregate-PIR / record-PIR paths.

#include "service/query_service.h"

#include <gtest/gtest.h>

#include <string>

#include "querydb/query.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

StatQuery Parse(const std::string& sql) {
  auto query = ParseQuery(sql);
  TRIPRIV_CHECK(query.ok()) << sql;
  return std::move(query).value();
}

QueryServiceConfig AuditConfig() {
  QueryServiceConfig config;
  config.protection.mode = ProtectionMode::kAudit;
  config.protection.min_query_set_size = 2;
  return config;
}

TEST(QueryServiceTest, HealthyServiceAnswersProtectedAndLogsDecisions) {
  MemWalIo wal;
  auto service = QueryService::Create(PaperDataset2(), AuditConfig(), &wal);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  auto answer = service->Submit(
      Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 172"));
  EXPECT_EQ(answer.tier, AnswerTier::kProtected);
  EXPECT_FALSE(answer.answer.refused);
  EXPECT_EQ(service->stats().protected_answers, 1u);
  // The decision is durable: a fresh recovery sees one admitted record.
  auto recovered = AuditWal::Recover(&wal);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->records.size(), 1u);
  EXPECT_EQ(recovered->records[0].decision, WalDecision::kAdmitted);
  EXPECT_EQ(recovered->records[0].rows.size(), 5u);  // heights < 172
}

TEST(QueryServiceTest, MatchesStatDatabaseRefusalBehaviour) {
  // The service must refuse exactly what a plain kAudit StatDatabase
  // refuses: the lifted policy is the same code over the same state.
  MemWalIo wal;
  auto service = QueryService::Create(PaperDataset2(), AuditConfig(), &wal);
  ASSERT_TRUE(service.ok());
  ProtectionConfig db_config;
  db_config.mode = ProtectionMode::kAudit;
  db_config.min_query_set_size = 2;
  StatDatabase db(PaperDataset2(), db_config);

  const std::string queries[] = {
      "SELECT SUM(blood_pressure) FROM t WHERE height < 172",
      "SELECT SUM(blood_pressure) FROM t WHERE height < 171",  // diff attack
      "SELECT SUM(blood_pressure) FROM t WHERE weight > 80",
      "SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105",  // |QS|=1
  };
  for (const auto& sql : queries) {
    auto from_service = service->Submit(Parse(sql));
    auto from_db = db.Query(sql);
    ASSERT_TRUE(from_db.ok());
    EXPECT_EQ(from_service.tier == AnswerTier::kRefused, from_db->refused)
        << sql;
    if (from_db->refused) {
      EXPECT_EQ(from_service.refusal.code(), StatusCode::kPermissionDenied);
    } else {
      EXPECT_DOUBLE_EQ(from_service.answer.value, from_db->value) << sql;
    }
  }
}

TEST(QueryServiceTest, BackendFaultsDegradeToDpNeverUnprotected) {
  MemWalIo wal;
  QueryServiceConfig config = AuditConfig();
  config.faults.backend_fault_rate = 1.0;  // primary path always fails
  config.retry.max_attempts = 2;
  config.epsilon_budget = 100.0;
  auto service = QueryService::Create(PaperDataset2(), config, &wal);
  ASSERT_TRUE(service.ok());

  const StatQuery query =
      Parse("SELECT COUNT(*) FROM t WHERE height < 175");
  auto answer = service->Submit(query);
  ASSERT_EQ(answer.tier, AnswerTier::kDpDegraded);
  EXPECT_FALSE(answer.answer.refused);
  EXPECT_GT(service->epsilon_spent(), 0.0);
  EXPECT_EQ(service->stats().degraded_attempts, 1u);
  // The spend is durable.
  auto recovered = AuditWal::Recover(&wal);
  ASSERT_TRUE(recovered.ok());
  bool saw_spend = false;
  for (const auto& record : recovered->records) {
    saw_spend |= record.type == WalRecordType::kEpsilonSpend;
  }
  EXPECT_TRUE(saw_spend);
}

TEST(QueryServiceTest, ExhaustedEpsilonBudgetRefusesDegradedAnswers) {
  MemWalIo wal;
  QueryServiceConfig config = AuditConfig();
  config.faults.backend_fault_rate = 1.0;
  config.retry.max_attempts = 1;
  config.degrade_epsilon = 0.5;
  config.epsilon_budget = 1.0;  // two degraded answers, then dry
  auto service = QueryService::Create(PaperDataset2(), config, &wal);
  ASSERT_TRUE(service.ok());

  const StatQuery query = Parse("SELECT COUNT(*) FROM t WHERE height < 175");
  EXPECT_EQ(service->Submit(query).tier, AnswerTier::kDpDegraded);
  EXPECT_EQ(service->Submit(query).tier, AnswerTier::kDpDegraded);
  auto third = service->Submit(query);
  EXPECT_EQ(third.tier, AnswerTier::kRefused);
  EXPECT_EQ(third.refusal.code(), StatusCode::kPermissionDenied);
  EXPECT_DOUBLE_EQ(service->epsilon_spent(), 1.0);
}

TEST(QueryServiceTest, EpsilonSpendSurvivesRestart) {
  MemWalIo wal;
  QueryServiceConfig config = AuditConfig();
  config.faults.backend_fault_rate = 1.0;
  config.retry.max_attempts = 1;
  config.degrade_epsilon = 0.5;
  config.epsilon_budget = 1.0;
  const StatQuery query = Parse("SELECT COUNT(*) FROM t WHERE height < 175");
  {
    auto service = QueryService::Create(PaperDataset2(), config, &wal);
    ASSERT_TRUE(service.ok());
    EXPECT_EQ(service->Submit(query).tier, AnswerTier::kDpDegraded);
    EXPECT_EQ(service->Submit(query).tier, AnswerTier::kDpDegraded);
  }
  // Restart: the budget must not reset — waiting out a crash is not a way
  // to buy more epsilon.
  auto service = QueryService::Create(PaperDataset2(), config, &wal);
  ASSERT_TRUE(service.ok());
  EXPECT_DOUBLE_EQ(service->epsilon_spent(), 1.0);
  auto again = service->Submit(query);
  EXPECT_EQ(again.tier, AnswerTier::kRefused);
}

TEST(QueryServiceTest, AuditStateSurvivesRestart) {
  MemWalIo wal;
  {
    auto service = QueryService::Create(PaperDataset2(), AuditConfig(), &wal);
    ASSERT_TRUE(service.ok());
    auto first = service->Submit(
        Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 172"));
    ASSERT_EQ(first.tier, AnswerTier::kProtected);
  }
  auto service = QueryService::Create(PaperDataset2(), AuditConfig(), &wal);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service->audit_policy().answered_sets().size(), 1u);
  // The difference attack across the restart boundary is still blocked.
  auto second = service->Submit(
      Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 171"));
  EXPECT_EQ(second.tier, AnswerTier::kRefused);
  EXPECT_EQ(second.refusal.code(), StatusCode::kPermissionDenied);
}

TEST(QueryServiceTest, AdmissionShedsBurstsWithTypedStatus) {
  MemWalIo wal;
  QueryServiceConfig config = AuditConfig();
  config.admission.capacity = 2;
  config.admission.service_ticks = 1000;  // nothing drains during the burst
  auto service = QueryService::Create(PaperDataset2(), config, &wal);
  ASSERT_TRUE(service.ok());

  const StatQuery query = Parse("SELECT COUNT(*) FROM t WHERE height < 175");
  EXPECT_EQ(service->Submit(query).tier, AnswerTier::kProtected);
  EXPECT_EQ(service->Submit(query).tier, AnswerTier::kProtected);
  auto shed = service->Submit(query);
  EXPECT_EQ(shed.tier, AnswerTier::kRefused);
  EXPECT_EQ(shed.refusal.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service->stats().shed, 1u);
}

TEST(QueryServiceTest, ExpiredDeadlineRefusesButStillRecordsTheDecision) {
  MemWalIo wal;
  auto service = QueryService::Create(PaperDataset2(), AuditConfig(), &wal);
  ASSERT_TRUE(service.ok());

  // Deadline already expired: typed refusal...
  auto late = service->Submit(
      Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 172"),
      Deadline::After(*service->sim_clock(), 0));
  EXPECT_EQ(late.tier, AnswerTier::kRefused);
  EXPECT_EQ(late.refusal.code(), StatusCode::kDeadlineExceeded);
  // ...but the audit decision was recorded BEFORE the deadline check, so a
  // follow-up overlapping query is refused exactly as if the first had been
  // answered. Faults narrow what is answered; they never widen it.
  auto overlap = service->Submit(
      Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 171"));
  EXPECT_EQ(overlap.tier, AnswerTier::kRefused);
  EXPECT_EQ(overlap.refusal.code(), StatusCode::kPermissionDenied);
}

TEST(QueryServiceTest, CrashMidAnswerFailsClosedAndRecoversMonotonically) {
  MemWalIo wal;
  QueryServiceConfig config = AuditConfig();
  config.faults.crash_mid_answer_rate = 1.0;
  {
    auto service = QueryService::Create(PaperDataset2(), config, &wal);
    ASSERT_TRUE(service.ok());
    auto answer = service->Submit(
        Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 172"));
    EXPECT_EQ(answer.tier, AnswerTier::kRefused);
    EXPECT_EQ(answer.refusal.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(service->crashed());
    // Once crashed, everything refuses.
    auto after = service->Submit(Parse("SELECT COUNT(*) FROM t"));
    EXPECT_EQ(after.tier, AnswerTier::kRefused);
  }
  wal.SimulateCrash();
  // Restart on the surviving log: the decision committed before the crash
  // is part of the recovered audit state (it might have been released).
  QueryServiceConfig healthy = AuditConfig();
  auto service = QueryService::Create(PaperDataset2(), healthy, &wal);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service->audit_policy().answered_sets().size(), 1u);
  auto overlap = service->Submit(
      Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 171"));
  EXPECT_EQ(overlap.tier, AnswerTier::kRefused);
}

TEST(QueryServiceTest, WalFailureWithholdsAnswersButKeepsRefusing) {
  MemWalIo base;
  WalFaultPlan plan;
  plan.die_after_appends = 0;  // WAL device dead from the start
  FaultyWalIo wal(&base, plan);
  auto service = QueryService::Create(PaperDataset2(), AuditConfig(), &wal);
  ASSERT_TRUE(service.ok());

  // An admissible query cannot be acknowledged without a durable record.
  auto answer = service->Submit(
      Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 172"));
  EXPECT_EQ(answer.tier, AnswerTier::kRefused);
  EXPECT_EQ(answer.refusal.code(), StatusCode::kUnavailable);
  EXPECT_GE(service->stats().wal_append_failures, 1u);
  // Policy refusals are still released (refusing is always safe) ...
  auto refused = service->Submit(
      Parse("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105"));
  EXPECT_EQ(refused.tier, AnswerTier::kRefused);
  EXPECT_EQ(refused.refusal.code(), StatusCode::kPermissionDenied);
  // ... and the in-memory audit state kept growing despite the dead WAL:
  // the first query's set still blocks its difference-attack partner.
  auto overlap = service->Submit(
      Parse("SELECT SUM(blood_pressure) FROM t WHERE height < 171"));
  EXPECT_EQ(overlap.tier, AnswerTier::kRefused);
  EXPECT_EQ(overlap.refusal.code(), StatusCode::kPermissionDenied);
}

TEST(QueryServiceTest, MalformedQueryRefusesWithoutTouchingAuditState) {
  MemWalIo wal;
  auto service = QueryService::Create(PaperDataset2(), AuditConfig(), &wal);
  ASSERT_TRUE(service.ok());
  StatQuery bad = Parse("SELECT COUNT(*) FROM t WHERE height < 175");
  bad.where = Predicate::Compare("no_such_column", CompareOp::kLt, Value(1));
  auto answer = service->Submit(bad);
  EXPECT_EQ(answer.tier, AnswerTier::kRefused);
  EXPECT_EQ(service->audit_policy().answered_sets().size(), 0u);
  EXPECT_EQ(wal.size(), 0u);
}

TEST(QueryServiceTest, PrivateDpCountRunsThroughReplicaFailover) {
  MemWalIo wal;
  QueryServiceConfig config = AuditConfig();
  config.faults.aggregate_fault_rate = 0.5;
  config.faults.seed = 99;
  config.epsilon_budget = 100.0;
  auto service = QueryService::Create(PaperDataset2(), config, &wal);
  ASSERT_TRUE(service.ok());

  std::vector<GridAxis> grid = {{"height", 140, 205, 1},
                                {"weight", 40, 160, 1}};
  auto replica_a = PrivateAggregateServer::Build(PaperDataset2(), grid);
  auto replica_b = PrivateAggregateServer::Build(PaperDataset2(), grid);
  ASSERT_TRUE(replica_a.ok());
  ASSERT_TRUE(replica_b.ok());
  auto client = PrivateAggregateClient::Create(192, 3);
  ASSERT_TRUE(client.ok());
  Rng server_rng(21);
  service->AttachAggregateBackends({&*replica_a, &*replica_b}, &*client,
                                   &server_rng);

  Predicate predicate = Predicate::Compare("height", CompareOp::kLt, Value(175));
  const double spent_before = service->epsilon_spent();
  auto count = service->PrivateDpCount(predicate, Deadline());
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_GT(service->epsilon_spent(), spent_before);  // durable spend charged
  // The noisy count is within a plausible Laplace band of the truth (7 of
  // the 10 dataset-2 patients are shorter than 175 cm).
  EXPECT_NEAR(static_cast<double>(*count), 7.0, 60.0);
}

TEST(QueryServiceTest, PrivateDpCountWithoutBackendsIsTyped) {
  MemWalIo wal;
  auto service = QueryService::Create(PaperDataset2(), AuditConfig(), &wal);
  ASSERT_TRUE(service.ok());
  Predicate predicate = Predicate::Compare("height", CompareOp::kLt, Value(175));
  EXPECT_EQ(service->PrivateDpCount(predicate, Deadline()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QueryServiceTest, PirReadRoutesThroughAttachedFailoverClient) {
  MemWalIo wal;
  auto service = QueryService::Create(PaperDataset2(), AuditConfig(), &wal);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service->PirRead(0, Deadline()).status().code(),
            StatusCode::kFailedPrecondition);

  std::vector<std::vector<uint8_t>> records = {{1, 2}, {3, 4}, {5, 6}};
  auto pir = FailoverPirClient::Build(records, 2, RetryPolicy{},
                                      service->sim_clock(), 5);
  ASSERT_TRUE(pir.ok());
  pir->InjectFault(0, PirServerFault{.crashed = true});
  service->AttachPirBackend(&*pir);
  auto read = service->PirRead(1, Deadline());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, records[1]);
}

TEST(QueryServiceTest, BreakerGatesEveryRetryAttempt) {
  // Regression: AllowRequest used to run once before the retry loop, so a
  // first attempt that tripped the breaker left the remaining retries
  // hammering the backend without breaker permission.
  MemWalIo wal;
  QueryServiceConfig config = AuditConfig();
  // Query-set-size mode: stateless, so the breaker (not audit overlap)
  // decides every outcome here.
  config.protection.mode = ProtectionMode::kQuerySetSize;
  config.faults.backend_fault_rate = 1.0;
  config.breaker.failure_threshold = 1;
  config.breaker.open_ticks = 1000;
  config.breaker.open_jitter_ticks = 0;
  config.retry.max_attempts = 4;
  config.retry.initial_backoff_ticks = 1;
  config.default_deadline_ticks = 500;
  auto service = QueryService::Create(PaperDataset2(), config, &wal);
  ASSERT_TRUE(service.ok());

  auto answer =
      service->Submit(Parse("SELECT COUNT(*) FROM t WHERE height < 175"));
  // Attempt 1 fails and trips the breaker; attempt 2 is breaker-rejected
  // and the primary path bails out to the degraded ladder at once.
  EXPECT_EQ(service->primary_breaker().state(), BreakerState::kOpen);
  EXPECT_GE(service->primary_breaker().rejected(), 1u);
  EXPECT_EQ(answer.tier, AnswerTier::kDpDegraded);
}

TEST(QueryServiceTest, HalfOpenWindowAdmitsExactlyOneProbeUnderBurst) {
  // A request with a multi-attempt retry budget arriving in the half-open
  // window must spend exactly ONE trial request: the probe fails, the
  // breaker reopens, and the remaining attempts are rejected — never a
  // burst of trials against a barely-recovered backend.
  MemWalIo wal;
  QueryServiceConfig config = AuditConfig();
  // Stateless protection: the same query can run twice without the audit
  // overlap policy refusing the second before it reaches the breaker.
  config.protection.mode = ProtectionMode::kQuerySetSize;
  config.faults.backend_fault_rate = 1.0;
  config.breaker.failure_threshold = 1;
  config.breaker.open_ticks = 8;
  config.breaker.open_jitter_ticks = 0;
  config.retry.max_attempts = 4;
  config.retry.initial_backoff_ticks = 1;
  config.default_deadline_ticks = 500;
  auto service = QueryService::Create(PaperDataset2(), config, &wal);
  ASSERT_TRUE(service.ok());

  const StatQuery query = Parse("SELECT COUNT(*) FROM t WHERE height < 175");
  EXPECT_EQ(service->Submit(query).tier, AnswerTier::kDpDegraded);
  EXPECT_EQ(service->primary_breaker().state(), BreakerState::kOpen);
  EXPECT_EQ(service->primary_breaker().half_open_probes(), 0u);

  // Past the open window: the next request is the half-open burst.
  service->sim_clock()->Advance(16);
  const uint64_t rejected_before = service->primary_breaker().rejected();
  EXPECT_EQ(service->Submit(query).tier, AnswerTier::kDpDegraded);
  EXPECT_EQ(service->primary_breaker().half_open_probes(), 1u);
  EXPECT_EQ(service->primary_breaker().state(), BreakerState::kOpen);
  EXPECT_GT(service->primary_breaker().rejected(), rejected_before);
}

}  // namespace
}  // namespace tripriv
