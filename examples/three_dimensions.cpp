// The full framework, end to end: pick technologies per required privacy
// dimension, deploy the Section 6 recipe, and verify all three dimensions
// empirically with the Table 2 evaluator.
//
// Build & run:  ./build/examples/three_dimensions

#include <cstdio>

#include "core/advisor.h"
#include "core/evaluator.h"
#include "pir/aggregate.h"
#include "sdc/anonymity.h"
#include "table/datasets.h"

using namespace tripriv;

int main() {
  // 1. Ask the advisor what to deploy for each requirement profile.
  std::printf("--- Section 6 advisor\n");
  struct Case {
    const char* label;
    PrivacyRequirements req;
  } cases[] = {
      {"user only (public search engine)", {false, false, true}},
      {"owner only (joint market analysis)", {false, true, false}},
      {"respondent only (census release)", {true, false, false}},
      {"respondent + owner", {true, true, false}},
      {"respondent + user", {true, false, true}},
      {"all three (healthcare registry)", {true, true, true}},
  };
  for (const auto& c : cases) {
    auto rec = RecommendTechnology(c.req);
    if (!rec.ok()) continue;
    std::printf("%-38s -> %s\n", c.label,
                TechnologyClassToString(rec->technology));
  }
  // The one forbidden composition, stated by Section 4:
  auto forbidden = ComposeWithPir(TechnologyClass::kCryptoPpdm);
  std::printf("crypto PPDM + PIR? %s\n\n", forbidden.status().message().c_str());

  // 2. Deploy the recipe for "all three" on a concrete registry.
  std::printf("--- deploying the Section 6 recipe (k-anonymize + PIR)\n");
  const DataTable registry = MakeExtendedTrial(400, 123);
  auto deployment = ApplySection6Recipe(registry, 5);
  if (!deployment.ok()) return 1;
  std::printf("release is %zu-anonymous on {age, height, weight, "
              "cholesterol}\n",
              deployment->anonymity_level);

  // Serve a user query through the PIR layer.
  std::vector<GridAxis> grid{{"age", 25, 85, 2}, {"weight", 40, 160, 4}};
  auto server = PrivateAggregateServer::Build(deployment->release, grid);
  auto client = PrivateAggregateClient::Create(256, 5);
  if (!server.ok() || !client.ok()) return 1;
  Predicate question = Predicate::And(
      Predicate::Compare("age", CompareOp::kGe, Value(61)),
      Predicate::Compare("weight", CompareOp::kGt, Value(92)));
  auto avg = client->Average(*server, "blood_pressure", question);
  if (avg.ok()) {
    std::printf("private query: AVG(blood_pressure | age>=61, weight>92) = "
                "%.1f mmHg — the registry saw ciphertexts only.\n\n",
                *avg);
  }

  // 3. Verify all eight Table 2 rows empirically on this registry.
  std::printf("--- empirical Table 2 on this registry\n");
  PrivacyEvaluator::Options options;
  options.seed = 11;
  PrivacyEvaluator evaluator(registry, options);
  auto evals = evaluator.EvaluateAll();
  if (!evals.ok()) return 1;
  std::printf("%s", PrivacyEvaluator::FormatScoreboard(*evals, false).c_str());
  std::printf("\nthe deployed class (generic non-crypto PPDM + PIR) scores:\n");
  for (const auto& eval : *evals) {
    if (eval.technology == TechnologyClass::kGenericNonCryptoPpdmPlusPir) {
      std::printf("  respondent %.2f, owner %.2f, user %.2f — all three "
                  "dimensions simultaneously.\n",
                  eval.scores.respondent, eval.scores.owner, eval.scores.user);
    }
  }
  return 0;
}
