// Quickstart: load microdata, check k-anonymity, mask it, measure risk.
//
// Build & run:  ./build/examples/quickstart
//
// Walks through the core loop of the library on the paper's own Table 1
// datasets: verify anonymity, anonymize the unsafe dataset, and confirm
// with the attack suite that re-identification risk actually dropped.

#include <cstdio>

#include "sdc/anonymity.h"
#include "sdc/information_loss.h"
#include "sdc/microaggregation.h"
#include "sdc/risk.h"
#include "table/datasets.h"
#include "table/io.h"

using namespace tripriv;

int main() {
  // 1. Load data. Built-in datasets here; TableFromCsv loads your own.
  DataTable safe = PaperDataset1();
  DataTable unsafe = PaperDataset2();
  std::printf("Dataset 2 (as collected):\n%s\n",
              unsafe.ToPrettyString().c_str());

  // 2. Check respondent privacy: is the data k-anonymous on its
  //    quasi-identifiers (height, weight)?
  std::printf("Dataset 1 anonymity level: %zu (safe to publish at k=3)\n",
              AnonymityLevel(safe));
  std::printf("Dataset 2 anonymity level: %zu (every key combination is "
              "unique!)\n\n",
              AnonymityLevel(unsafe));

  // 3. Anonymize with MDAV microaggregation (k = 3): quasi-identifier
  //    values are replaced by group centroids; confidential attributes
  //    stay intact for analysis.
  auto masked = MdavMicroaggregate(unsafe, 3);
  if (!masked.ok()) {
    std::printf("masking failed: %s\n", masked.status().ToString().c_str());
    return 1;
  }
  std::printf("Dataset 2 after 3-microaggregation:\n%s\n",
              masked->table.ToPrettyString().c_str());
  std::printf("anonymity level now: %zu\n\n", AnonymityLevel(masked->table));

  // 4. Measure what an intruder can still do: link original records
  //    (external identified data) against the release.
  auto attack = DistanceLinkageAttack(unsafe, masked->table);
  if (!attack.ok()) return 1;
  std::printf("record-linkage attack: %.0f%% of respondents re-identified "
              "(was 100%% on the raw data)\n",
              100.0 * attack->correct_fraction);

  // 5. And what an analyst still gets: information loss of the release.
  auto loss = MeasureInformationLoss(unsafe, masked->table);
  if (!loss.ok()) return 1;
  std::printf("information loss: IL1s=%.3f, mean deviation=%.4f "
              "(means are preserved by centroid replacement)\n",
              loss->il1s, loss->mean_deviation);

  // 6. Export the release.
  std::printf("\nrelease as CSV:\n%s", TableToCsv(masked->table).c_str());
  return 0;
}
