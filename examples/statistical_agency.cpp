// A national statistical office runs an interactively queryable database
// (the paper's Section 3 setting: "perturbing, restricting or replacing by
// intervals the answers to certain queries").
//
// Build & run:  ./build/examples/statistical_agency
//
// Shows the query language, the four protection modes, the audit log the
// office keeps (and why that log is the end of user privacy), and a live
// tracker attempt against the configured protection.

#include <cstdio>

#include "querydb/tracker.h"
#include "table/datasets.h"

using namespace tripriv;

namespace {

void Ask(StatDatabase* db, const char* sql) {
  auto answer = db->Query(sql);
  if (!answer.ok()) {
    std::printf("  %-68s -> error: %s\n", sql, answer.status().message().c_str());
    return;
  }
  if (answer->refused) {
    std::printf("  %-68s -> REFUSED (%s)\n", sql, answer->refusal_reason.c_str());
  } else if (answer->interval_lo != answer->interval_hi) {
    std::printf("  %-68s -> [%.1f, %.1f]\n", sql, answer->interval_lo,
                answer->interval_hi);
  } else {
    std::printf("  %-68s -> %.2f\n", sql, answer->value);
  }
}

}  // namespace

int main() {
  const DataTable census = MakeCensus(2000, 7);
  std::printf("census microdata: %zu respondents\n", census.num_rows());

  const char* queries[] = {
      "SELECT COUNT(*) FROM census WHERE age >= 65",
      "SELECT AVG(income) FROM census WHERE education >= 12",
      "SELECT AVG(income) FROM census WHERE age = 43 AND education = 16",
      "SELECT MAX(income) FROM census WHERE age < 25",
  };

  for (ProtectionMode mode :
       {ProtectionMode::kNone, ProtectionMode::kQuerySetSize,
        ProtectionMode::kAudit, ProtectionMode::kOutputNoise,
        ProtectionMode::kCamouflage}) {
    ProtectionConfig config;
    config.mode = mode;
    config.min_query_set_size = 5;
    config.noise_fraction = 0.1;
    config.camouflage_fraction = 0.05;
    config.seed = 11;
    StatDatabase db(census, config);
    std::printf("\n--- protection mode: %s ---\n", ProtectionModeToString(mode));
    for (const char* sql : queries) Ask(&db, sql);
  }

  // The office's audit log: complete knowledge of user interests.
  {
    ProtectionConfig config;
    config.mode = ProtectionMode::kQuerySetSize;
    config.min_query_set_size = 5;
    StatDatabase db(census, config);
    for (const char* sql : queries) {
      auto unused = db.Query(sql);
      (void)unused;
    }
    std::printf("\n--- what the office knows about this user (the query "
                "log) ---\n");
    for (const auto& q : db.query_log()) {
      std::printf("  %s\n", q.ToString().c_str());
    }
    std::printf("every predicate is visible: query control gives the office "
                "respondent protection\nat the price of ZERO user privacy "
                "(Table 2's SDC row) — PIR is the only way out.\n");

    // And what a malicious user can still do to respondents:
    std::printf("\n--- tracker attempt against query-set-size control ---\n");
    const Predicate target = Predicate::And(
        Predicate::Compare("age", CompareOp::kEq, Value(43)),
        Predicate::Compare("education", CompareOp::kEq, Value(16)));
    auto tracker = FindTracker(&db, "age", 18, 90, 24);
    if (tracker.has_value()) {
      auto attack = TrackerAttack(&db, target, "income", *tracker);
      if (attack.ok() && attack->succeeded) {
        std::printf("tracker succeeded: the targeted group's total income "
                    "%.0f (count %.0f) was extracted\ndespite the size "
                    "restriction — see bench_tracker_attack for the full "
                    "sweep.\n",
                    attack->inferred_sum, attack->inferred_count);
      } else if (attack.ok()) {
        std::printf("tracker blocked: %s\n", attack->failure_reason.c_str());
      }
    }
  }
  return 0;
}
