// Healthcare microdata release: a hospital publishes patient data to
// researchers ("hippocratic database" scenario, paper Section 1 and [3, 4]).
//
// Build & run:  ./build/examples/healthcare_release
//
// The hospital must honour respondent privacy (patients must not be
// re-identifiable) while keeping the release useful. This example compares
// the SDC masking arsenal — Datafly recoding, Mondrian, MDAV, condensation,
// noise, rank swapping — on one dataset, with the risk/utility numbers a
// data protection officer would want, and verifies p-sensitive k-anonymity
// for the stronger guarantee of footnote 3.

#include <cstdio>

#include "sdc/anonymity.h"
#include "sdc/condensation.h"
#include "sdc/information_loss.h"
#include "sdc/microaggregation.h"
#include "sdc/mondrian.h"
#include "sdc/noise.h"
#include "sdc/rank_swap.h"
#include "sdc/recoding.h"
#include "sdc/risk.h"
#include "table/datasets.h"

using namespace tripriv;

namespace {

void Report(const char* name, const DataTable& original,
            const DataTable& release) {
  auto linkage = DistanceLinkageAttack(original, release);
  auto loss = MeasureInformationLoss(original, release);
  if (!linkage.ok() || !loss.ok()) {
    std::printf("%-24s  (measurement failed)\n", name);
    return;
  }
  std::printf("%-24s  %8zu  %12.1f%%  %8.3f  %9.3f  %11.0f\n", name,
              AnonymityLevel(release), 100.0 * linkage->correct_fraction,
              loss->il1s, loss->corr_deviation,
              DiscernibilityMetric(release));
}

}  // namespace

int main() {
  // The hospital's raw extract: 800 hypertension patients.
  const DataTable patients = MakeExtendedTrial(800, 99);
  std::printf("hospital extract: %zu patients, QIs = {age, height, weight, "
              "cholesterol}, confidential = {blood_pressure, aids}\n",
              patients.num_rows());
  std::printf("raw anonymity level: %zu -> release forbidden\n\n",
              AnonymityLevel(patients));

  std::printf("%-24s  %8s  %12s  %8s  %9s  %11s\n", "method", "k-anon",
              "linkage risk", "IL1s", "corr dev", "discern.");
  std::printf("%-24s  %8s  %12s  %8s  %9s  %11s\n", "------", "------",
              "------------", "----", "--------", "--------");

  const size_t k = 4;
  if (auto r = MdavMicroaggregate(patients, k); r.ok()) {
    Report("MDAV microaggregation", patients, r->table);
  }
  if (auto r = MondrianAnonymize(patients, k); r.ok()) {
    Report("Mondrian", patients, r->table);
  }
  {
    RecodingConfig config;
    config.k = k;
    config.max_suppression_fraction = 0.02;
    config.hierarchies["age"] =
        std::make_shared<NumericIntervalHierarchy>(0.0, 5.0, 2, 4);
    config.hierarchies["height"] =
        std::make_shared<NumericIntervalHierarchy>(0.0, 5.0, 2, 4);
    config.hierarchies["weight"] =
        std::make_shared<NumericIntervalHierarchy>(0.0, 5.0, 2, 4);
    config.hierarchies["cholesterol"] =
        std::make_shared<NumericIntervalHierarchy>(0.0, 20.0, 2, 4);
    if (auto r = DataflyAnonymize(patients, config); r.ok()) {
      // Generalized labels defeat the numeric linkage attack outright, so
      // report released anonymity plus suppression cost instead.
      std::printf("%-24s  %8zu  %12s  %8s  %9s  %11.0f  (%zu rows "
                  "suppressed)\n",
                  "Datafly recoding", AnonymityLevel(r->table), "n/a", "n/a",
                  "n/a", DiscernibilityMetric(r->table), r->suppressed_rows);
    }
  }
  if (auto r = Condense(patients, k, 7); r.ok()) {
    Report("condensation", patients, r->table);
  }
  if (auto r = AddCorrelatedNoise(
          patients, 0.4, patients.schema().QuasiIdentifierIndices(), 7);
      r.ok()) {
    Report("correlated noise", patients, *r);
  }
  if (auto r = RankSwap(patients, 8.0,
                        patients.schema().QuasiIdentifierIndices(), 7);
      r.ok()) {
    Report("rank swapping", patients, *r);
  }

  // The stronger guarantee of footnote 3: within every equivalence class
  // there must be at least p distinct confidential values.
  auto masked = MdavMicroaggregate(patients, k);
  if (masked.ok()) {
    std::printf("\nfootnote-3 check on the MDAV release: ");
    if (IsPSensitiveKAnonymous(masked->table, k, 2)) {
      std::printf("2-sensitive %zu-anonymous — no class leaks a uniform "
                  "diagnosis.\n", k);
    } else {
      std::printf("k-anonymous but NOT 2-sensitive: some class shares one "
                  "confidential value;\nthe officer should raise k or "
                  "recode confidentials before release.\n");
    }
  }
  return 0;
}
