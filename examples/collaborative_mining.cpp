// Collaborative mining with owner privacy: two pharmaceutical companies
// jointly build a classifier without sharing their trial databases
// (paper Sections 1 and 4; Lindell-Pinkas [18, 19]).
//
// Build & run:  ./build/examples/collaborative_mining
//
// Company A and Company B each ran a trial of the same drug. Together they
// have enough data for a response-prediction model; separately they do
// not. Crypto PPDM lets them train a joint decision tree where every count
// crosses the company boundary only as a masked partial sum. The example
// also shows the other owner-privacy primitives: private set intersection
// (which patients participated in both trials?) and a secure scalar
// product.

#include <cstdio>

#include "smc/distributed_id3.h"
#include "smc/psi.h"
#include "smc/scalar_product.h"
#include "smc/vertical.h"
#include "stats/descriptive.h"
#include "table/datasets.h"

using namespace tripriv;

int main() {
  // Two horizontal shards of the same classification problem.
  const DataTable all = MakeClassification(1200, 2, 55);
  std::vector<DataTable> companies;
  for (size_t p = 0; p < 2; ++p) {
    std::vector<size_t> rows;
    for (size_t r = p; r < all.num_rows(); r += 2) rows.push_back(r);
    companies.push_back(all.SelectRows(rows));
  }
  const DataTable test = MakeClassification(400, 2, 56);
  std::printf("Company A holds %zu records, Company B holds %zu records.\n\n",
              companies[0].num_rows(), companies[1].num_rows());

  // --- Joint decision tree through secure count aggregation.
  PartyNetwork net(2, 77);
  DistributedId3Config config;
  config.max_depth = 5;
  config.numeric_bins = 8;
  auto joint = DistributedId3Tree::Train(companies, "group", config, &net);
  if (!joint.ok()) {
    std::printf("joint training failed: %s\n",
                joint.status().ToString().c_str());
    return 1;
  }
  std::printf("joint tree: %zu nodes, test accuracy %.1f%%\n",
              joint->num_nodes(), 100.0 * joint->Accuracy(test).value());

  // What would each company get alone? Train a local tree on its shard
  // (also via the distributed trainer with a single... the local baseline
  // just uses half the data through the same binned ID3 on 2 copies).
  {
    std::vector<DataTable> solo{companies[0].SelectRows([&] {
                                  std::vector<size_t> rows;
                                  for (size_t r = 0;
                                       r < companies[0].num_rows() / 2; ++r) {
                                    rows.push_back(r);
                                  }
                                  return rows;
                                }()),
                                companies[0].SelectRows([&] {
                                  std::vector<size_t> rows;
                                  for (size_t r = companies[0].num_rows() / 2;
                                       r < companies[0].num_rows(); ++r) {
                                    rows.push_back(r);
                                  }
                                  return rows;
                                }())};
    PartyNetwork solo_net(2, 78);
    auto solo_tree = DistributedId3Tree::Train(solo, "group", config, &solo_net);
    if (solo_tree.ok()) {
      std::printf("Company A alone (same algorithm, half the data): test "
                  "accuracy %.1f%%\n",
                  100.0 * solo_tree->Accuracy(test).value());
    }
  }

  // Owner-privacy audit of the joint run: scan the transcript.
  size_t masked_messages = 0;
  for (const auto& msg : net.transcript()) {
    if (msg.tag != "secure_sum/result") ++masked_messages;
  }
  std::printf("\nprotocol transcript: %zu messages (%zu carrying masked "
              "partial sums), %zu bytes total.\n",
              net.messages_sent(), masked_messages, net.bytes_transferred());
  std::printf("No record, count, or attribute value of either company "
              "appears in the clear.\n\n");

  // --- Which patients took part in both trials? Private set intersection.
  std::vector<int64_t> patients_a{1001, 1004, 1007, 1013, 1020, 1031};
  std::vector<int64_t> patients_b{1002, 1004, 1013, 1025, 1031, 1044};
  PartyNetwork psi_net(2, 79);
  auto shared = PrivateSetIntersection(&psi_net, patients_a, patients_b);
  if (shared.ok()) {
    std::printf("private set intersection: %zu shared participants (ids:",
                shared->intersection.size());
    for (int64_t id : shared->intersection) std::printf(" %lld",
                                                        static_cast<long long>(id));
    std::printf(") — %zu bytes exchanged, no other ids revealed.\n",
                shared->bytes_transferred);
  }

  // --- Secure scalar product: joint count under a conjunctive predicate
  // over vertically split indicator vectors.
  PartyNetwork dot_net(2, 80);
  std::vector<BigInt> a_flags;  // Company A: "responded to treatment"
  std::vector<BigInt> b_flags;  // Company B: "had side effects"
  Rng rng(81);
  for (int i = 0; i < 200; ++i) {
    a_flags.push_back(BigInt(rng.Bernoulli(0.4) ? 1 : 0));
    b_flags.push_back(BigInt(rng.Bernoulli(0.25) ? 1 : 0));
  }
  auto both = SecureScalarProduct(&dot_net, a_flags, b_flags);
  if (both.ok()) {
    std::printf("secure scalar product: %s patients responded AND had side "
                "effects — computed without either side seeing the other's "
                "flags.\n",
                both->ToString().c_str());
  }

  // --- Vertical partitioning: Company A measured dosage, Company B
  // measured outcome, for the same patients. Joint covariance without
  // exchanging columns.
  Rng v_rng(83);
  std::vector<double> dosage;   // held by A
  std::vector<double> outcome;  // held by B
  for (int i = 0; i < 150; ++i) {
    dosage.push_back(v_rng.UniformDouble(10.0, 60.0));
    outcome.push_back(0.8 * dosage.back() + v_rng.Normal(0.0, 6.0));
  }
  PartyNetwork v_net(2, 85);
  auto moments = SecureJointMoments(&v_net, dosage, outcome);
  if (moments.ok()) {
    std::printf("\nvertically partitioned joint analysis: corr(dosage, "
                "outcome) = %.3f (plain: %.3f),\ncomputed with %zu bytes of "
                "ciphertext — neither company saw the other's column.\n",
                moments->correlation, PearsonCorrelation(dosage, outcome),
                moments->bytes_transferred);
  }
  return 0;
}
