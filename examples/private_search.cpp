// Private search: user privacy with PIR — and the Section 3 cautionary
// tale about running it over non-anonymized data.
//
// Build & run:  ./build/examples/private_search
//
// A medical registry serves queries. Users do not want the registry to
// learn what they search for (the paper's AOL-scandal motivation). This
// example exercises the whole user-privacy stack:
//   * 2-server XOR PIR record retrieval,
//   * keyword PIR lookup by patient id,
//   * single-server computational PIR,
//   * private aggregate COUNT/AVG queries — first reproducing the
//     Section 3 re-identification attack on raw data, then the fix.

#include <cstdio>
#include <string>

#include "pir/aggregate.h"
#include "pir/cpir.h"
#include "pir/it_pir.h"
#include "pir/keyword_pir.h"
#include "sdc/microaggregation.h"
#include "table/datasets.h"

using namespace tripriv;

int main() {
  Rng rng(2024);

  // --- Record retrieval with 2-server PIR.
  std::printf("--- 2-server XOR PIR over the trial registry\n");
  const DataTable registry = MakeClinicalTrial(64, 7);
  std::vector<std::vector<uint8_t>> records;
  for (size_t r = 0; r < registry.num_rows(); ++r) {
    std::string text;
    for (size_t c = 0; c < registry.num_columns(); ++c) {
      text += registry.at(r, c).ToDisplayString() + "|";
    }
    text.resize(48, ' ');
    records.emplace_back(text.begin(), text.end());
  }
  auto server_a = XorPirServer::Create(records);
  auto server_b = XorPirServer::Create(records);
  if (!server_a.ok() || !server_b.ok()) return 1;
  PirStats stats;
  auto record = TwoServerPirRead(&*server_a, &*server_b, 17, &rng, &stats);
  if (!record.ok()) return 1;
  std::printf("retrieved record 17: %s\n",
              std::string(record->begin(), record->end()).c_str());
  std::printf("cost: %zu bits up, %zu bits down; each server saw only a "
              "uniformly random bitmap.\n\n",
              stats.upload_bits, stats.download_bits);

  // --- Keyword PIR: look up by patient id.
  std::printf("--- keyword PIR: lookup by patient id\n");
  std::vector<std::pair<uint64_t, uint64_t>> index;
  for (uint64_t r = 0; r < registry.num_rows(); ++r) {
    index.emplace_back(1000 + r * 3, r);  // patient id -> record position
  }
  auto store = KeywordPirStore::Create(index);
  if (!store.ok()) return 1;
  auto pos = store->Lookup(1051, &rng, &stats);
  if (!pos.ok()) return 1;
  if (pos->has_value()) {
    std::printf("patient 1051 is record %llu (found via %zu-bit private "
                "binary search)\n\n",
                static_cast<unsigned long long>(**pos), stats.upload_bits);
  }

  // --- Single-server computational PIR.
  std::printf("--- single-server computational PIR (Paillier)\n");
  std::vector<uint64_t> bp_column;
  for (size_t r = 0; r < registry.num_rows(); ++r) {
    bp_column.push_back(static_cast<uint64_t>(registry.at(r, 2).AsInt()));
  }
  auto cpir_server = CpirServer::Create(bp_column);
  auto cpir_client = CpirClient::Create(256, 11);
  if (!cpir_server.ok() || !cpir_client.ok()) return 1;
  auto value = cpir_client->Read(&*cpir_server, 17);
  if (!value.ok()) return 1;
  std::printf("blood pressure of record 17: %llu (server computed on "
              "ciphertexts; %zu ciphertexts up, %zu down)\n\n",
              static_cast<unsigned long long>(*value),
              cpir_client->last_upload_ciphertexts(),
              cpir_client->last_download_ciphertexts());

  // --- The Section 3 attack and its remedy.
  std::printf("--- Section 3: PIR on raw data lets a user re-identify a "
              "respondent\n");
  const std::vector<GridAxis> grid{{"height", 140, 205, 1},
                                   {"weight", 40, 160, 1}};
  const Predicate isolating = Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(165)),
      Predicate::Compare("weight", CompareOp::kGt, Value(105)));
  auto agg_server = PrivateAggregateServer::Build(PaperDataset2(), grid);
  auto agg_client = PrivateAggregateClient::Create(256, 13);
  if (!agg_server.ok() || !agg_client.ok()) return 1;
  auto count = agg_client->Count(*agg_server, isolating);
  auto avg = agg_client->Average(*agg_server, "blood_pressure", isolating);
  if (count.ok() && avg.ok()) {
    std::printf("COUNT(height<165 AND weight>105) = %llu; AVG(blood_pressure) "
                "= %.0f\n",
                static_cast<unsigned long long>(*count), *avg);
    std::printf("-> one short, heavy respondent is identified with blood "
                "pressure %.0f — an insurer\n   could reject Mr./Mrs. X's "
                "life insurance (the paper's exact scenario).\n",
                *avg);
  }
  std::printf("\n--- remedy: 3-anonymize before serving PIR (Section 6)\n");
  auto masked = MdavMicroaggregate(PaperDataset2(), 3);
  if (!masked.ok()) return 1;
  auto safe_server = PrivateAggregateServer::Build(masked->table, grid);
  if (!safe_server.ok()) return 1;
  auto safe_count = agg_client->Count(*safe_server, isolating);
  if (safe_count.ok()) {
    std::printf("same query on the anonymized registry: COUNT = %llu "
                "(no isolation possible).\n",
                static_cast<unsigned long long>(*safe_count));
  }
  return 0;
}
